"""Unit tests for host-load predictors and their evaluation."""

import numpy as np
import pytest

from repro.prediction import (
    EWMA,
    AutoRegressive,
    LastValue,
    MarkovLevel,
    MovingAverage,
    compare_predictors,
    evaluate_predictor,
    fit_ar_coefficients,
    transition_matrix,
)


@pytest.fixture
def noisy_sine():
    rng = np.random.default_rng(0)
    t = np.arange(600)
    return 0.5 + 0.3 * np.sin(2 * np.pi * t / 48) + 0.02 * rng.standard_normal(600)


class TestLastValue:
    def test_predicts_previous(self):
        series = np.array([1.0, 2.0, 3.0])
        out = LastValue().predict_series(series)
        assert np.isnan(out[0])
        np.testing.assert_allclose(out[1:], [1.0, 2.0])

    def test_scalar_predict(self):
        assert LastValue().predict(np.array([5.0, 7.0])) == 7.0


class TestMovingAverage:
    def test_window(self):
        series = np.array([1.0, 2.0, 3.0, 4.0])
        out = MovingAverage(window=2).predict_series(series)
        np.testing.assert_allclose(out[1:], [1.0, 1.5, 2.5])

    def test_series_matches_scalar(self, noisy_sine):
        ma = MovingAverage(window=5)
        out = ma.predict_series(noisy_sine)
        for i in (10, 100, 500):
            assert out[i] == pytest.approx(ma.predict(noisy_sine[:i]))

    def test_validation(self):
        with pytest.raises(ValueError):
            MovingAverage(window=0)


class TestEWMA:
    def test_constant_series(self):
        out = EWMA(alpha=0.5).predict_series(np.full(10, 3.0))
        np.testing.assert_allclose(out[1:], 3.0)

    def test_series_matches_scalar(self, noisy_sine):
        ew = EWMA(alpha=0.3)
        out = ew.predict_series(noisy_sine)
        for i in (5, 50, 300):
            assert out[i] == pytest.approx(ew.predict(noisy_sine[:i]))

    def test_validation(self):
        with pytest.raises(ValueError):
            EWMA(alpha=0.0)
        with pytest.raises(ValueError):
            EWMA(alpha=1.5)


class TestAutoRegressive:
    def test_fit_recovers_ar1(self):
        rng = np.random.default_rng(1)
        n = 5000
        x = np.zeros(n)
        for i in range(1, n):
            x[i] = 0.2 + 0.7 * x[i - 1] + 0.01 * rng.standard_normal()
        coeffs = fit_ar_coefficients(x, order=1)
        assert coeffs[1] == pytest.approx(0.7, abs=0.03)
        assert coeffs[0] == pytest.approx(0.2, abs=0.03)

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_ar_coefficients(np.zeros(3), order=2)
        with pytest.raises(ValueError):
            fit_ar_coefficients(np.zeros(100), order=0)

    def test_beats_moving_average_on_smooth_signal(self, noisy_sine):
        # The sine drifts, so a lagging window average must lose to AR.
        ar = AutoRegressive(order=4, train_window=200, refit_every=50)
        scores = compare_predictors(
            {"ar": ar, "ma": MovingAverage(window=24)}, noisy_sine
        )
        by_name = {s.predictor: s.mse for s in scores}
        assert by_name["ar"] < by_name["ma"]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AutoRegressive(order=0)
        with pytest.raises(ValueError):
            AutoRegressive(order=10, train_window=5)
        with pytest.raises(ValueError):
            AutoRegressive(refit_every=0)


class TestMarkov:
    def test_transition_matrix_stochastic(self):
        levels = np.array([0, 0, 1, 2, 1, 0, 1, 1])
        matrix = transition_matrix(levels, 3)
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)

    def test_unvisited_rows_self_loop(self):
        matrix = transition_matrix(np.array([0, 0]), 3)
        assert matrix[2, 2] == 1.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            transition_matrix(np.array([0, 5]), 3)

    def test_persistent_levels_predicted(self):
        # A series stuck in one level should predict that level's midpoint.
        series = np.full(100, 0.5)
        pred = MarkovLevel().predict(series)
        assert pred == pytest.approx(0.5, abs=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            MarkovLevel(edges=(0.0, 1.0))
        with pytest.raises(ValueError):
            MarkovLevel(train_window=1)


class TestEvaluate:
    def test_perfect_predictor_zero_error(self):
        series = np.full(50, 2.0)
        score = evaluate_predictor(LastValue(), series)
        assert score.mse == 0.0
        assert score.rmse == 0.0
        assert score.num_predictions == 49

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            evaluate_predictor(AutoRegressive(order=4), np.zeros(5))

    def test_compare_sorted(self, noisy_sine):
        scores = compare_predictors(
            {
                "last": LastValue(),
                "ma": MovingAverage(window=12),
                "ewma": EWMA(alpha=0.4),
            },
            noisy_sine,
        )
        mses = [s.mse for s in scores]
        assert mses == sorted(mses)

    def test_noisier_series_harder_to_predict(self):
        """The paper's claim: noisy Cloud load predicts worse."""
        rng = np.random.default_rng(2)
        base = np.full(2000, 0.5)
        grid_like = base + 0.002 * rng.standard_normal(2000)
        cloud_like = base + 0.05 * rng.standard_normal(2000)
        s_grid = evaluate_predictor(LastValue(), grid_like)
        s_cloud = evaluate_predictor(LastValue(), cloud_like)
        assert s_cloud.mse > 100 * s_grid.mse
