"""Unit tests for arrival processes and fairness calibration."""

import numpy as np
import pytest

from repro.core.fairness import hourly_counts, jain_fairness
from repro.synth.arrivals import (
    DoublyStochasticArrivals,
    PoissonArrivals,
    cv_for_fairness,
    diurnal_profile,
)

DAY = 86400.0


class TestCvForFairness:
    def test_fairness_one_gives_zero_cv(self):
        assert cv_for_fairness(1.0, 1e9) == pytest.approx(0.0, abs=1e-3)

    def test_lower_fairness_larger_cv(self):
        assert cv_for_fairness(0.1, 100) > cv_for_fairness(0.5, 100)

    def test_roundtrip(self):
        # f = 1/(1 + cv^2 + 1/mu)
        cv = cv_for_fairness(0.35, 45)
        f = 1.0 / (1.0 + cv**2 + 1.0 / 45)
        assert f == pytest.approx(0.35, rel=1e-6)

    def test_validation(self):
        with pytest.raises(ValueError):
            cv_for_fairness(0.0, 10)
        with pytest.raises(ValueError):
            cv_for_fairness(0.5, 0)


class TestDiurnalProfile:
    def test_mean_one(self):
        hours = np.arange(24)
        profile = diurnal_profile(hours, amplitude=0.5)
        assert profile.mean() == pytest.approx(1.0, abs=1e-9)

    def test_peak_at_peak_hour(self):
        hours = np.arange(24)
        profile = diurnal_profile(hours, amplitude=0.5, peak_hour=14.0)
        assert np.argmax(profile) == 14

    def test_zero_amplitude_flat(self):
        profile = diurnal_profile(np.arange(24), amplitude=0.0)
        np.testing.assert_allclose(profile, 1.0)

    def test_bad_amplitude(self):
        with pytest.raises(ValueError):
            diurnal_profile(np.arange(24), amplitude=1.0)


class TestPoissonArrivals:
    def test_rate(self):
        rng = np.random.default_rng(0)
        times = PoissonArrivals(100.0).generate(rng, 2 * DAY)
        assert len(times) == pytest.approx(100 * 48, rel=0.05)

    def test_sorted_within_horizon(self):
        rng = np.random.default_rng(1)
        times = PoissonArrivals(50.0).generate(rng, DAY)
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0 and times.max() < DAY

    def test_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)
        with pytest.raises(ValueError):
            PoissonArrivals(1.0).generate(np.random.default_rng(0), -1.0)


class TestDoublyStochastic:
    def test_mean_rate(self):
        rng = np.random.default_rng(2)
        proc = DoublyStochasticArrivals(mean_per_hour=200.0, target_cv=0.3)
        times = proc.generate(rng, 10 * DAY)
        assert len(times) / (10 * 24) == pytest.approx(200, rel=0.1)

    def test_fairness_calibration(self):
        """Generated streams land near the requested fairness index."""
        rng = np.random.default_rng(3)
        for target_f, mu in ((0.9, 300.0), (0.35, 60.0)):
            proc = DoublyStochasticArrivals(
                mean_per_hour=mu, target_cv=cv_for_fairness(target_f, mu)
            )
            times = proc.generate(rng, 30 * DAY)
            f = jain_fairness(hourly_counts(times, 30 * DAY))
            assert f == pytest.approx(target_f, abs=0.12)

    def test_busy_window_raises_rate(self):
        rng = np.random.default_rng(4)
        proc = DoublyStochasticArrivals(
            mean_per_hour=100.0,
            busy_window=(0.0, DAY),
            busy_factor=3.0,
        )
        times = proc.generate(rng, 2 * DAY)
        in_window = np.count_nonzero(times < DAY)
        out_window = len(times) - in_window
        assert in_window > 2 * out_window

    def test_hourly_rates_shape(self):
        rng = np.random.default_rng(5)
        proc = DoublyStochasticArrivals(
            mean_per_hour=10.0, target_cv=1.0, diurnal_amplitude=0.5
        )
        rates = proc.hourly_rates(rng, 48)
        assert rates.shape == (48,)
        assert np.all(rates >= 0)

    def test_diurnal_periodicity_visible(self):
        rng = np.random.default_rng(6)
        proc = DoublyStochasticArrivals(
            mean_per_hour=1000.0, target_cv=0.0, diurnal_amplitude=0.8
        )
        counts = hourly_counts(proc.generate(rng, 10 * DAY), 10 * DAY)
        by_hour = counts.reshape(-1, 24).mean(axis=0)
        # Peak hour (14) should far exceed the trough (2).
        assert by_hour[14] > 2 * by_hour[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            DoublyStochasticArrivals(mean_per_hour=0.0)
        with pytest.raises(ValueError):
            DoublyStochasticArrivals(mean_per_hour=1.0, target_cv=-1.0)
        with pytest.raises(ValueError):
            DoublyStochasticArrivals(mean_per_hour=1.0, busy_factor=0.0)

    def test_iter_generate_bit_identical_to_generate(self):
        # Golden stream-equivalence: concatenating the bounded blocks
        # must reproduce the one-shot draw bit for bit, whatever the
        # block size (including blocks smaller than an hour's count and
        # one block covering the whole horizon).
        proc = DoublyStochasticArrivals(
            mean_per_hour=500.0,
            target_cv=0.9,
            diurnal_amplitude=0.05,
            busy_window=(2 * 3600.0, 20 * 3600.0),
            busy_factor=1.5,
        )
        horizon = 2 * DAY + 123.0
        want = proc.generate(np.random.default_rng(np.random.SeedSequence(11)), horizon)
        for block_tasks in (1, 137, 10_000, 10**9):
            got = np.concatenate(
                list(
                    proc.iter_generate(
                        np.random.default_rng(np.random.SeedSequence(11)),
                        horizon,
                        block_tasks=block_tasks,
                    )
                )
            )
            assert got.dtype == want.dtype
            assert np.array_equal(got, want)

    def test_iter_generate_validation(self):
        proc = DoublyStochasticArrivals(mean_per_hour=10.0)
        with pytest.raises(ValueError):
            list(proc.iter_generate(np.random.default_rng(0), -1.0))
        with pytest.raises(ValueError):
            list(proc.iter_generate(np.random.default_rng(0), DAY, block_tasks=0))
