"""Unit tests for the content-addressed dataset disk cache."""

import dataclasses

import numpy as np
import pytest

from repro.core.diskcache import (
    MISS,
    DiskCache,
    cache_key,
    fingerprint,
)
from repro.core.table import Table


@dataclasses.dataclass(frozen=True)
class Payload:
    """Stand-in for SimResult-style containers: arrays + table + meta."""

    name: str
    arr: np.ndarray
    table: Table
    nested: dict


def _payload(seed: int = 0) -> Payload:
    rng = np.random.default_rng(seed)
    return Payload(
        name=f"p{seed}",
        arr=rng.normal(size=100),
        table=Table(
            {
                "a": rng.integers(0, 10, size=50),
                "b": rng.normal(size=50),
            }
        ),
        nested={"k": (1, 2.5, rng.normal(size=7)), "n": None},
    )


class TestFingerprint:
    def test_stable_for_equal_inputs(self):
        assert fingerprint({"b": 2, "a": 1.5}) == fingerprint({"a": 1.5, "b": 2})

    def test_sensitive_to_values(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})

    def test_dataclass_field_changes_fingerprint(self):
        a = _payload(0)
        b = dataclasses.replace(a, name="other")
        assert fingerprint(a) != fingerprint(b)

    def test_plain_object_hashed_by_state_not_address(self):
        class Dist:
            def __init__(self, mu):
                self.mu = mu

        assert fingerprint(Dist(1.0)) == fingerprint(Dist(1.0))
        assert fingerprint(Dist(1.0)) != fingerprint(Dist(2.0))

    def test_array_contents_matter(self):
        assert fingerprint(np.arange(4)) != fingerprint(np.arange(1, 5))


class TestCacheKey:
    def test_component_sensitivity(self):
        base = cache_key(kind="workload", scale="small", seed=0, version=1)
        assert base == cache_key(kind="workload", scale="small", seed=0, version=1)
        assert base != cache_key(kind="workload", scale="small", seed=1, version=1)
        assert base != cache_key(kind="workload", scale="paper", seed=0, version=1)
        assert base != cache_key(kind="workload", scale="small", seed=0, version=2)
        assert base != cache_key(kind="simulation", scale="small", seed=0, version=1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            cache_key()


class TestRoundTrip:
    def test_arrays_bit_identical(self, tmp_path):
        cache = DiskCache(tmp_path)
        obj = _payload(3)
        cache.put("k" * 64, obj)
        loaded = cache.get("k" * 64)
        assert loaded is not MISS
        assert loaded.name == obj.name
        np.testing.assert_array_equal(loaded.arr, obj.arr)
        assert loaded.arr.dtype == obj.arr.dtype
        assert loaded.table == obj.table
        for name in obj.table.column_names:
            assert loaded.table[name].dtype == obj.table[name].dtype
        np.testing.assert_array_equal(
            loaded.nested["k"][2], obj.nested["k"][2]
        )
        assert loaded.nested["k"][:2] == (1, 2.5)
        assert loaded.nested["n"] is None

    def test_tuple_and_int_keyed_dicts_survive(self, tmp_path):
        cache = DiskCache(tmp_path)
        obj = {1: np.arange(3), 2: ("x", [np.float64(1.5)])}
        cache.put("a" * 64, obj)
        loaded = cache.get("a" * 64)
        assert set(loaded) == {1, 2}
        np.testing.assert_array_equal(loaded[1], np.arange(3))
        assert loaded[2][0] == "x"

    def test_miss_on_absent_key(self, tmp_path):
        cache = DiskCache(tmp_path)
        assert cache.get("b" * 64) is MISS
        assert cache.stats.misses == 1
        assert cache.stats.hits == 0

    def test_contains_and_entries(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "c" * 64
        assert key not in cache
        cache.put(key, {"x": 1})
        assert key in cache
        assert cache.entries() == [key]
        cache.clear()
        assert cache.entries() == []

    def test_hit_and_put_counters(self, tmp_path):
        cache = DiskCache(tmp_path)
        cache.put("d" * 64, [1, 2, 3])
        assert cache.stats.puts == 1
        assert cache.get("d" * 64) == [1, 2, 3]
        assert cache.stats.hits == 1


class TestCorruption:
    def test_truncated_payload_recovers_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "e" * 64
        cache.put(key, _payload(1))
        payload = tmp_path / key[:2] / key / "data.npz"
        payload.write_bytes(payload.read_bytes()[:20])
        assert cache.get(key) is MISS
        assert cache.stats.errors == 1
        # The broken entry is gone; a re-put works again.
        assert key not in cache
        cache.put(key, _payload(1))
        assert cache.get(key) is not MISS

    def test_garbage_skeleton_recovers_as_miss(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "f" * 64
        cache.put(key, {"v": np.arange(5)})
        (tmp_path / key[:2] / key / "skeleton.pkl").write_bytes(b"not a pickle")
        assert cache.get(key) is MISS
        assert key not in cache


class TestQuarantine:
    def test_corrupt_entry_parked_for_inspection(self, tmp_path):
        cache = DiskCache(tmp_path)
        key = "a" * 64
        cache.put(key, _payload(2))
        (tmp_path / key[:2] / key / "skeleton.pkl").write_bytes(b"garbage")
        assert cache.get(key) is MISS
        assert cache.stats.quarantined == 1
        assert cache.stats.errors == 1
        assert cache.quarantined_entries() == [key]
        # The quarantined copy keeps the corrupt bytes for post-mortems.
        parked = cache.quarantine_dir() / key / "skeleton.pkl"
        assert parked.read_bytes() == b"garbage"
        # The live cache self-heals: re-put and read back normally.
        cache.put(key, _payload(2))
        assert cache.get(key) is not MISS

    def test_quarantine_is_pruned(self, tmp_path):
        import os

        cache = DiskCache(tmp_path)
        keys = [format(i, "x").rjust(64, "0") for i in range(12)]
        for i, key in enumerate(keys):
            cache.put(key, {"x": 1})
            (tmp_path / key[:2] / key / "skeleton.pkl").write_bytes(b"junk")
            assert cache.get(key) is MISS
            os.utime(cache.quarantine_dir() / key, (1000 + i, 1000 + i))
        parked = cache.quarantined_entries()
        assert len(parked) <= 8
        assert keys[-1] in parked  # newest kept
        assert keys[0] not in parked  # oldest pruned
        assert cache.stats.quarantined == 12

    def test_concurrently_evicted_entry_is_plain_miss(
        self, tmp_path, monkeypatch
    ):
        # Another process may evict an entry between our existence check
        # and the read; that must read as a miss, not as corruption.
        cache = DiskCache(tmp_path)
        key = "b" * 64
        cache.put(key, {"x": 1})

        def vanish(fh):
            raise FileNotFoundError(getattr(fh, "name", "skeleton.pkl"))

        monkeypatch.setattr("repro.core.diskcache.pickle.load", vanish)
        assert cache.get(key) is MISS
        assert cache.stats.misses == 1
        assert cache.stats.errors == 0
        assert cache.stats.quarantined == 0


def _race_worker(root, worker: int) -> None:
    """Hammer one shared cache with puts and gets under tight eviction."""
    cache = DiskCache(root, max_entries=2, max_bytes=None)
    keys = [c * 64 for c in "abcd"]
    for round_ in range(30):
        key = keys[(worker + round_) % len(keys)]
        cache.put(key, {"x": np.arange(200)})
        for probe in keys:
            value = cache.get(probe)
            assert value is MISS or value["x"][0] == 0


class TestEvictionRace:
    def test_two_processes_put_get_evict_without_errors(self, tmp_path):
        # Regression test for FileNotFoundError escaping get() when a
        # concurrent process's LRU eviction removes the entry mid-read.
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_race_worker, args=(tmp_path, i))
            for i in range(2)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=120)
        assert [proc.exitcode for proc in procs] == [0, 0]


class TestEviction:
    def test_entry_count_budget(self, tmp_path):
        import os

        cache = DiskCache(tmp_path, max_entries=2, max_bytes=None)
        keys = [c * 64 for c in "abc"]
        for i, key in enumerate(keys):
            cache.put(key, {"i": np.arange(10)})
            # Distinct mtimes so LRU order is unambiguous on coarse
            # filesystem timestamp resolutions.
            os.utime(tmp_path / key[:2] / key, (1000 + i, 1000 + i))
        cache._evict()
        assert cache.stats.evictions >= 1
        assert len(cache.entries()) == 2
        assert keys[0] not in cache  # oldest evicted
        assert keys[2] in cache  # newest kept

    def test_byte_budget(self, tmp_path):
        import os

        cache = DiskCache(tmp_path, max_entries=None, max_bytes=1)
        for i, c in enumerate("ab"):
            key = c * 64
            cache.put(key, {"i": np.arange(100)})
            os.utime(tmp_path / key[:2] / key, (1000 + i, 1000 + i))
        cache._evict()
        # Every entry exceeds one byte; only the newest survives a put.
        assert len(cache.entries()) <= 1

    def test_no_budget_keeps_everything(self, tmp_path):
        cache = DiskCache(tmp_path, max_entries=None, max_bytes=None)
        for c in "abcdef":
            cache.put(c * 64, {"x": 1})
        assert len(cache.entries()) == 6
        assert cache.stats.evictions == 0


class TestDirectoryEntries:
    """put_path/get_path and recursive byte accounting."""

    def _tree(self, tmp_path, name="src", nbytes=1000):
        src = tmp_path / name
        (src / "nested").mkdir(parents=True)
        (src / "a.npy").write_bytes(b"x" * nbytes)
        (src / "nested" / "b.npy").write_bytes(b"y" * nbytes)
        return src

    def test_round_trip_copy(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=None, max_entries=None)
        src = self._tree(tmp_path)
        key = "d" * 64
        cache.put_path(key, src)
        assert src.is_dir()  # copy leaves the source alone
        payload = cache.get_path(key)
        assert payload is not MISS
        assert (payload / "a.npy").read_bytes() == b"x" * 1000
        assert (payload / "nested" / "b.npy").read_bytes() == b"y" * 1000

    def test_move_consumes_source(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=None, max_entries=None)
        src = self._tree(tmp_path)
        cache.put_path("e" * 64, src, move=True)
        assert not src.exists()
        assert cache.get_path("e" * 64) is not MISS

    def test_miss_on_absent_key(self, tmp_path):
        cache = DiskCache(tmp_path / "cache")
        assert cache.get_path("f" * 64) is MISS
        assert cache.stats.misses == 1

    def test_accounting_counts_every_nested_file(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=None, max_entries=None)
        src = self._tree(tmp_path, nbytes=5000)
        cache.put_path("a" * 64, src, move=True)
        # Both payload files plus skeleton/meta must be visible to the
        # byte budget; the old iterdir-level accounting saw none of the
        # nested payload bytes.
        assert cache.total_bytes() >= 10_000

    def test_byte_budget_evicts_directory_entries(self, tmp_path):
        import os

        cache = DiskCache(tmp_path / "cache", max_bytes=1, max_entries=None)
        for i, c in enumerate("ab"):
            key = c * 64
            cache.put_path(key, self._tree(tmp_path, name=f"src{i}"), move=True)
            os.utime(tmp_path / "cache" / key[:2] / key, (1000 + i, 1000 + i))
        cache._evict()
        assert len(cache.entries()) <= 1

    def test_object_get_on_dir_entry_is_quarantined_miss(self, tmp_path):
        cache = DiskCache(tmp_path / "cache", max_bytes=None, max_entries=None)
        cache.put_path("b" * 64, self._tree(tmp_path), move=True)
        # get_path on an entry whose payload dir was destroyed recovers
        # as a miss instead of handing out a broken path.
        payload = cache.get_path("b" * 64)
        import shutil as _shutil

        _shutil.rmtree(payload)
        assert cache.get_path("b" * 64) is MISS
        assert cache.stats.errors == 1
