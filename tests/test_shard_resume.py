"""Crash-safe spill resume: a killed spill continues, byte-identical.

The load-bearing property: SIGKILL a real spawned process mid-shard,
re-create the writer with ``resume=True``, replay the same rows, and
the finished table's on-disk bytes equal an uninterrupted spill's.
"""

import json
import multiprocessing
import os
import signal

import numpy as np
import pytest

from repro.core.shard import ShardedTable, ShardWriter, write_table
from repro.core.table import Table

N_ROWS = 60
SHARD_ROWS = 7


def _table(n=N_ROWS, seed=42):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "x": rng.standard_normal(n),
            "k": rng.integers(0, 5, n, dtype=np.int64),
        }
    )


def _schema(table):
    return {n: table[n].dtype for n in table.column_names}


def _tree_bytes(root):
    """Every file under root, relative path -> bytes."""
    out = {}
    for dirpath, _, names in os.walk(root):
        for name in names:
            path = os.path.join(dirpath, name)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, root)] = fh.read()
    return out


def _spill(dest, *, resume, on_event=None):
    table = _table()
    writer = ShardWriter(
        dest, _schema(table), SHARD_ROWS, resume=resume, on_event=on_event
    )
    writer.append(table)
    return writer


def _kill_at(shard_index):
    """Hook that SIGKILLs this process on a fresh run's Nth shard."""

    def hook(event, index, resumed_shards):
        if (
            event == "column-written"
            and index == shard_index
            and resumed_shards == 0
        ):
            os.kill(os.getpid(), signal.SIGKILL)

    return hook


def _doomed_spill(dest, kill_shard):
    """Spawn-process entry: spill with a SIGKILL planted mid-shard."""
    _spill(dest, resume=True, on_event=_kill_at(kill_shard))


class TestTornSpillResume:
    def test_sigkill_mid_shard_then_resume_byte_identical(self, tmp_path):
        # Reference: an uninterrupted spill of the same rows.
        clean = _spill(tmp_path / "clean", resume=False).close()
        want = _tree_bytes(clean.root)

        # A real spawned process dies by SIGKILL while writing shard 4:
        # shards 0-3 are journaled durable, shard 4 is torn (first
        # column written, never committed).
        dest = tmp_path / "t"
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_doomed_spill, args=(dest, 4))
        proc.start()
        proc.join(60)
        assert proc.exitcode == -signal.SIGKILL
        assert not dest.exists()
        partial = dest.with_name(".t.partial")
        assert partial.is_dir(), "killed spill must leave its partial dir"

        # Resume: the journaled prefix is adopted, the torn shard and
        # the unfinished suffix are rewritten from the replayed rows.
        writer = _spill(dest, resume=True)
        assert writer.resumed_shards == 4
        resumed = writer.close()
        assert not partial.exists()
        assert _tree_bytes(resumed.root) == want

    def test_resume_after_abort_adopts_journaled_prefix(self, tmp_path):
        # In-process variant: abort (keeping the partial) after three
        # committed shards, then resume.
        class _Stop(Exception):
            pass

        def stop_after(event, index, resumed_shards):
            if event == "shard-committed" and index == 2 and not resumed_shards:
                raise _Stop

        dest = tmp_path / "t"
        table = _table()
        writer = ShardWriter(
            dest, _schema(table), SHARD_ROWS, resume=True, on_event=stop_after
        )
        with pytest.raises(_Stop):
            writer.append(table)
        writer.abort()
        assert dest.with_name(".t.partial").is_dir()

        writer = _spill(dest, resume=True)
        assert writer.resumed_shards == 3
        resumed = writer.close()
        clean = _spill(tmp_path / "clean", resume=False).close()
        assert _tree_bytes(resumed.root) == _tree_bytes(clean.root)

    def test_corrupted_journaled_shard_dropped_on_resume(self, tmp_path):
        # A shard that was journaled but later damaged on disk must not
        # be adopted: the journal prefix is truncated at the first shard
        # whose digests no longer verify.
        class _Stop(Exception):
            pass

        def stop_after(event, index, resumed_shards):
            if event == "shard-committed" and index == 3 and not resumed_shards:
                raise _Stop

        dest = tmp_path / "t"
        table = _table()
        writer = ShardWriter(
            dest, _schema(table), SHARD_ROWS, resume=True, on_event=stop_after
        )
        with pytest.raises(_Stop):
            writer.append(table)
        writer.abort()
        partial = dest.with_name(".t.partial")
        damaged = partial / "shard-00002" / "x.npy"
        data = bytearray(damaged.read_bytes())
        data[-1] ^= 0xFF
        damaged.write_bytes(bytes(data))

        writer = _spill(dest, resume=True)
        assert writer.resumed_shards == 2  # shards 0-1 only
        resumed = writer.close()
        clean = _spill(tmp_path / "clean", resume=False).close()
        assert _tree_bytes(resumed.root) == _tree_bytes(clean.root)

    def test_short_replay_rejected(self, tmp_path):
        # Resuming with fewer rows than the journaled prefix holds is a
        # caller bug (non-deterministic source) and must fail loudly.
        class _Stop(Exception):
            pass

        def stop_after(event, index, resumed_shards):
            if event == "shard-committed" and index == 4 and not resumed_shards:
                raise _Stop

        dest = tmp_path / "t"
        table = _table()
        writer = ShardWriter(
            dest, _schema(table), SHARD_ROWS, resume=True, on_event=stop_after
        )
        with pytest.raises(_Stop):
            writer.append(table)
        writer.abort()

        short = {n: np.asarray(table[n])[:10] for n in table.column_names}
        writer = ShardWriter(dest, _schema(table), SHARD_ROWS, resume=True)
        writer.append(short)
        from repro.core.shard import ShardIntegrityError

        with pytest.raises(ShardIntegrityError, match="rows short"):
            writer.close()
        writer.abort()

    def test_live_lock_falls_back_to_private_build(self, tmp_path):
        # A second writer while the partial is owned by a live process
        # (this one) must not clobber it: it degrades to a non-resumable
        # private build and still produces a correct table.
        dest = tmp_path / "t"
        table = _table()
        first = ShardWriter(dest, _schema(table), SHARD_ROWS, resume=True)
        second = ShardWriter(dest, _schema(table), SHARD_ROWS, resume=True)
        second.append(table)
        result = second.close()
        assert result.num_rows == N_ROWS
        first.abort()

    def test_journal_is_not_published(self, tmp_path):
        dest = tmp_path / "t"
        result = _spill(dest, resume=True).close()
        names = set(_tree_bytes(result.root))
        assert "manifest.json" in names
        assert not any("journal" in n or ".lock" in n for n in names)

    def test_resumed_table_passes_full_verification(self, tmp_path):
        dest = tmp_path / "t"
        ctx = multiprocessing.get_context("spawn")
        proc = ctx.Process(target=_doomed_spill, args=(dest, 2))
        proc.start()
        proc.join(60)
        assert proc.exitcode == -signal.SIGKILL
        _spill(dest, resume=True).close()
        reopened = ShardedTable.open(dest, verify="full")
        np.testing.assert_array_equal(
            reopened.to_table()["x"], np.asarray(_table()["x"])
        )

    def test_journal_format_is_versioned(self, tmp_path):
        # The journal header pins the format so a future layout change
        # cannot silently adopt an incompatible partial.
        class _Stop(Exception):
            pass

        def stop(event, index, resumed_shards):
            if event == "shard-committed" and not resumed_shards:
                raise _Stop

        dest = tmp_path / "t"
        table = _table()
        writer = ShardWriter(
            dest, _schema(table), SHARD_ROWS, resume=True, on_event=stop
        )
        with pytest.raises(_Stop):
            writer.append(table)
        writer.abort()
        journal = dest.with_name(".t.partial") / "journal.jsonl"
        header = json.loads(journal.read_text().splitlines()[0])
        assert header["format"] == 2
