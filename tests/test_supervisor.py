"""Fault-matrix tests for the supervised executor (repro.experiments.supervisor).

The expensive process-level scenarios share one module-scoped warm
cache so every supervised run starts from disk hits instead of
rebuilding the small-scale datasets.
"""

from __future__ import annotations

import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.timing import Timings
from repro.experiments import datasets
from repro.experiments.faults import FaultPlan
from repro.experiments.parallel import run_experiments
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import main as runner_main
from repro.experiments.supervisor import (
    ExperimentOutcome,
    SupervisorConfig,
    append_journal,
    backoff_delay,
    journal_path,
    load_journal,
    run_id,
    run_supervised,
    warm_datasets,
    write_journal_header,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def warm_cache(tmp_path_factory):
    """A dataset cache pre-warmed at small scale, shared by this module."""
    cache_dir = tmp_path_factory.mktemp("supervisor-cache")
    datasets.configure_cache(cache_dir)
    warm_datasets("small", 0)
    yield cache_dir
    datasets.configure_cache(None)
    datasets.reset_dataset_stats()


@pytest.fixture
def cache(warm_cache):
    """Point the dataset layer at the warm cache; restore afterwards."""
    datasets.configure_cache(warm_cache)
    datasets.reset_dataset_stats()
    yield warm_cache
    datasets.configure_cache(None)
    datasets.reset_dataset_stats()


class TestBackoffDelay:
    def test_pure_function_of_inputs(self):
        assert backoff_delay(0, "fig4", 1) == backoff_delay(0, "fig4", 1)
        assert backoff_delay(0, "fig4", 1) != backoff_delay(1, "fig4", 1)
        assert backoff_delay(0, "fig4", 1) != backoff_delay(0, "tab1", 1)

    def test_jittered_exponential_bounds(self):
        for attempt in range(1, 6):
            raw = min(30.0, 0.25 * 2.0 ** (attempt - 1))
            delay = backoff_delay(7, "tab1", attempt)
            assert raw / 2 <= delay < raw

    def test_cap_bounds_late_attempts(self):
        assert backoff_delay(0, "fig2", 50, base=1.0, cap=4.0) < 4.0


class TestJournal:
    def test_round_trip_skips_kill_residue(self, tmp_path):
        path = journal_path(tmp_path, "abc123def456")
        write_journal_header(path, ["fig4", "tab1"], "small", 0)
        append_journal(
            path,
            ExperimentOutcome("fig4", True, rendered="RENDERED", attempts=2),
        )
        with open(path, "a", encoding="utf-8") as fh:
            # A SIGKILL mid-append leaves a truncated trailing line.
            fh.write('{"id": "tab1", "ok": true, "rende')
        header, completed = load_journal(path)
        assert header["scale"] == "small"
        assert header["ids"] == ["fig4", "tab1"]
        assert set(completed) == {"fig4"}
        outcome = completed["fig4"]
        assert outcome.ok and outcome.resumed
        assert outcome.rendered == "RENDERED"
        assert outcome.attempts == 2

    def test_run_id_deterministic_and_sensitive(self):
        ids = ["fig4", "tab1"]
        base = run_id(ids, "small", 0)
        assert base == run_id(ids, "small", 0)
        assert base != run_id(ids, "small", 1)
        assert base != run_id(ids, "paper", 0)
        assert base != run_id(["fig4"], "small", 0)


class TestFaultRecovery:
    def test_kill_hang_and_corruption_recover_byte_identically(self, cache):
        ids = ["fig4", "fig7", "tab1", "txt1"]
        plan = FaultPlan.from_obj(
            [
                {"experiment_id": "fig4", "attempt": 1, "kind": "kill"},
                {
                    "experiment_id": "fig7",
                    "attempt": 1,
                    "kind": "hang",
                    "seconds": 600,
                },
                {"experiment_id": "tab1", "attempt": 1, "kind": "corrupt-cache"},
            ]
        )
        clean = run_experiments(ids, scale="small", seed=0, jobs=1)
        timings = Timings()
        faulted = run_supervised(
            ids,
            scale="small",
            seed=0,
            config=SupervisorConfig(
                jobs=2, timeout=10.0, retries=2, backoff_base=0.05
            ),
            timings=timings,
            plan=plan,
        )
        assert all(o.ok for o in faulted)
        for before, after in zip(clean, faulted):
            assert before.rendered == after.rendered
        by_id = {o.experiment_id: o for o in faulted}
        assert by_id["fig4"].attempts == 2  # killed once, retried
        assert by_id["fig7"].attempts == 2  # hung once, killed, retried
        assert by_id["tab1"].attempts == 1  # recovered in-place
        # Counters match the injected plan exactly.
        assert timings.counters["worker_crashes"] == 1
        assert timings.counters["experiment_timeouts"] == 1
        assert timings.counters["retries"] == 2
        assert timings.counters["requeued"] == 2
        assert timings.counters["faults_injected"] == 1  # corrupt-cache only
        assert timings.counters["cache_quarantined"] == 1

    def test_exception_is_permanent_not_retried(self, cache, monkeypatch):
        def boom(scale="paper", seed=0):
            raise RuntimeError("deterministic failure")

        monkeypatch.setitem(EXPERIMENTS, "fig2", boom)
        timings = Timings()
        outcomes = run_supervised(
            ["fig2", "fig4"],
            scale="small",
            seed=0,
            config=SupervisorConfig(jobs=1, retries=2, backoff_base=0.01),
            timings=timings,
        )
        assert not outcomes[0].ok
        assert outcomes[0].error_kind == "exception"
        assert outcomes[0].attempts == 1
        assert "deterministic failure" in outcomes[0].error
        assert outcomes[1].ok
        assert timings.counters.get("retries", 0) == 0

    def test_exhausted_retries_fail_without_sinking_the_run(self, cache):
        plan = FaultPlan.from_obj(
            [
                {"experiment_id": "fig4", "attempt": n, "kind": "exit"}
                for n in (1, 2, 3)
            ]
        )
        timings = Timings()
        outcomes = run_supervised(
            ["fig4", "tab1"],
            scale="small",
            seed=0,
            config=SupervisorConfig(jobs=2, retries=2, backoff_base=0.01),
            timings=timings,
            plan=plan,
        )
        assert not outcomes[0].ok
        assert outcomes[0].error_kind == "crash"
        assert outcomes[0].attempts == 3
        assert outcomes[1].ok  # the healthy experiment still completes
        assert timings.counters["worker_crashes"] == 3
        assert timings.counters["retries"] == 2

    def test_fail_fast_cancels_remaining_work(self, cache, monkeypatch):
        def boom(scale="paper", seed=0):
            raise RuntimeError("boom")

        monkeypatch.setitem(EXPERIMENTS, "fig2", boom)
        timings = Timings()
        outcomes = run_supervised(
            ["fig2", "fig4"],
            scale="small",
            seed=0,
            config=SupervisorConfig(jobs=1, fail_fast=True),
            timings=timings,
        )
        assert outcomes[0].error_kind == "exception"
        assert outcomes[1].error_kind == "cancelled"
        assert timings.counters["cancelled"] == 1

    def test_deadline_bounds_the_run(self, cache):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "fig4", "kind": "hang", "seconds": 600}]
        )
        start = time.monotonic()
        outcomes = run_supervised(
            ["fig4"],
            scale="small",
            seed=0,
            config=SupervisorConfig(jobs=1, deadline=2.0),
            plan=plan,
        )
        assert time.monotonic() - start < 60
        assert not outcomes[0].ok
        # A worker live at the deadline is killed there; depending on
        # which check observes it first the attempt reads as a timeout
        # (kill_at clamped to the deadline) or an outright cancellation.
        assert outcomes[0].error_kind in {"timeout", "cancelled"}


class TestResumeAfterKill:
    def test_sigkilled_run_resumes_byte_identically(self, warm_cache, capsys):
        ids = list(EXPERIMENTS)
        run = run_id(ids, "small", 0)
        journal = journal_path(warm_cache, run)

        datasets.configure_cache(warm_cache)
        datasets.reset_dataset_stats()
        serial = run_experiments(ids, scale="small", seed=0, jobs=1)
        assert all(o.ok for o in serial)
        expected_stdout = "".join(o.rendered + "\n\n" for o in serial)

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.experiments.runner",
                "--jobs",
                "2",
                "--scale",
                "small",
                "--seed",
                "0",
                "--cache-dir",
                str(warm_cache),
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            env=env,
            cwd=str(REPO_ROOT),
        )
        # Wait for a few checkpoints, then SIGKILL mid-run.
        poll_deadline = time.monotonic() + 300
        while time.monotonic() < poll_deadline:
            if proc.poll() is not None:
                break
            if journal.exists():
                lines = journal.read_text(encoding="utf-8").splitlines()
                if len(lines) >= 4:  # header + >= 3 finished experiments
                    break
            time.sleep(0.1)
        if proc.poll() is None:
            proc.kill()
            proc.wait()

        header, completed = load_journal(journal)
        assert header["run"] == run

        rc = runner_main(["--resume", run, "--cache-dir", str(warm_cache)])
        out, err = capsys.readouterr()
        assert rc == 0
        assert out == expected_stdout
        assert f"resuming run {run}" in err

        datasets.configure_cache(None)
        datasets.reset_dataset_stats()


class TestRunnerSupervisionCli:
    def test_resume_conflicts_with_no_cache(self, capsys):
        assert runner_main(["--resume", "abc123", "--no-cache"]) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_resume_rejects_explicit_ids(self, tmp_path, capsys):
        rc = runner_main(
            ["fig4", "--resume", "abc123", "--cache-dir", str(tmp_path)]
        )
        assert rc == 2
        assert "experiment list" in capsys.readouterr().err

    def test_resume_unknown_run_id(self, tmp_path, capsys):
        rc = runner_main(
            ["--resume", "deadbeef0000", "--cache-dir", str(tmp_path)]
        )
        assert rc == 2
        assert "no journal" in capsys.readouterr().err

    def test_resume_rejects_conflicting_scale(self, tmp_path, capsys):
        run = run_id(["fig4"], "small", 0)
        write_journal_header(
            journal_path(tmp_path, run), ["fig4"], "small", 0
        )
        rc = runner_main(
            [
                "--resume",
                run,
                "--scale",
                "paper",
                "--cache-dir",
                str(tmp_path),
            ]
        )
        assert rc == 2
        assert "conflicts" in capsys.readouterr().err

    def test_bad_retry_and_budget_flags(self, capsys):
        assert runner_main(["fig4", "--retries", "-1"]) == 2
        assert "--retries" in capsys.readouterr().err
        assert runner_main(["fig4", "--timeout", "0"]) == 2
        assert "--timeout" in capsys.readouterr().err
        assert runner_main(["fig4", "--deadline", "-3"]) == 2
        assert "--deadline" in capsys.readouterr().err

    def test_supervised_run_journals_and_reports_run_id(
        self, cache, capsys, monkeypatch
    ):
        ids = ["fig4", "tab1"]
        rc = runner_main(
            [*ids, "--scale", "small", "--jobs", "2", "--cache-dir", str(cache)]
        )
        out, err = capsys.readouterr()
        assert rc == 0
        run = run_id(ids, "small", 0)
        assert f"run id: {run}" in err
        header, completed = load_journal(journal_path(cache, run))
        assert header["ids"] == ids
        assert set(completed) == set(ids)
        assert all(o.ok for o in completed.values())

    def test_permanent_failure_exits_nonzero_others_complete(
        self, cache, capsys, monkeypatch
    ):
        def boom(scale="paper", seed=0):
            raise RuntimeError("synthetic permanent failure")

        monkeypatch.setitem(EXPERIMENTS, "fig2", boom)
        rc = runner_main(
            [
                "fig2",
                "fig4",
                "--scale",
                "small",
                "--retries",
                "2",
                "--cache-dir",
                str(cache),
            ]
        )
        out, err = capsys.readouterr()
        assert rc == 1
        assert "fig2 failed [exception]" in err
        assert "synthetic permanent failure" in err
        assert "fig4" in out  # the healthy experiment still rendered
