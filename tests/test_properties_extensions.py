"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.apps.consolidation import pack_demands
from repro.core.distance import cdf_area_distance, ks_two_sample
from repro.core.fit import fit_exponential, fit_lognormal
from repro.hostload.modes import kmeans

positive_floats = st.floats(
    min_value=1e-3, max_value=1e6, allow_nan=False, allow_infinity=False
)
unit_floats = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestDistanceProperties:
    @given(
        arrays(np.float64, st.integers(1, 100), elements=positive_floats),
        arrays(np.float64, st.integers(1, 100), elements=positive_floats),
    )
    def test_ks_symmetric_and_bounded(self, a, b):
        d = ks_two_sample(a, b)
        assert 0 <= d <= 1
        assert d == pytest.approx(ks_two_sample(b, a))

    @given(arrays(np.float64, st.integers(1, 100), elements=positive_floats))
    def test_self_distance_zero(self, a):
        assert ks_two_sample(a, a) == 0.0
        assert cdf_area_distance(a, a) == 0.0

    @given(
        arrays(np.float64, st.integers(1, 60), elements=positive_floats),
        arrays(np.float64, st.integers(1, 60), elements=positive_floats),
        arrays(np.float64, st.integers(1, 60), elements=positive_floats),
    )
    def test_ks_triangle_inequality(self, a, b, c):
        assert ks_two_sample(a, c) <= (
            ks_two_sample(a, b) + ks_two_sample(b, c) + 1e-12
        )

    @given(
        arrays(np.float64, st.integers(1, 100), elements=positive_floats),
        st.floats(min_value=0.01, max_value=100),
    )
    def test_area_distance_shift(self, a, shift):
        """Shifting a sample by s moves the area distance to exactly s."""
        assert cdf_area_distance(a, a + shift) == pytest.approx(shift)


class TestFitProperties:
    @given(
        arrays(
            np.float64,
            st.integers(10, 200),
            elements=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        )
    )
    def test_exponential_fit_matches_mean(self, sample):
        fit = fit_exponential(sample)
        assert fit.params["mean"] == pytest.approx(float(sample.mean()))
        assert 0 <= fit.ks <= 1

    @given(
        arrays(
            np.float64,
            st.integers(10, 200),
            elements=st.floats(min_value=0.1, max_value=1e4, allow_nan=False),
        ),
        st.floats(min_value=0.5, max_value=20),
    )
    def test_lognormal_fit_scale_equivariant(self, sample, factor):
        """Scaling the data scales the median, keeps sigma."""
        a = fit_lognormal(sample)
        b = fit_lognormal(sample * factor)
        assert b.params["median"] == pytest.approx(
            a.params["median"] * factor, rel=1e-6
        )
        assert b.params["sigma"] == pytest.approx(a.params["sigma"], abs=1e-9)


class TestKmeansProperties:
    @settings(max_examples=25)
    @given(
        st.integers(2, 40).flatmap(
            lambda n: st.tuples(
                st.just(n),
                arrays(np.float64, (n, 3), elements=unit_floats),
                st.integers(1, min(n, 5)),
            )
        )
    )
    def test_labels_valid_and_centroids_finite(self, args):
        n, points, k = args
        rng = np.random.default_rng(0)
        labels, centroids = kmeans(points, k, rng)
        assert labels.shape == (n,)
        assert labels.min() >= 0 and labels.max() < k
        assert np.all(np.isfinite(centroids))


class TestPackingProperties:
    @settings(max_examples=50)
    @given(
        st.integers(1, 12).flatmap(
            lambda n: st.tuples(
                arrays(
                    np.float64,
                    n,
                    elements=st.floats(min_value=0, max_value=0.4,
                                       allow_nan=False),
                ),
                arrays(
                    np.float64,
                    n,
                    elements=st.floats(min_value=0, max_value=0.4,
                                       allow_nan=False),
                ),
            )
        )
    )
    def test_pack_bounded_by_fleet(self, demands):
        cpu, mem = demands
        n = len(cpu)
        caps = np.ones(n)
        used = pack_demands(cpu, mem, caps, caps, headroom=0.0)
        assert 0 <= used <= n
        # Trivial lower bound: total demand / per-machine capacity.
        assert used >= int(np.ceil(max(cpu.sum(), mem.sum()) - 1e-9))

    @settings(max_examples=30)
    @given(
        arrays(
            np.float64,
            8,
            elements=st.floats(min_value=0, max_value=0.3, allow_nan=False),
        )
    )
    def test_more_headroom_never_fewer_machines(self, cpu):
        mem = cpu.copy()
        caps = np.ones(8)
        loose = pack_demands(cpu, mem, caps, caps, headroom=0.0)
        tight = pack_demands(cpu, mem, caps, caps, headroom=0.3)
        assert tight >= loose
