"""Unit tests for the stage-timing/counter layer."""

from repro.core.timing import StageStats, Timings, render_timings


class TestTimings:
    def test_stage_accumulates(self):
        t = Timings()
        with t.stage("work"):
            pass
        with t.stage("work"):
            pass
        assert t.stages["work"].calls == 2
        assert t.stages["work"].wall_s >= 0.0
        assert t.stages["work"].cpu_s >= 0.0

    def test_stage_records_on_exception(self):
        t = Timings()
        try:
            with t.stage("boom"):
                raise RuntimeError("x")
        except RuntimeError:
            pass
        assert t.stages["boom"].calls == 1

    def test_counters(self):
        t = Timings()
        t.count("hits")
        t.count("hits", 2)
        assert t.counters == {"hits": 3}

    def test_merge(self):
        a = Timings()
        a.record("s", 1.0, 0.5)
        a.count("n", 1)
        b = Timings()
        b.record("s", 2.0, 1.0)
        b.record("other", 0.25, 0.25)
        b.count("n", 4)
        a.merge(b)
        assert a.stages["s"].calls == 2
        assert a.stages["s"].wall_s == 3.0
        assert a.stages["other"].wall_s == 0.25
        assert a.counters["n"] == 5

    def test_merge_without_counters(self):
        a = Timings()
        b = Timings()
        b.record("s", 1.0, 1.0)
        b.count("n", 7)
        a.merge(b, counters=False)
        assert "s" in a.stages
        assert a.counters == {}

    def test_merge_counts(self):
        t = Timings()
        t.merge_counts({"x": 2, "y": 0})
        t.merge_counts({"x": 3})
        assert t.counters == {"x": 5, "y": 0}

    def test_as_dict_round_numbers(self):
        t = Timings()
        t.record("s", 1.23456789, 0.5)
        t.count("hits", 2)
        d = t.as_dict()
        assert d["stages"]["s"]["calls"] == 1
        assert abs(d["stages"]["s"]["wall_s"] - 1.234568) < 1e-9
        assert d["counters"] == {"hits": 2}


class TestRender:
    def test_footer_contains_stages_and_counters(self):
        t = Timings()
        t.record("warm-datasets", 0.5, 0.25)
        t.count("disk_hits", 2)
        text = render_timings(t)
        assert "warm-datasets" in text
        assert "disk_hits=2" in text
        assert "wall s" in text

    def test_stage_stats_as_dict(self):
        s = StageStats()
        s.add(1.0, 0.5)
        assert s.as_dict() == {"calls": 1, "wall_s": 1.0, "cpu_s": 0.5}
