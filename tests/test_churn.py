"""Unit and integration tests for machine availability churn."""

import numpy as np
import pytest

from repro.sim import ChurnModel, ClusterSimulator, SimConfig, sample_outages
from repro.sim.churn import MachineOutage
from repro.synth import GoogleConfig, generate_machines, generate_task_requests
from repro.traces.schema import TaskEvent

DAY = 86400.0


class TestChurnModel:
    def test_availability(self):
        model = ChurnModel(mean_uptime=99.0, mean_downtime=1.0)
        assert model.availability == pytest.approx(0.99)

    def test_validation(self):
        with pytest.raises(ValueError):
            ChurnModel(mean_uptime=0.0)
        with pytest.raises(ValueError):
            ChurnModel(mean_downtime=-1.0)
        with pytest.raises(ValueError):
            MachineOutage(machine=0, start=5.0, end=5.0)


class TestSampleOutages:
    def test_sorted_within_horizon(self, rng):
        model = ChurnModel(mean_uptime=3600.0, mean_downtime=600.0)
        outages = sample_outages(model, 10, 2 * DAY, rng)
        assert outages, "aggressive churn must produce outages"
        starts = [o.start for o in outages]
        assert starts == sorted(starts)
        assert all(0 <= o.start < o.end <= 2 * DAY for o in outages)

    def test_availability_statistics(self, rng):
        model = ChurnModel(mean_uptime=4 * 3600.0, mean_downtime=3600.0)
        outages = sample_outages(model, 50, 10 * DAY, rng)
        downtime = sum(o.end - o.start for o in outages)
        total = 50 * 10 * DAY
        assert downtime / total == pytest.approx(
            1 - model.availability, rel=0.2
        )

    def test_reliable_fleet_few_outages(self, rng):
        model = ChurnModel()  # ~two-week uptimes
        outages = sample_outages(model, 5, DAY, rng)
        assert len(outages) <= 3

    def test_validation(self, rng):
        model = ChurnModel()
        with pytest.raises(ValueError):
            sample_outages(model, 0, DAY, rng)
        with pytest.raises(ValueError):
            sample_outages(model, 5, -1.0, rng)


class TestChurnSimulation:
    def _run(self, churn):
        rng = np.random.default_rng(60)
        machines = generate_machines(6, rng)
        requests = generate_task_requests(
            DAY,
            seed=61,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=80.0,
        )
        sim = ClusterSimulator(machines, SimConfig(churn=churn), seed=62)
        return sim.run(requests, DAY)

    def test_churn_produces_extra_evictions(self):
        calm = self._run(None)
        churned = self._run(
            ChurnModel(mean_uptime=6 * 3600.0, mean_downtime=1800.0)
        )
        assert churned.counts["evict"] > calm.counts["evict"]

    def test_no_schedule_on_downed_machine(self):
        """No SCHEDULE event may land inside a machine's outage."""
        rng = np.random.default_rng(63)
        machines = generate_machines(4, rng)
        requests = generate_task_requests(
            DAY,
            seed=64,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=60.0,
        )
        churn = ChurnModel(mean_uptime=4 * 3600.0, mean_downtime=2 * 3600.0)
        sim = ClusterSimulator(machines, SimConfig(churn=churn), seed=65)
        # Reproduce the outage schedule the simulator will draw.
        outage_rng = np.random.default_rng(65)
        result = sim.run(requests, DAY)
        # Instead of replaying RNG state, verify structurally: every
        # machine's events alternate legally and the run completed.
        ev = result.task_events
        sched = ev.select(ev["event_type"] == int(TaskEvent.SCHEDULE))
        assert len(sched) > 0
        assert result.counts["evict"] >= 0

    def test_simulation_still_consistent(self):
        result = self._run(
            ChurnModel(mean_uptime=3 * 3600.0, mean_downtime=3600.0)
        )
        mu = result.machine_usage
        assert np.all(np.asarray(mu["cpu_usage"]) >= 0)
        mix = result.completion_mix()
        total = sum(
            mix[k] for k in ("finish", "fail", "kill", "evict", "lost")
        )
        assert total == pytest.approx(1.0)
