"""Tests for reprolint's crash-consistency CFG analysis (PR 10).

Covers the per-function abstract interpreter in
:mod:`repro.analysis.cfg` (resource-state lattice, exception and
early-return paths, ownership escape), the three flow rules built on it
(REP801 atomic-publish, REP802 fsync-ordering, REP803
resource-lifecycle), the durable-roots scoping, the cross-function
lifecycle summaries (callee publish helpers, caller-state incoming
facts), the incremental cache's re-keying when a caller edit changes a
callee's incoming path states, --jobs output parity, SARIF evidence
chains, and a mutant gate proving each protocol step is load-bearing.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.cli import explain_rule
from repro.analysis.reporters import render_sarif

MINI_PYPROJECT = """\
[project]
name = "repro"

[tool.reprolint]
exclude = ["*.egg-info/*", "*__pycache__*"]
durable-roots = ["repro.core.store", "repro.core.writer"]

[tool.reprolint.layers]
core = 0
traces = 1
synth = 2
hostload = 2
sim = 3
apps = 3
experiments = 4
"""

MINI_SCHEMA = """\
JOB_TABLE_SCHEMA = {
    "job_id": "int64",
    "submit_time": "float64",
}
"""


@pytest.fixture
def project(tmp_path):
    """A minimal repro-shaped project; returns a writer/linter helper."""

    class Project:
        root = tmp_path

        def write(self, relpath: str, source: str) -> Path:
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            return path

        def lint(self, *relpaths: str, **kwargs):
            targets = [tmp_path / p for p in (relpaths or ("src",))]
            return lint_paths(targets, root=tmp_path, **kwargs)

    proj = Project()
    proj.write("pyproject.toml", MINI_PYPROJECT)
    proj.write("src/repro/traces/schema.py", MINI_SCHEMA)
    proj.write("src/repro/__init__.py", "")
    return proj


def only(run, rule_id: str):
    return [d for d in run.all_diagnostics if d.rule_id == rule_id]


def in_file(run, rule_id: str, relpath: str):
    return [d for d in only(run, rule_id) if d.path == relpath]


# -- REP801: atomic publish ---------------------------------------------------


class TestAtomicPublish:
    def test_in_place_write_to_durable_path_fails(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    fh.write(json.dumps(payload))
            """,
        )
        [diag] = only(project.lint(), "REP801")
        assert diag.path == "src/repro/core/store.py"
        assert "publish protocol" in diag.message

    def test_same_code_outside_durable_roots_passes(self, project):
        # The rule is scoped: sloppy writes to scratch artifacts in
        # non-durable modules are not crash-consistency defects.
        project.write(
            "src/repro/apps/report.py",
            """\
            import json

            def save(path, payload):
                with open(path, "w") as fh:
                    fh.write(json.dumps(payload))
            """,
        )
        assert not only(project.lint(), "REP801")

    def test_temp_sibling_then_rename_passes(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.rename(tmp, path)
                fd = os.open(os.path.dirname(path), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        run = project.lint()
        assert not only(run, "REP801")
        assert not only(run, "REP802")

    def test_write_that_stays_temp_passes(self, project):
        # A scratch file that is never published is not a durable
        # artifact; only in-place writes to real destinations fire.
        project.write(
            "src/repro/core/store.py",
            """\
            def stage(path, data):
                with open(path + ".tmp", "w") as fh:
                    fh.write(data)
            """,
        )
        assert not only(project.lint(), "REP801")


# -- REP802: fsync ordering ---------------------------------------------------


class TestFsyncOrder:
    def test_rename_of_unsynced_payload_fails(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                os.rename(tmp, path)
                fd = os.open(os.path.dirname(path), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        [diag] = only(project.lint(), "REP802")
        assert diag.path == "src/repro/core/store.py"
        assert "fsync" in diag.message
        # The evidence chain points at the un-synced write site.
        assert diag.related
        assert any("written here" in note for _line, note in diag.related)

    def test_fsync_after_rename_is_still_wrong(self, project):
        # The ordering matters: syncing the payload once it is already
        # visible under the final name does not close the crash window.
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                fh = open(tmp, "w")
                fh.write(data)
                os.rename(tmp, path)
                os.fsync(fh.fileno())
                fh.close()
                fd = os.open(os.path.dirname(path), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        assert only(project.lint(), "REP802")

    def test_missing_parent_dir_fsync_fails(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.rename(tmp, path)
            """,
        )
        [diag] = only(project.lint(), "REP802")
        assert "parent directory" in diag.message

    def test_callee_publish_helper_counts(self, project):
        # The whole protocol lives in a helper; the caller's rename
        # obligations are discharged by the callee's summary.
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def _fsync_file(path):
                fd = os.open(path, os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)

            def publish(tmp, dst):
                _fsync_file(tmp)
                os.rename(tmp, dst)
                fd = os.open(os.path.dirname(dst), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        project.write(
            "src/repro/core/writer.py",
            """\
            from .store import publish

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                publish(tmp, path)
            """,
        )
        run = project.lint()
        assert not only(run, "REP801")
        assert not only(run, "REP802")

    def test_callee_rename_without_fsync_fails_at_call_site(self, project):
        # The helper renames but never syncs; the caller hands it a
        # freshly written payload, so the call site is the defect.
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def publish(tmp, dst):
                os.rename(tmp, dst)
                fd = os.open(os.path.dirname(dst), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        project.write(
            "src/repro/core/writer.py",
            """\
            from .store import publish

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                publish(tmp, path)
            """,
        )
        run = project.lint()
        assert in_file(run, "REP802", "src/repro/core/writer.py")


# -- REP803: resource lifecycle -----------------------------------------------


class TestResourceLifecycle:
    def test_unclosed_handle_fails(self, project):
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                fh = open(path)
                line = fh.readline()
                return line
            """,
        )
        [diag] = only(project.lint(), "REP803")
        assert diag.path == "src/repro/apps/report.py"
        assert "not released" in diag.message

    def test_with_block_passes(self, project):
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                with open(path) as fh:
                    return fh.readline()
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_try_finally_close_passes(self, project):
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                fh = open(path)
                try:
                    return fh.readline()
                finally:
                    fh.close()
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_exception_path_leak_fails_with_evidence(self, project):
        # Closed on the straight-line path, leaked if readline raises.
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                fh = open(path)
                line = fh.readline()
                fh.close()
                return line
            """,
        )
        [diag] = only(project.lint(), "REP803")
        assert "exception" in diag.message
        assert diag.related
        assert any(
            "leave the function" in note for _line, note in diag.related
        )

    def test_returned_handle_is_callers_problem(self, project):
        project.write(
            "src/repro/apps/report.py",
            """\
            def opened(path):
                return open(path)
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_handle_stored_on_self_passes(self, project):
        project.write(
            "src/repro/apps/report.py",
            """\
            class Reader:
                def __init__(self, path):
                    self._fh = open(path)
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_handle_passed_to_unknown_callee_passes(self, project):
        # Conservative silence: an unresolved callee may take ownership.
        project.write(
            "src/repro/apps/report.py",
            """\
            from contextlib import ExitStack

            def head(path, stack):
                fh = stack.enter_context(open(path))
                return fh.readline()
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_loop_open_close_passes(self, project):
        project.write(
            "src/repro/apps/report.py",
            """\
            def heads(paths):
                out = []
                for path in paths:
                    fh = open(path)
                    try:
                        out.append(fh.readline())
                    finally:
                        fh.close()
                return out
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_loop_close_skipped_on_exception_fails(self, project):
        # Open/use/close straight-lined inside a loop: an exception in
        # the use leaks the current iteration's handle.
        project.write(
            "src/repro/apps/report.py",
            """\
            def heads(paths):
                out = []
                for path in paths:
                    fh = open(path)
                    out.append(fh.readline())
                    fh.close()
                return out
            """,
        )
        [diag] = only(project.lint(), "REP803")
        assert "exception" in diag.message

    def test_returned_expression_escapes_receiver(self, project):
        # `return fh.readline()` hands every name in the returned
        # expression to the caller as far as the analysis can tell;
        # conservative silence, not a finding.
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                fh = open(path)
                return fh.readline()
            """,
        )
        assert not only(project.lint(), "REP803")

    def test_tests_are_exempt(self, project):
        project.write(
            "src/repro/apps/test_report.py",
            """\
            def test_head(tmp_path):
                fh = open(tmp_path / "x")
                assert fh.readline() == ""
            """,
        )
        assert not only(project.lint(), "REP803")


# -- rule selection and explain -----------------------------------------------


class TestRuleSelection:
    LEAKY = """\
    def head(path):
        fh = open(path)
        line = fh.readline()
        return line
    """

    def test_select_narrows(self, project):
        project.write("src/repro/apps/report.py", self.LEAKY)
        run = project.lint(select=("REP803",))
        assert only(run, "REP803")
        run = project.lint(select=("REP801",))
        assert not run.all_diagnostics

    def test_ignore_drops(self, project):
        project.write("src/repro/apps/report.py", self.LEAKY)
        assert not project.lint(ignore=("REP803",)).all_diagnostics

    @pytest.mark.parametrize("rule", ["REP801", "REP802", "REP803"])
    def test_explain_has_doc_and_example(self, rule):
        text = explain_rule(rule)
        assert rule in text
        assert "fsync" in text or "close" in text or "release" in text


# -- caching ------------------------------------------------------------------


class TestLifecycleCaching:
    def test_warm_run_reanalyzes_nothing(self, project, tmp_path):
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                fh = open(path)
                line = fh.readline()
                return line
            """,
        )
        cache = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache)
        assert only(cold, "REP803")
        warm = project.lint(cache_dir=cache)
        assert warm.files_analyzed == 0
        assert warm.files_cached == warm.files_checked
        assert [d.to_dict() for d in warm.all_diagnostics] == [
            d.to_dict() for d in cold.all_diagnostics
        ]

    def test_caller_edit_rekeys_callee_verdict(self, project, tmp_path):
        # store.py does not import writer.py, so the import closure
        # alone would serve a stale REP802 verdict for the helper; the
        # lifecycle-facts fingerprint must re-key it when the caller's
        # handed-over path state changes.
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def publish(src, dst):
                os.rename(src, dst)
                fd = os.open(os.path.dirname(dst), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        project.write(
            "src/repro/core/writer.py",
            """\
            from .store import publish

            def save(path, data):
                staging = path + "-stage"
                with open(staging, "w") as fh:
                    fh.write(data)
                publish(staging, path)
            """,
        )
        cache = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache)
        assert in_file(cold, "REP802", "src/repro/core/store.py")
        # The caller now syncs before handing over; the helper's rename
        # of an already-fsynced payload is fine.
        project.write(
            "src/repro/core/writer.py",
            """\
            import os

            from .store import publish

            def save(path, data):
                staging = path + "-stage"
                with open(staging, "w") as fh:
                    fh.write(data)
                    fh.flush()
                    os.fsync(fh.fileno())
                publish(staging, path)
            """,
        )
        warm = project.lint(cache_dir=cache)
        assert not in_file(warm, "REP802", "src/repro/core/store.py")
        # Both the edited caller and the re-keyed callee were re-run.
        assert warm.files_analyzed >= 2


# -- parallel parity and SARIF ------------------------------------------------


class TestOutputs:
    def test_parallel_output_matches_serial(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                os.rename(tmp, path)
            """,
        )
        project.write(
            "src/repro/apps/report.py",
            """\
            def head(path):
                fh = open(path)
                line = fh.readline()
                return line
            """,
        )
        serial = project.lint(jobs=1)
        parallel = project.lint(jobs=2)
        assert serial.all_diagnostics
        assert [d.to_dict() for d in serial.all_diagnostics] == [
            d.to_dict() for d in parallel.all_diagnostics
        ]
        assert render_sarif(serial) == render_sarif(parallel)

    def test_sarif_carries_rules_and_evidence_chain(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                os.rename(tmp, path)
                fd = os.open(os.path.dirname(path), os.O_RDONLY)
                try:
                    os.fsync(fd)
                finally:
                    os.close(fd)
            """,
        )
        import json

        run = project.lint()
        sarif = json.loads(render_sarif(run))
        rule_ids = {
            r["id"] for r in sarif["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {"REP801", "REP802", "REP803"} <= rule_ids
        results = [
            r
            for r in sarif["runs"][0]["results"]
            if r["ruleId"] == "REP802"
        ]
        assert results
        # The write-site evidence rides along as relatedLocations.
        related = results[0].get("relatedLocations")
        assert related
        assert all(
            loc["physicalLocation"]["region"]["startLine"] > 0
            for loc in related
        )

    def test_diagnostic_related_roundtrips(self, project):
        from repro.analysis.diagnostics import Diagnostic

        project.write(
            "src/repro/core/store.py",
            """\
            import os

            def save(path, data):
                tmp = path + ".tmp"
                with open(tmp, "w") as fh:
                    fh.write(data)
                os.rename(tmp, path)
            """,
        )
        diags = only(project.lint(), "REP802")
        assert diags
        diag = next(d for d in diags if d.related)
        assert Diagnostic.from_dict(diag.to_dict()) == diag


# -- mutant gate --------------------------------------------------------------

GOOD_STORE = """\
import os


def fsync_file(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def fsync_dir(path):
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def publish(tmp, dst):
    fsync_file(tmp)
    os.rename(tmp, dst)
    fsync_dir(os.path.dirname(dst))


def save(path, data):
    tmp = path + ".tmp"
    with open(tmp, "w") as fh:
        fh.write(data)
    publish(tmp, path)
"""

#: (name, original snippet, mutated snippet, rule the gate must trip).
MUTANTS = [
    (
        "drop-payload-fsync",
        "def publish(tmp, dst):\n    fsync_file(tmp)\n    os.rename",
        "def publish(tmp, dst):\n    os.rename",
        "REP802",
    ),
    (
        "drop-parent-dir-fsync",
        "    fsync_dir(os.path.dirname(dst))\n",
        "",
        "REP802",
    ),
    (
        "drop-fd-close",
        "def fsync_file(path):\n    fd = os.open(path, os.O_RDONLY)\n"
        "    try:\n        os.fsync(fd)\n    finally:\n        os.close(fd)",
        "def fsync_file(path):\n    fd = os.open(path, os.O_RDONLY)\n"
        "    os.fsync(fd)",
        "REP803",
    ),
    (
        "bypass-temp-rename",
        'def save(path, data):\n    tmp = path + ".tmp"\n'
        '    with open(tmp, "w") as fh:\n        fh.write(data)\n'
        "    publish(tmp, path)",
        'def save(path, data):\n    with open(path, "w") as fh:\n'
        "        fh.write(data)",
        "REP801",
    ),
]


class TestMutantGate:
    """Deleting any single protocol step must produce a diagnostic.

    This is the soundness gate for the whole layer: a checker that
    stays quiet when the fsync, the rename discipline, or the close is
    removed would also stay quiet on the real regressions it exists to
    catch.
    """

    def test_intact_protocol_is_clean(self, project):
        project.write("src/repro/core/store.py", GOOD_STORE)
        run = project.lint()
        for rule in ("REP801", "REP802", "REP803"):
            assert not only(run, rule), rule

    @pytest.mark.parametrize(
        "name,old,new,rule", MUTANTS, ids=[m[0] for m in MUTANTS]
    )
    def test_mutant_is_caught(self, project, name, old, new, rule):
        assert old in GOOD_STORE, name
        mutated = GOOD_STORE.replace(old, new)
        assert mutated != GOOD_STORE, name
        project.write("src/repro/core/store.py", mutated)
        assert only(project.lint(), rule), name
