"""Tests for the streaming usage-grid accumulator (hostload.stream)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import pooled_level_durations
from repro.hostload.levels import _pooled_level_durations_scalar
from repro.hostload.series import grouped_machine_series
from repro.hostload.stream import (
    _CAPACITY_OF,
    USAGE_GRID_SCHEMA,
    UsageGridAccumulator,
)
from repro.sim.monitor import MACHINE_USAGE_SCHEMA
from repro.synth.machines import generate_machines

PERIOD = 300.0


@pytest.fixture
def machines(rng):
    return generate_machines(5, rng)


def _random_tasks(rng, n, n_machines, horizon):
    start = rng.uniform(-0.1 * horizon, horizon, n)
    return {
        "slots": rng.integers(0, n_machines, n),
        "start": start,
        "end": start + rng.exponential(4 * PERIOD, n),
        "cpu": rng.uniform(0.0, 0.3, n),
        "mem": rng.uniform(0.0, 0.2, n),
        "band": rng.integers(0, 3, n),
    }


def _scalar_grid(tasks, n_machines, n_ticks, values, band_min=None):
    """Golden reference: one Python loop over tasks, one over ticks."""
    grid = np.zeros((n_machines, n_ticks))
    for i in range(len(tasks["slots"])):
        if band_min is not None and tasks["band"][i] < band_min:
            continue
        for k in range(n_ticks):
            if tasks["start"][i] <= k * PERIOD < tasks["end"][i]:
                grid[tasks["slots"][i], k] += values[i]
    return grid


class TestUsageGridAccumulator:
    def test_matches_scalar_reference(self, rng, machines):
        horizon = 40 * PERIOD
        acc = UsageGridAccumulator(
            machines,
            horizon,
            period=PERIOD,
            attributes=("cpu_usage", "cpu_mid_high", "cpu_high", "mem_usage"),
        )
        tasks = _random_tasks(rng, 300, machines.num_rows, horizon)
        acc.add_tasks(
            tasks["slots"],
            tasks["start"],
            tasks["end"],
            cpu=tasks["cpu"],
            mem=tasks["mem"],
            band=tasks["band"],
        )
        n_m, n_t = machines.num_rows, acc.num_ticks
        for attr, values, band_min in (
            ("cpu_usage", tasks["cpu"], None),
            ("cpu_mid_high", tasks["cpu"], 1),
            ("cpu_high", tasks["cpu"], 2),
            ("mem_usage", tasks["mem"], None),
        ):
            ref = _scalar_grid(tasks, n_m, n_t, values, band_min)
            np.testing.assert_allclose(
                acc.grid(attr), ref, rtol=0, atol=1e-12, err_msg=attr
            )
        counts = _scalar_grid(tasks, n_m, n_t, np.ones(300))
        np.testing.assert_array_equal(acc.grid("n_running"), counts)

    def test_chunked_adds_match_single_add(self, rng, machines):
        horizon = 20 * PERIOD
        tasks = _random_tasks(rng, 200, machines.num_rows, horizon)
        whole = UsageGridAccumulator(
            machines, horizon, period=PERIOD, attributes=("cpu_usage",)
        )
        whole.add_tasks(
            tasks["slots"], tasks["start"], tasks["end"], cpu=tasks["cpu"]
        )
        chunked = UsageGridAccumulator(
            machines, horizon, period=PERIOD, attributes=("cpu_usage",)
        )
        for lo in range(0, 200, 37):
            hi = lo + 37
            chunked.add_tasks(
                tasks["slots"][lo:hi],
                tasks["start"][lo:hi],
                tasks["end"][lo:hi],
                cpu=tasks["cpu"][lo:hi],
            )
        np.testing.assert_allclose(
            whole.grid("cpu_usage"), chunked.grid("cpu_usage"), atol=1e-12
        )

    def test_table_round_trips_through_series_extraction(self, rng, machines):
        # The row-expanded table must feed the existing per-machine
        # extractor; hostload can't import sim, so only the attributes
        # needed are tracked here (full schema tested below).
        horizon = 12 * PERIOD
        acc = UsageGridAccumulator(machines, horizon, period=PERIOD)
        tasks = _random_tasks(rng, 80, machines.num_rows, horizon)
        acc.add_tasks(
            tasks["slots"],
            tasks["start"],
            tasks["end"],
            cpu=tasks["cpu"],
            mem=tasks["mem"],
            mem_assigned=tasks["mem"],
            page_cache=tasks["mem"],
            band=tasks["band"],
        )
        table = acc.table()
        assert table.num_rows == machines.num_rows * acc.num_ticks
        series = grouped_machine_series(table, machines)
        for slot, (mid, s) in enumerate(series.items()):
            np.testing.assert_array_equal(s.times, acc._tick_times)
            np.testing.assert_array_equal(s.cpu, acc.grid("cpu_usage")[slot])
            np.testing.assert_array_equal(
                s.n_running, acc.grid("n_running")[slot]
            )

    def test_pool_matches_series_pipeline(self, rng, machines):
        # pool() -> pooled kernel must equal the table -> series ->
        # scalar golden pipeline, bit for bit.
        horizon = 15 * PERIOD
        acc = UsageGridAccumulator(machines, horizon, period=PERIOD)
        tasks = _random_tasks(rng, 120, machines.num_rows, horizon)
        acc.add_tasks(
            tasks["slots"],
            tasks["start"],
            tasks["end"],
            cpu=tasks["cpu"],
            mem=tasks["mem"],
            mem_assigned=tasks["mem"],
            page_cache=tasks["mem"],
            band=tasks["band"],
        )
        fast = pooled_level_durations(*acc.pool("cpu_usage"))
        series = grouped_machine_series(acc.table(), machines)
        golden = _pooled_level_durations_scalar(series, "cpu")
        assert fast.keys() == golden.keys()
        for lvl in fast:
            np.testing.assert_array_equal(fast[lvl], golden[lvl])

    def test_out_of_horizon_tasks_clipped(self, machines):
        acc = UsageGridAccumulator(
            machines, 10 * PERIOD, period=PERIOD, attributes=("cpu_usage",)
        )
        acc.add_tasks(
            np.array([0, 1, 2]),
            np.array([-5 * PERIOD, 9.5 * PERIOD, 20 * PERIOD]),
            np.array([2.5 * PERIOD, 40 * PERIOD, 21 * PERIOD]),
            cpu=np.array([1.0, 1.0, 1.0]),
        )
        grid = acc.grid("cpu_usage")
        np.testing.assert_array_equal(grid[0], [1, 1, 1] + [0] * 8)
        np.testing.assert_array_equal(grid[1], [0] * 10 + [1])
        np.testing.assert_array_equal(grid[2], np.zeros(11))

    def test_validation_errors(self, machines):
        with pytest.raises(ValueError, match="horizon"):
            UsageGridAccumulator(machines, 0.0)
        with pytest.raises(ValueError, match="unknown attributes"):
            UsageGridAccumulator(machines, 10.0, attributes=("bogus",))
        acc = UsageGridAccumulator(
            machines, 10 * PERIOD, attributes=("cpu_usage", "cpu_high")
        )
        one = np.array([0]), np.array([0.0]), np.array([PERIOD])
        with pytest.raises(ValueError, match="demand array is missing"):
            acc.add_tasks(*one)
        with pytest.raises(ValueError, match="band is required"):
            acc.add_tasks(*one, cpu=np.array([0.5]))
        with pytest.raises(ValueError, match="slots out of range"):
            acc.add_tasks(
                np.array([99]),
                np.array([0.0]),
                np.array([PERIOD]),
                cpu=np.array([0.5]),
                band=np.array([0]),
            )
        with pytest.raises(KeyError, match="not tracked"):
            acc.grid("mem_usage")


class TestSchemaCrossCheck:
    def test_matches_sim_monitor_schema(self):
        # hostload sits below sim, so the schema is duplicated there;
        # this is the cross-layer contract keeping the two in sync.
        assert USAGE_GRID_SCHEMA == MACHINE_USAGE_SCHEMA

    def test_every_float_attribute_has_a_capacity(self):
        assert set(_CAPACITY_OF) == set(USAGE_GRID_SCHEMA) - {
            "time",
            "machine_id",
            "n_running",
        }
