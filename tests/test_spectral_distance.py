"""Unit tests for spectral analysis and distribution distances."""

import numpy as np
import pytest

from repro.core.distance import (
    cdf_area_distance,
    ks_two_sample,
    stochastically_smaller,
)
from repro.core.spectral import (
    acf,
    diurnal_strength,
    dominant_period,
    periodogram,
)

DAY = 86400.0


def _diurnal_signal(days=10, period_s=300.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(0, days * DAY, period_s)
    return 0.5 + 0.4 * np.sin(2 * np.pi * t / DAY) + noise * rng.standard_normal(
        t.size
    )


class TestAcf:
    def test_length(self):
        out = acf(np.random.default_rng(0).standard_normal(100), max_lag=10)
        assert out.shape == (10,)

    def test_periodic_signal_peaks_at_period(self):
        x = np.tile([0.0, 1.0, 0.0, -1.0], 100)
        out = acf(x, max_lag=8)
        assert out[3] == pytest.approx(1.0, abs=0.05)  # lag 4 (index 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            acf(np.zeros(10), max_lag=0)
        with pytest.raises(ValueError):
            acf(np.zeros(5), max_lag=10)


class TestPeriodogram:
    def test_dominant_period_of_diurnal_signal(self):
        signal = _diurnal_signal()
        period = dominant_period(signal, 300.0)
        assert period == pytest.approx(DAY, rel=0.05)

    def test_shapes(self):
        freqs, power = periodogram(np.random.default_rng(1).random(256), 1.0)
        assert freqs.shape == power.shape
        assert np.all(power >= 0)
        assert np.all(freqs > 0)

    def test_validation(self):
        with pytest.raises(ValueError):
            periodogram(np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            periodogram(np.zeros(100), 0.0)


class TestDiurnalStrength:
    def test_diurnal_beats_noise(self):
        diurnal = _diurnal_signal(noise=0.02)
        rng = np.random.default_rng(2)
        flat = 0.5 + 0.05 * rng.standard_normal(diurnal.size)
        s_diurnal = diurnal_strength(diurnal, 300.0)
        s_flat = diurnal_strength(flat, 300.0)
        assert s_diurnal > 10 * s_flat
        assert s_diurnal > 0.5

    def test_grid_arrivals_more_diurnal_than_google(self):
        """The paper's key dynamic contrast, via folded daily profiles."""
        from repro.core.fairness import hourly_counts
        from repro.core.spectral import daily_profile_amplitude
        from repro.synth import generate_google_jobs, generate_grid_jobs
        from repro.synth.google_model import GoogleConfig

        horizon = 14 * DAY
        google = generate_google_jobs(
            horizon, seed=3, config=GoogleConfig(busy_window=None)
        )
        grid = generate_grid_jobs("AuverGrid", horizon, seed=4)
        g_counts = hourly_counts(
            np.asarray(google["submit_time"]), horizon
        ).astype(float)
        a_counts = hourly_counts(
            np.asarray(grid["submit_time"]), horizon
        ).astype(float)
        a_google = daily_profile_amplitude(g_counts, 24)
        a_grid = daily_profile_amplitude(a_counts, 24)
        assert a_grid > 3 * a_google

    def test_validation(self):
        with pytest.raises(ValueError):
            diurnal_strength(np.zeros(100), 300.0, tolerance=0.0)

    def test_constant_signal_zero(self):
        assert diurnal_strength(np.full(1000, 0.5), 300.0) == 0.0


class TestDistances:
    def test_identical_samples_zero(self):
        x = np.array([1.0, 2.0, 3.0])
        assert ks_two_sample(x, x) == 0.0
        assert cdf_area_distance(x, x) == 0.0

    def test_disjoint_samples_ks_one(self):
        a = np.array([1.0, 2.0])
        b = np.array([10.0, 20.0])
        assert ks_two_sample(a, b) == 1.0

    def test_area_equals_mean_shift(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(0, 1, 5000)
        b = a + 0.5
        assert cdf_area_distance(a, b) == pytest.approx(0.5, abs=0.02)

    def test_stochastic_dominance(self):
        rng = np.random.default_rng(4)
        small = rng.uniform(0, 1, 2000)
        large = rng.uniform(0.5, 2.0, 2000)
        assert stochastically_smaller(small, large)
        assert not stochastically_smaller(large, small)

    def test_tolerance(self):
        a = np.array([1.0, 3.0])
        b = np.array([2.0, 2.5])
        assert not stochastically_smaller(a, b)
        assert stochastically_smaller(a, b, tolerance=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            ks_two_sample(np.array([]), np.array([1.0]))
        with pytest.raises(ValueError):
            stochastically_smaller(
                np.array([1.0]), np.array([1.0]), tolerance=-1
            )

    def test_google_job_lengths_dominate_grid(self):
        """Fig. 3's visual: the Google CDF lies left of AuverGrid's."""
        from repro.synth import generate_google_jobs, generate_grid_jobs
        from repro.synth.google_model import GoogleConfig
        from repro.traces.convert import grid_jobs_to_job_table

        horizon = 4 * DAY
        google = generate_google_jobs(
            horizon, seed=5, config=GoogleConfig(busy_window=None)
        )
        grid = grid_jobs_to_job_table(
            generate_grid_jobs("AuverGrid", horizon, seed=6)
        )
        g_len = np.asarray(google["end_time"] - google["submit_time"])
        a_len = np.asarray(grid["end_time"] - grid["submit_time"])
        assert stochastically_smaller(g_len, a_len, tolerance=0.02)
        assert ks_two_sample(g_len, a_len) > 0.5
