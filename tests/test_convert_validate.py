"""Unit tests for format conversion and trace validation."""

import numpy as np
import pytest

from repro.synth.google_model import GoogleConfig, generate_google_trace
from repro.traces.convert import grid_jobs_to_job_table, job_interarrival_times
from repro.traces.gwa import gwa_table
from repro.traces.schema import JOB_TABLE_SCHEMA, TaskEvent
from repro.traces.swf import swf_table
from repro.core.table import Table
from repro.traces.validate import (
    ValidationError,
    validate_job_table,
    validate_trace,
)


class TestGridConversion:
    def test_gwa_converts(self):
        grid = gwa_table(
            submit_time=np.array([0.0, 100.0]),
            wait_time=np.array([10.0, 20.0]),
            run_time=np.array([50.0, 60.0]),
            num_procs=np.array([2, 4]),
            avg_cpu_time=np.array([40.0, 60.0]),
            used_memory=np.array([1024.0**2, 2 * 1024.0**2]),  # 1GB, 2GB
        )
        jobs = grid_jobs_to_job_table(grid, mem_capacity_gb=32.0)
        assert set(jobs.column_names) == set(JOB_TABLE_SCHEMA)
        # Eq. (4): procs * per-cpu time / wall clock.
        np.testing.assert_allclose(jobs["cpu_usage"], [2 * 40 / 50, 4 * 60 / 60])
        np.testing.assert_allclose(jobs["end_time"], [60.0, 180.0])
        np.testing.assert_allclose(jobs["mem_usage"], [1 / 32, 2 / 32])

    def test_swf_converts(self):
        grid = swf_table(
            submit_time=np.array([0.0]),
            run_time=np.array([100.0]),
            num_procs=np.array([8]),
        )
        jobs = grid_jobs_to_job_table(grid)
        assert jobs["num_tasks"][0] == 8

    def test_missing_cpu_time_assumes_busy(self):
        grid = gwa_table(
            submit_time=np.array([0.0]),
            run_time=np.array([100.0]),
            num_procs=np.array([4]),
        )
        jobs = grid_jobs_to_job_table(grid)
        assert jobs["cpu_usage"][0] == pytest.approx(4.0)

    def test_missing_memory_zero(self):
        grid = gwa_table(
            submit_time=np.array([0.0]), run_time=np.array([10.0])
        )
        jobs = grid_jobs_to_job_table(grid)
        assert jobs["mem_usage"][0] == 0.0

    def test_wrong_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            grid_jobs_to_job_table(Table({"a": [1.0]}))

    def test_validated_output(self):
        grid = gwa_table(
            submit_time=np.array([0.0, 5.0]),
            run_time=np.array([10.0, 20.0]),
            num_procs=np.array([1, 1]),
        )
        validate_job_table(grid_jobs_to_job_table(grid))


class TestInterarrival:
    def test_gaps(self):
        jobs = Table(
            {"submit_time": np.array([10.0, 0.0, 30.0])}
        )
        np.testing.assert_allclose(
            job_interarrival_times(jobs), [10.0, 20.0]
        )

    def test_single_job_empty(self):
        jobs = Table({"submit_time": np.array([5.0])})
        assert job_interarrival_times(jobs).size == 0


@pytest.fixture(scope="module")
def valid_trace():
    return generate_google_trace(
        horizon=4 * 3600.0,
        num_machines=6,
        seed=0,
        tasks_per_hour=80.0,
        config=GoogleConfig(busy_window=None),
    )


class TestValidateTrace:
    def test_valid_passes(self, valid_trace):
        validate_trace(valid_trace)

    def test_negative_submit_rejected(self, valid_trace):
        jobs = valid_trace.jobs
        bad_jobs = jobs.with_columns(
            submit_time=np.asarray(jobs["submit_time"]).copy()
        )
        bad_jobs["submit_time"][0] = -1.0
        with pytest.raises(ValidationError, match="submit_time"):
            validate_job_table(bad_jobs)

    def test_priority_out_of_range_rejected(self, valid_trace):
        jobs = valid_trace.jobs
        bad = np.asarray(jobs["priority"]).copy()
        bad[0] = 99
        with pytest.raises(ValidationError, match="priority"):
            validate_job_table(jobs.with_columns(priority=bad))

    def test_duplicate_job_id_rejected(self, valid_trace):
        jobs = valid_trace.jobs
        ids = np.asarray(jobs["job_id"]).copy()
        ids[1] = ids[0]
        with pytest.raises(ValidationError, match="duplicate"):
            validate_job_table(jobs.with_columns(job_id=ids))

    def test_event_beyond_horizon_rejected(self, valid_trace):
        import dataclasses

        ev = valid_trace.task_events
        times = np.asarray(ev["time"]).copy()
        times[-1] = valid_trace.horizon * 2
        bad = dataclasses.replace(
            valid_trace, task_events=ev.with_columns(time=times)
        )
        with pytest.raises(ValidationError, match="horizon"):
            validate_trace(bad)

    def test_schedule_without_machine_rejected(self, valid_trace):
        import dataclasses

        ev = valid_trace.task_events
        etype = np.asarray(ev["event_type"])
        machines = np.asarray(ev["machine_id"]).copy()
        sched_idx = np.flatnonzero(etype == int(TaskEvent.SCHEDULE))[0]
        machines[sched_idx] = -1
        bad = dataclasses.replace(
            valid_trace, task_events=ev.with_columns(machine_id=machines)
        )
        with pytest.raises(ValidationError, match="SCHEDULE"):
            validate_trace(bad)

    def test_event_order_violation_rejected(self, valid_trace):
        import dataclasses

        ev = valid_trace.task_events.sort_by("time")
        etype = np.asarray(ev["event_type"]).copy()
        # Make the first SUBMIT a SCHEDULE: task runs without pending.
        first_submit = np.flatnonzero(etype == int(TaskEvent.SUBMIT))[0]
        etype[first_submit] = int(TaskEvent.SCHEDULE)
        machines = np.asarray(ev["machine_id"]).copy()
        machines[first_submit] = 0
        bad = dataclasses.replace(
            valid_trace,
            task_events=ev.with_columns(event_type=etype, machine_id=machines),
        )
        with pytest.raises(ValidationError):
            validate_trace(bad)

    def test_event_order_check_skippable(self, valid_trace):
        validate_trace(valid_trace, check_event_order=False)

    def test_usage_above_one_rejected(self, valid_trace):
        import dataclasses

        us = valid_trace.task_usage
        cpu = np.asarray(us["cpu_usage"]).copy()
        cpu[0] = 1.5
        bad = dataclasses.replace(
            valid_trace, task_usage=us.with_columns(cpu_usage=cpu)
        )
        with pytest.raises(ValidationError, match="cpu_usage"):
            validate_trace(bad)
