"""Unit tests for the event queue, task state, and fleet accounting."""

import numpy as np
import pytest

from repro.sim.engine import EventQueue
from repro.sim.machine import FleetState
from repro.sim.task import SimTask
from repro.synth.machines import generate_machines
from repro.traces.schema import TaskState


class TestEventQueue:
    def test_time_order(self):
        q = EventQueue()
        q.push(3.0, 0, "c")
        q.push(1.0, 0, "a")
        q.push(2.0, 0, "b")
        assert [q.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_at_equal_time(self):
        q = EventQueue()
        q.push(1.0, 0, "first")
        q.push(1.0, 0, "second")
        assert q.pop()[2] == "first"
        assert q.pop()[2] == "second"

    def test_now_advances(self):
        q = EventQueue()
        q.push(5.0, 0)
        assert q.now == 0.0
        q.pop()
        assert q.now == 5.0

    def test_past_scheduling_rejected(self):
        q = EventQueue()
        q.push(5.0, 0)
        q.pop()
        with pytest.raises(ValueError, match="past"):
            q.push(1.0, 0)

    def test_peek_and_len(self):
        q = EventQueue()
        assert q.peek_time() is None
        assert len(q) == 0
        q.push(2.0, 1)
        assert q.peek_time() == 2.0
        assert len(q) == 1

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_time_rejected(self, bad):
        q = EventQueue()
        with pytest.raises(ValueError, match="finite"):
            q.push(bad, 0)

    def test_pop_batch_same_timestamp_window(self):
        q = EventQueue()
        q.push(1.0, 0, "a")
        q.push(1.0, 1, "b")
        q.push(2.0, 0, "c")
        batch = q.pop_batch()
        assert batch == [(1.0, 0, "a"), (1.0, 1, "b")]
        assert q.now == 1.0
        assert q.pop_batch() == [(2.0, 0, "c")]

    def test_pop_batch_matches_one_at_a_time(self):
        rng = np.random.default_rng(9)
        times = np.round(rng.uniform(0, 5, 60), 1)  # forces timestamp ties
        one, batched = EventQueue(), EventQueue()
        for i, t in enumerate(times):
            one.push(float(t), i % 3, i)
            batched.push(float(t), i % 3, i)
        singles = [one.pop() for _ in range(len(one))]
        drained = []
        while len(batched):
            drained.extend(batched.pop_batch())
        assert drained == singles


def _task(priority=5, cpu=0.1, mem=0.1, job=0, idx=0) -> SimTask:
    return SimTask(
        job_id=job,
        task_index=idx,
        priority=priority,
        band=1,
        cpu_request=cpu,
        mem_request=mem,
        duration=100.0,
        cpu_eff=cpu * 0.5,
        mem_eff=mem * 0.9,
        page_cache=0.01,
        fate=4,
        submit_time=0.0,
    )


@pytest.fixture
def fleet():
    machines = generate_machines(4, np.random.default_rng(0))
    return FleetState(machines)


class TestFleetState:
    def test_start_stop_conserves(self, fleet):
        free_before = fleet.free_cpu.copy()
        task = _task()
        fleet.start(0, task)
        assert fleet.free_cpu[0] == pytest.approx(free_before[0] - 0.1)
        assert fleet.n_running[0] == 1
        assert fleet.cpu_base[0] == pytest.approx(0.05)
        fleet.stop(0, task)
        np.testing.assert_allclose(fleet.free_cpu, free_before)
        assert fleet.n_running[0] == 0
        assert fleet.cpu_base[0] == pytest.approx(0.0)

    def test_band_accounting(self, fleet):
        task = _task()
        fleet.start(1, task)
        assert fleet.cpu_band[1, 1] == pytest.approx(task.cpu_eff)
        fleet.stop(1, task)
        assert fleet.cpu_band[1, 1] == pytest.approx(0.0)

    def test_double_start_rejected(self, fleet):
        task = _task()
        fleet.start(0, task)
        with pytest.raises(RuntimeError, match="already running"):
            fleet.start(0, task)

    def test_stop_unknown_rejected(self, fleet):
        with pytest.raises(RuntimeError, match="not running"):
            fleet.stop(0, _task())

    def test_fits_and_candidates(self, fleet):
        small = _task(cpu=0.01, mem=0.01)
        assert fleet.candidates(small).all()
        huge = _task(cpu=5.0, mem=5.0)
        assert not fleet.candidates(huge).any()
        assert fleet.fits(0, small)
        assert not fleet.fits(0, huge)

    def test_eviction_victims_lower_priority_only(self, fleet):
        low = _task(priority=2, cpu=0.2, mem=0.2, job=1)
        fleet.start(0, low)
        # Fill remaining capacity so the high task needs eviction.
        filler = _task(
            priority=3,
            cpu=float(fleet.free_cpu[0]),
            mem=float(fleet.free_mem[0]),
            job=2,
        )
        fleet.start(0, filler)
        high = _task(priority=10, cpu=0.15, mem=0.15, job=3)
        victims = fleet.eviction_victims(0, high)
        assert victims is not None
        assert all(v.priority < 10 for v in victims)

    def test_eviction_impossible_returns_none(self, fleet):
        high_running = _task(priority=11, cpu=0.2, mem=0.2, job=1)
        fleet.start(0, high_running)
        bigger = _task(
            priority=12,
            cpu=float(fleet.cpu_capacity[0]) + 1.0,
            mem=0.1,
            job=2,
        )
        assert fleet.eviction_victims(0, bigger) is None

    def test_empty_fleet_rejected(self):
        from repro.core.table import Table

        empty = Table(
            {
                "machine_id": np.empty(0, dtype=np.int64),
                "cpu_capacity": np.empty(0),
                "mem_capacity": np.empty(0),
                "page_cache_capacity": np.empty(0),
            }
        )
        with pytest.raises(ValueError):
            FleetState(empty)


class TestSimTask:
    def test_initial_state(self):
        task = _task()
        assert task.state == TaskState.PENDING
        assert task.machine == -1
        assert task.incarnation == 0

    def test_repr(self):
        assert "prio=5" in repr(_task())
