"""Tests for the reprolint static-analysis pass (repro.analysis)."""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.cli import main as lint_main
from repro.analysis.config import load_config
from repro.analysis.registry import all_checkers
from repro.analysis.reporters import render_json

REPO_ROOT = Path(__file__).resolve().parents[1]

MINI_PYPROJECT = """\
[project]
name = "repro"

[tool.reprolint]
exclude = ["*.egg-info/*", "*__pycache__*"]

[tool.reprolint.layers]
core = 0
traces = 1
synth = 2
hostload = 2
sim = 3
experiments = 4
"""

MINI_SCHEMA = """\
JOB_TABLE_SCHEMA = {
    "job_id": "int64",
    "submit_time": "float64",
    "run_time": "float64",
}
"""


@pytest.fixture
def project(tmp_path):
    """A minimal repro-shaped project; returns a writer/linter helper."""

    class Project:
        root = tmp_path

        def write(self, relpath: str, source: str) -> Path:
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            return path

        def lint(self, *relpaths: str):
            targets = [tmp_path / p for p in (relpaths or ("src",))]
            return lint_paths(targets, root=tmp_path)

    proj = Project()
    proj.write("pyproject.toml", MINI_PYPROJECT)
    proj.write("src/repro/traces/schema.py", MINI_SCHEMA)
    proj.write("src/repro/__init__.py", "")
    return proj


def rules_at(run, relpath: str, line: int) -> set[str]:
    return {
        d.rule_id
        for d in run.all_diagnostics
        if d.path == relpath and d.line == line
    }


class TestRngDiscipline:
    def test_flags_global_numpy_state(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import numpy as np

            def f(seed):
                np.random.seed(seed)
                return np.random.rand(3)
            """,
        )
        run = project.lint()
        assert "REP101" in rules_at(run, "src/repro/core/m.py", 4)
        assert "REP101" in rules_at(run, "src/repro/core/m.py", 5)

    def test_flags_stdlib_random_and_unseeded_rng(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import random
            import numpy as np

            def f():
                rng = np.random.default_rng()
                return random.random(), rng
            """,
        )
        run = project.lint()
        assert "REP101" in rules_at(run, "src/repro/core/m.py", 1)
        assert "REP101" in rules_at(run, "src/repro/core/m.py", 5)

    def test_passed_generator_is_clean(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import numpy as np

            def f(rng: np.random.Generator, seed: int):
                child = np.random.default_rng(seed)
                return rng.uniform(0, 1, 5) + child.integers(0, 2, 5)
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_tests_are_exempt(self, project):
        project.write("tests/test_m.py", "import random\n")
        assert project.lint("tests").all_diagnostics == []

    def test_suppression_comment(self, project):
        project.write(
            "src/repro/core/m.py",
            "import numpy as np\n"
            "x = np.random.rand(2)  # reprolint: disable=REP101\n",
        )
        assert project.lint().all_diagnostics == []


class TestSchemaContract:
    def test_unknown_column_on_annotated_table(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            def f(jobs: "Table"):
                return jobs["submit_tmie"]
            """,
        )
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP201"]
        assert len(diags) == 1
        assert diags[0].line == 2
        assert "submit_tmie" in diags[0].message
        assert "submit_time" in diags[0].hint  # did-you-mean

    def test_known_and_locally_created_columns_pass(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            from .table import Table

            def f(jobs: Table):
                out = jobs.with_columns(wait_share=jobs["run_time"])
                return out["wait_share"], jobs["submit_time"]
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_table_constructor_dict_keys_are_columns(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            from .table import Table

            def f(values):
                t = Table({"custom_col": values})
                return t["custom_col"], t["job_id"], t["missing_col"]
            """,
        )
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP201"]
        assert [d.line for d in diags] == [5]
        assert "missing_col" in diags[0].message

    def test_untracked_variables_are_ignored(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            def f(mapping):
                return mapping["anything_goes"]
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_metrics_key_check(self, project):
        project.write(
            "src/repro/experiments/exp1.py",
            """\
            def run():
                return Result(metrics={"total_jobs": 1})
            """,
        )
        project.write(
            "src/repro/experiments/consumer.py",
            """\
            def read(result):
                good = result.metrics["total_jobs"]
                bad = result.metrics["total_jbos"]
                return good, bad
            """,
        )
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP201"]
        assert [d.line for d in diags] == [3]
        assert "total_jbos" in diags[0].message


class TestLayering:
    def test_upward_import_flagged(self, project):
        project.write(
            "src/repro/core/m.py", "from ..sim.engine import Engine\n"
        )
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP301"]
        assert len(diags) == 1
        assert diags[0].path == "src/repro/core/m.py"
        assert diags[0].line == 1
        assert "'sim'" in diags[0].message

    def test_sibling_layer_flagged(self, project):
        project.write(
            "src/repro/synth/m.py", "import repro.hostload.series\n"
        )
        run = project.lint()
        assert [d.rule_id for d in run.all_diagnostics] == ["REP301"]
        assert "sibling" in run.all_diagnostics[0].message

    def test_downward_and_same_layer_imports_pass(self, project):
        project.write(
            "src/repro/sim/m.py",
            """\
            from ..core.table import Table
            from ..synth.machines import generate_machines
            from .engine import Engine
            """,
        )
        assert project.lint().all_diagnostics == []


class TestRegistryCompleteness:
    def _registry(self, project, body: str):
        return project.write("src/repro/experiments/registry.py", body)

    def test_unimported_experiment_module_flagged(self, project):
        project.write("src/repro/experiments/fig1_thing.py", "def run():\n    pass\n")
        self._registry(project, "EXPERIMENTS = {}\n")
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP401"]
        assert any("fig1_thing" in d.message for d in diags)

    def test_imported_but_unregistered_flagged(self, project):
        project.write("src/repro/experiments/fig1_thing.py", "def run():\n    pass\n")
        self._registry(
            project,
            "from . import fig1_thing\n\nEXPERIMENTS = {}\n",
        )
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP401"]
        assert any("no EXPERIMENTS entry" in d.message for d in diags)

    def test_missing_reference_output_flagged(self, project):
        project.write("src/repro/experiments/fig1_thing.py", "def run():\n    pass\n")
        self._registry(
            project,
            "from . import fig1_thing\n\n"
            'EXPERIMENTS = {"fig1": fig1_thing.run}\n',
        )
        run = project.lint()
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP401"]
        assert any("fig1.txt" in d.message for d in diags)

    def test_complete_registry_is_clean(self, project):
        project.write("src/repro/experiments/fig1_thing.py", "def run():\n    pass\n")
        self._registry(
            project,
            "from . import fig1_thing\n\n"
            'EXPERIMENTS = {"fig1": fig1_thing.run}\n',
        )
        project.write("benchmarks/results/fig1.txt", "== fig1 ==\n")
        assert project.lint().all_diagnostics == []


class TestWallClockBan:
    def test_time_and_datetime_flagged(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import time
            from datetime import datetime

            def stamp():
                return time.time(), datetime.now()
            """,
        )
        run = project.lint()
        assert rules_at(run, "src/repro/core/m.py", 5) == {"REP501"}
        diags = [d for d in run.all_diagnostics if d.rule_id == "REP501"]
        assert len(diags) == 2

    def test_simulated_clock_is_clean(self, project):
        project.write(
            "src/repro/sim/m.py",
            """\
            def advance(clock: float, dt: float) -> float:
                return clock + dt
            """,
        )
        assert project.lint().all_diagnostics == []


class TestRowLoopBan:
    def test_filter_scan_loop_flagged(self, project):
        project.write(
            "src/repro/hostload/m.py",
            """\
            def split(usage, machines):
                out = {}
                for mid in machines["machine_id"]:
                    out[mid] = usage.select(usage["machine_id"] == mid)
                return out
            """,
        )
        run = project.lint()
        assert rules_at(run, "src/repro/hostload/m.py", 3) == {"REP502"}

    def test_row_append_loop_flagged(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            def collect(table):
                rows = []
                for time, value in zip(table["time"], table["cpu_usage"]):
                    rows.append((time, value))
                return rows
            """,
        )
        run = project.lint()
        assert rules_at(run, "src/repro/core/m.py", 3) == {"REP502"}

    def test_column_comprehension_flagged(self, project):
        project.write(
            "src/repro/sim/m.py",
            """\
            def scale(table):
                return [v * 2.0 for v in table["cpu_usage"]]
            """,
        )
        run = project.lint()
        assert rules_at(run, "src/repro/sim/m.py", 2) == {"REP502"}

    def test_vectorized_and_bounded_loops_are_clean(self, project):
        # Per-group loops with O(1) bodies (no re-filtering, no append)
        # and plain vectorized column math must pass.
        project.write(
            "src/repro/hostload/m.py",
            """\
            def build(machines, cols):
                out = {}
                for i, mid in enumerate(machines["machine_id"]):
                    out[int(mid)] = cols["time"][i]
                return out

            def relative(table):
                return table["cpu_usage"] / table["cpu_capacity"]
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_unscoped_layers_and_suppressions_exempt(self, project):
        project.write(
            "src/repro/experiments/m.py",
            """\
            def rows(table):
                return [v for v in table["wall_s"]]
            """,
        )
        project.write(
            "src/repro/core/golden.py",
            """\
            def scalar_reference(usage, machines):
                out = []
                for mid in machines["machine_id"]:  # reprolint: disable=REP502
                    out.append((usage["machine_id"] == mid).sum())
                return out
            """,
        )
        run = project.lint("src/repro/experiments/m.py", "src/repro/core/golden.py")
        assert run.all_diagnostics == []


class TestSilentExcept:
    def test_flags_silent_broad_handlers_in_scope(self, project):
        project.write(
            "src/repro/experiments/m.py",
            """\
            def load(path):
                try:
                    return path.read_text()
                except Exception:
                    pass

            def bare(path):
                try:
                    return path.stat()
                except:  # noqa: E722
                    ...
            """,
        )
        project.write(
            "src/repro/core/m.py",
            """\
            def touch(path):
                try:
                    path.touch()
                except (OSError, BaseException):
                    pass
            """,
        )
        run = project.lint()
        assert rules_at(run, "src/repro/experiments/m.py", 4) == {"REP601"}
        assert rules_at(run, "src/repro/experiments/m.py", 10) == {"REP601"}
        assert rules_at(run, "src/repro/core/m.py", 4) == {"REP601"}

    def test_narrow_or_observable_handlers_are_clean(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            def touch(path, stats):
                try:
                    path.touch()
                except OSError:
                    pass

            def classify(fn, stats):
                try:
                    fn()
                except Exception:
                    stats.errors += 1
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_out_of_scope_and_suppressed_are_exempt(self, project):
        project.write(
            "src/repro/traces/m.py",
            """\
            def best_effort(fn):
                try:
                    fn()
                except Exception:
                    pass
            """,
        )
        project.write(
            "src/repro/experiments/s.py",
            """\
            def best_effort(fn):
                try:
                    fn()
                except Exception:  # reprolint: disable=REP601
                    pass
            """,
        )
        run = project.lint("src/repro/traces/m.py", "src/repro/experiments/s.py")
        assert run.all_diagnostics == []


class TestFrameworkPlumbing:
    def test_every_rule_registered_once(self):
        rules = [c.rule.id for c in all_checkers()]
        assert rules == sorted(rules)
        assert {
            "REP101",
            "REP201",
            "REP301",
            "REP401",
            "REP501",
            "REP502",
            "REP601",
        } <= set(rules)

    def test_config_round_trip(self, project):
        cfg = load_config(project.root)
        assert cfg.layers["sim"] == 3
        assert cfg.rule_enabled("REP101")

    def test_fallback_toml_parser_matches_tomllib(self):
        # Python 3.10 has no tomllib; the built-in mini-parser must read
        # the real pyproject section identically.
        tomllib = pytest.importorskip("tomllib")
        from repro.analysis.config import _config_from_mapping, _fallback_parse

        text = (REPO_ROOT / "pyproject.toml").read_text()
        via_fallback = _config_from_mapping(_fallback_parse(text))
        via_tomllib = _config_from_mapping(
            tomllib.loads(text)["tool"]["reprolint"]
        )
        assert via_fallback == via_tomllib

    def test_disabled_rule_does_not_run(self, project):
        project.write(
            "pyproject.toml",
            MINI_PYPROJECT.replace(
                "[tool.reprolint]",
                '[tool.reprolint]\nenable = ["REP501"]',
            ),
        )
        project.write("src/repro/core/m.py", "import random\n")
        assert project.lint().all_diagnostics == []

    def test_syntax_error_reported_not_crashing(self, project):
        project.write("src/repro/core/m.py", "def broken(:\n")
        run = project.lint()
        assert [d.rule_id for d in run.all_diagnostics] == ["REP000"]
        assert run.exit_code == 1

    def test_json_reporter_shape(self, project):
        project.write("src/repro/core/m.py", "import random\n")
        payload = json.loads(render_json(project.lint()))
        assert payload["exit_code"] == 1
        (diag,) = payload["diagnostics"]
        assert diag["rule"] == "REP101"
        assert diag["path"] == "src/repro/core/m.py"
        assert diag["line"] == 1

    def test_cli_exit_codes(self, project, capsys):
        clean = project.root / "src"
        assert lint_main(["--root", str(project.root), str(clean)]) == 0
        project.write("src/repro/core/m.py", "import random\n")
        assert lint_main(["--root", str(project.root), str(clean)]) == 1
        out = capsys.readouterr().out
        assert "REP101" in out

    def test_cli_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in (
            "REP101",
            "REP201",
            "REP301",
            "REP401",
            "REP501",
            "REP502",
            "REP601",
        ):
            assert rule_id in out


class TestRepositoryIsClean:
    """The gate: the real source tree must produce zero diagnostics."""

    def test_src_tree_is_clean(self):
        run = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT)
        assert run.files_checked > 80
        clean = [d for d in run.all_diagnostics]
        assert clean == [], "\n".join(d.location + " " + d.message for d in clean)
