"""Unit tests for run-length segmentation of discretized series."""

import numpy as np
import pytest

from repro.core.segments import (
    DEFAULT_USAGE_LEVELS,
    QUEUE_STATE_LEVELS,
    constant_segments,
    discretize,
    level_durations,
    usage_level_labels,
)


class TestDiscretize:
    def test_default_levels(self):
        values = np.array([0.0, 0.19, 0.2, 0.59, 0.99, 1.0])
        np.testing.assert_array_equal(
            discretize(values), [0, 0, 1, 2, 4, 4]
        )

    def test_exact_one_in_top_level(self):
        assert discretize(np.array([1.0]))[0] == 4

    def test_queue_levels_unbounded_top(self):
        values = np.array([0, 9, 10, 49, 50, 500], dtype=float)
        out = discretize(values, QUEUE_STATE_LEVELS)
        np.testing.assert_array_equal(out, [0, 0, 1, 4, 5, 5])

    def test_below_first_edge_rejected(self):
        with pytest.raises(ValueError):
            discretize(np.array([-0.1]))

    def test_bad_edges_rejected(self):
        with pytest.raises(ValueError):
            discretize(np.array([0.5]), np.array([0.0, 0.0, 1.0]))
        with pytest.raises(ValueError):
            discretize(np.array([0.5]), np.array([0.0]))


class TestConstantSegments:
    def test_basic_runs(self):
        times = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        levels = np.array([0, 0, 1, 1, 0])
        seg = constant_segments(times, levels)
        np.testing.assert_array_equal(seg.levels, [0, 1, 0])
        np.testing.assert_array_equal(seg.start_times, [0.0, 2.0, 4.0])
        # Last run gets the trailing median sampling interval (1.0).
        np.testing.assert_allclose(seg.durations, [2.0, 2.0, 1.0])

    def test_single_sample(self):
        seg = constant_segments(np.array([5.0]), np.array([3]))
        assert len(seg) == 1
        assert seg.durations[0] == pytest.approx(1.0)

    def test_empty(self):
        seg = constant_segments(np.empty(0), np.empty(0))
        assert len(seg) == 0

    def test_constant_series_single_run(self):
        times = np.arange(10, dtype=float)
        seg = constant_segments(times, np.zeros(10, dtype=int))
        assert len(seg) == 1
        assert seg.durations[0] == pytest.approx(10.0)

    def test_durations_sum_to_span(self):
        rng = np.random.default_rng(0)
        times = np.arange(100, dtype=float) * 300.0
        levels = rng.integers(0, 3, 100)
        seg = constant_segments(times, levels)
        expected = times[-1] - times[0] + 300.0
        assert seg.durations.sum() == pytest.approx(expected)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            constant_segments(np.array([0.0]), np.array([0, 1]))

    def test_non_increasing_times_rejected(self):
        with pytest.raises(ValueError):
            constant_segments(np.array([0.0, 0.0]), np.array([0, 0]))

    def test_for_level(self):
        times = np.array([0.0, 1.0, 2.0])
        seg = constant_segments(times, np.array([1, 0, 1]))
        assert seg.for_level(1).size == 2
        assert seg.for_level(0).size == 1
        assert seg.for_level(5).size == 0


class TestLevelDurations:
    def test_every_level_keyed(self):
        times = np.arange(5, dtype=float)
        values = np.array([0.1, 0.1, 0.5, 0.5, 0.9])
        out = level_durations(times, values)
        assert set(out) == {0, 1, 2, 3, 4}
        assert out[0].size == 1
        assert out[2].size == 1
        assert out[4].size == 1
        assert out[1].size == 0

    def test_total_time_conserved(self):
        rng = np.random.default_rng(1)
        times = np.arange(200, dtype=float) * 300.0
        values = rng.uniform(0, 1, 200)
        out = level_durations(times, values)
        total = sum(d.sum() for d in out.values())
        assert total == pytest.approx(times[-1] - times[0] + 300.0)


class TestLabels:
    def test_default_labels(self):
        labels = usage_level_labels()
        assert labels[0] == "[0,0.2)"
        assert len(labels) == len(DEFAULT_USAGE_LEVELS) - 1

    def test_queue_labels(self):
        labels = usage_level_labels(QUEUE_STATE_LEVELS)
        assert labels[0] == "[0,10)"
        assert labels[-1] == "[50,inf)"
        assert len(labels) == len(QUEUE_STATE_LEVELS) - 1
