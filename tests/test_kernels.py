"""Golden equivalence tests: vectorized kernels vs scalar references.

Every kernel in :mod:`repro.core.kernels` (and its call-site wrappers)
promises **bit-identical** output to the scalar path it replaced. These
tests run both implementations on seeded inputs — including the real
monitor output of the tiny simulation — and compare exactly, not
approximately.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.kernels import (
    MassCountAccumulator,
    grouped_sort_split,
    pooled_level_durations,
    run_length_encode,
)
from repro.core.masscount import mass_count
from repro.core.segments import (
    DEFAULT_USAGE_LEVELS,
    QUEUE_STATE_LEVELS,
    discretize,
    level_durations,
)
from repro.core.table import Table
from repro.hostload.levels import (
    _pooled_level_durations_scalar,
    pooled_level_durations as pooled_series_durations,
)
from repro.hostload.series import (
    _all_machine_series_scalar,
    grouped_machine_series,
)


@pytest.fixture(scope="module")
def sim(tiny_sim_result):
    _, result = tiny_sim_result
    return result


class TestRunLengthEncode:
    def test_reconstructs_input(self, rng):
        codes = rng.integers(0, 4, 500)
        runs = run_length_encode(codes)
        np.testing.assert_array_equal(
            np.repeat(runs.values, runs.lengths), codes
        )
        np.testing.assert_array_equal(
            runs.starts, np.concatenate(([0], np.cumsum(runs.lengths)[:-1]))
        )

    def test_matches_scalar_scan(self, rng):
        codes = rng.integers(0, 3, 200)
        runs = run_length_encode(codes)
        # Scalar reference: walk the array element by element.
        starts, lengths, values = [0], [], [codes[0]]
        for i in range(1, len(codes)):
            if codes[i] != codes[i - 1]:
                lengths.append(i - starts[-1])
                starts.append(i)
                values.append(codes[i])
        lengths.append(len(codes) - starts[-1])
        np.testing.assert_array_equal(runs.starts, starts)
        np.testing.assert_array_equal(runs.lengths, lengths)
        np.testing.assert_array_equal(runs.values, values)

    def test_empty_and_constant(self):
        assert len(run_length_encode(np.empty(0, dtype=np.int64))) == 0
        runs = run_length_encode(np.full(7, 3))
        assert list(runs.lengths) == [7]
        assert list(runs.values) == [3]

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-D"):
            run_length_encode(np.zeros((2, 2)))


class TestDiscretizeFastPath:
    """The few-edges comparison-sum path must equal searchsorted."""

    @pytest.mark.parametrize(
        "edges", [DEFAULT_USAGE_LEVELS, QUEUE_STATE_LEVELS]
    )
    def test_matches_searchsorted(self, rng, edges):
        values = rng.uniform(edges[0], min(edges[-1], 1e3), 10_000)
        got = discretize(values, edges)
        expect = np.minimum(
            np.searchsorted(edges, values, side="right") - 1, len(edges) - 2
        )
        np.testing.assert_array_equal(got, expect)
        assert got.dtype == np.int64

    def test_edge_values_exact(self):
        edges = DEFAULT_USAGE_LEVELS
        values = np.concatenate((edges, [0.1999999, 0.2000001] * 4))
        got = discretize(values, edges)
        expect = np.minimum(
            np.searchsorted(edges, values, side="right") - 1, len(edges) - 2
        )
        np.testing.assert_array_equal(got, expect)


class TestPooledLevelDurations:
    def _random_pool(self, rng, n_series, max_len):
        lengths = rng.integers(1, max_len, n_series)
        times, values = [], []
        for n in lengths:
            times.append(np.cumsum(rng.uniform(1.0, 10.0, n)))
            values.append(rng.uniform(0.0, 1.0, n))
        return times, values, lengths

    def test_matches_per_series_loop(self, rng):
        times, values, lengths = self._random_pool(rng, 25, 40)
        pooled = pooled_level_durations(
            np.concatenate(times), np.concatenate(values), lengths
        )
        n_levels = len(DEFAULT_USAGE_LEVELS) - 1
        expect: dict[int, list[np.ndarray]] = {
            lvl: [] for lvl in range(n_levels)
        }
        for t, v in zip(times, values):
            for lvl, durs in level_durations(t, v).items():
                if durs.size:
                    expect[lvl].append(durs)
        for lvl in range(n_levels):
            ref = (
                np.concatenate(expect[lvl]) if expect[lvl] else np.empty(0)
            )
            np.testing.assert_array_equal(pooled[lvl], ref)

    def test_single_sample_series_tail(self):
        # A one-sample series gets duration 1.0 (constant_segments' rule).
        pooled = pooled_level_durations(
            np.array([100.0]), np.array([0.5]), np.array([1])
        )
        np.testing.assert_array_equal(pooled[2], [1.0])

    def test_zero_length_series_skipped(self):
        pooled = pooled_level_durations(
            np.array([0.0, 300.0]), np.array([0.1, 0.1]), np.array([0, 2, 0])
        )
        np.testing.assert_array_equal(pooled[0], [600.0])

    def test_empty_pool(self):
        pooled = pooled_level_durations(np.empty(0), np.empty(0), np.empty(0))
        assert all(v.size == 0 for v in pooled.values())

    def test_bad_lengths_rejected(self):
        with pytest.raises(ValueError, match="lengths"):
            pooled_level_durations(
                np.array([0.0, 1.0]), np.array([0.1, 0.1]), np.array([3])
            )

    def test_nonmonotonic_times_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            pooled_level_durations(
                np.array([1.0, 1.0]), np.array([0.1, 0.1]), np.array([2])
            )

    def test_series_wrapper_matches_scalar(self, sim):
        series = grouped_machine_series(sim.machine_usage, sim.machines)
        for attribute in ("cpu", "mem", "page_cache", "cpu_mid_high"):
            fast = pooled_series_durations(series, attribute)
            golden = _pooled_level_durations_scalar(series, attribute)
            assert fast.keys() == golden.keys()
            for lvl in fast:
                np.testing.assert_array_equal(fast[lvl], golden[lvl])

    def test_series_wrapper_empty(self):
        pooled = pooled_series_durations({})
        assert all(v.size == 0 for v in pooled.values())


class TestGroupedSortSplit:
    def test_matches_filter_and_sort(self, rng):
        n = 400
        table = Table(
            {
                "machine_id": rng.integers(0, 12, n),
                "time": rng.uniform(0, 1e4, n),
                "cpu_usage": rng.uniform(0, 1, n),
            }
        )
        unique, cols = grouped_sort_split(table, "machine_id", within="time")
        np.testing.assert_array_equal(
            unique, np.unique(table["machine_id"])
        )
        for i, mid in enumerate(unique):
            sub = table.select(table["machine_id"] == mid).sort_by("time")
            for name in table.column_names:
                np.testing.assert_array_equal(cols[name][i], sub[name])

    def test_empty_table(self):
        table = Table({"machine_id": np.empty(0, dtype=np.int64)})
        unique, cols = grouped_sort_split(table, "machine_id")
        assert unique.size == 0
        assert cols["machine_id"] == []

    def test_machine_series_matches_scalar(self, sim):
        fast = grouped_machine_series(sim.machine_usage, sim.machines)
        golden = _all_machine_series_scalar(sim.machine_usage, sim.machines)
        assert list(fast) == list(golden)
        for mid, s in fast.items():
            g = golden[mid]
            assert s.cpu_capacity == g.cpu_capacity
            for attr in ("times", "cpu", "mem", "mem_assigned", "page_cache",
                         "cpu_mid_high", "cpu_high", "mem_mid_high",
                         "mem_high", "n_running"):
                np.testing.assert_array_equal(
                    getattr(s, attr), getattr(g, attr)
                )


class TestMassCountAccumulator:
    def test_chunked_equals_pooled(self, rng):
        values = rng.exponential(1.0, 5_000)
        acc = MassCountAccumulator()
        for chunk in np.array_split(values, 7):
            acc.add(chunk)
        assert acc.n_values == values.size
        np.testing.assert_array_equal(acc.merged(), values)
        fast, ref = acc.finalize(), mass_count(values)
        assert fast.joint_ratio == ref.joint_ratio
        assert fast.mm_distance == ref.mm_distance

    def test_positive_only_filter(self, rng):
        values = np.concatenate((rng.uniform(0, 1, 100), np.zeros(50)))
        rng.shuffle(values)
        acc = MassCountAccumulator(positive_only=True)
        acc.add(values)
        np.testing.assert_array_equal(acc.merged(), values[values > 0])

    def test_rejects_2d_chunk(self):
        with pytest.raises(ValueError, match="1-D"):
            MassCountAccumulator().add(np.zeros((2, 3)))
