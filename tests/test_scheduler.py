"""Unit tests for the pending queue and placement policies."""

import numpy as np
import pytest

from repro.sim.machine import FleetState
from repro.sim.scheduler import PLACEMENT_POLICIES, PendingQueue, choose_machine
from repro.sim.task import SimTask
from repro.core.table import Table


def _task(priority=5, cpu=0.1, mem=0.1, job=0):
    return SimTask(
        job_id=job,
        task_index=0,
        priority=priority,
        band=1,
        cpu_request=cpu,
        mem_request=mem,
        duration=10.0,
        cpu_eff=cpu,
        mem_eff=mem,
        page_cache=0.0,
        fate=4,
        submit_time=0.0,
    )


def _fleet(cpu_caps, mem_caps=None):
    mem_caps = mem_caps or cpu_caps
    n = len(cpu_caps)
    return FleetState(
        Table(
            {
                "machine_id": np.arange(n, dtype=np.int64),
                "cpu_capacity": np.asarray(cpu_caps, dtype=float),
                "mem_capacity": np.asarray(mem_caps, dtype=float),
                "page_cache_capacity": np.ones(n),
            }
        )
    )


class TestPendingQueue:
    def test_priority_order(self):
        q = PendingQueue()
        q.push(_task(priority=3, job=1))
        q.push(_task(priority=10, job=2))
        q.push(_task(priority=5, job=3))
        assert q.pop().priority == 10
        assert q.pop().priority == 5
        assert q.pop().priority == 3

    def test_fcfs_within_priority(self):
        q = PendingQueue()
        first = _task(priority=5, job=1)
        second = _task(priority=5, job=2)
        q.push(first)
        q.push(second)
        assert q.pop() is first
        assert q.pop() is second

    def test_peek_does_not_remove(self):
        q = PendingQueue()
        t = _task()
        q.push(t)
        assert q.peek() is t
        assert len(q) == 1


class TestChooseMachine:
    def test_balance_prefers_emptiest(self):
        fleet = _fleet([1.0, 1.0])
        rng = np.random.default_rng(0)
        fleet.start(0, _task(cpu=0.5, mem=0.5, job=9))
        m = choose_machine(fleet, _task(job=1), "balance", rng)
        assert m == 1

    def test_balance_relative_to_capacity(self):
        # Machine 0: cap 1.0 half full (50% free); machine 1: cap 0.5
        # empty (100% free) -> balance picks machine 1.
        fleet = _fleet([1.0, 0.5])
        fleet.start(0, _task(cpu=0.5, mem=0.1, job=9))
        m = choose_machine(
            fleet, _task(cpu=0.1, mem=0.1), "balance", np.random.default_rng(0)
        )
        assert m == 1

    def test_best_fit_prefers_tightest(self):
        fleet = _fleet([1.0, 1.0])
        fleet.start(0, _task(cpu=0.8, mem=0.1, job=9))
        m = choose_machine(
            fleet, _task(cpu=0.1, mem=0.1), "best_fit", np.random.default_rng(0)
        )
        assert m == 0

    def test_first_fit_lowest_index(self):
        fleet = _fleet([1.0, 1.0, 1.0])
        m = choose_machine(
            fleet, _task(), "first_fit", np.random.default_rng(0)
        )
        assert m == 0

    def test_random_only_fitting(self):
        fleet = _fleet([0.05, 1.0])
        rng = np.random.default_rng(0)
        for _ in range(10):
            m = choose_machine(fleet, _task(cpu=0.5, mem=0.5), "random", rng)
            assert m == 1

    def test_no_fit_returns_minus_one(self):
        fleet = _fleet([0.05])
        m = choose_machine(
            fleet, _task(cpu=0.5, mem=0.5), "balance", np.random.default_rng(0)
        )
        assert m == -1

    def test_unknown_policy_rejected(self):
        fleet = _fleet([1.0])
        with pytest.raises(ValueError, match="unknown placement"):
            choose_machine(fleet, _task(), "bogus", np.random.default_rng(0))

    def test_all_policies_listed(self):
        assert set(PLACEMENT_POLICIES) == {
            "balance",
            "best_fit",
            "first_fit",
            "random",
        }
