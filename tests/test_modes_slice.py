"""Unit tests for load-mode discovery and trace slicing."""

import numpy as np
import pytest

from repro.hostload.modes import (
    FEATURE_NAMES,
    discover_modes,
    kmeans,
    machine_features,
)
from repro.traces.slice import downsample_usage, select_machines, slice_time


class TestKmeans:
    def test_separates_clear_clusters(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 0.1, (50, 2))
        b = rng.normal(5.0, 0.1, (50, 2))
        points = np.vstack([a, b])
        labels, centroids = kmeans(points, 2, rng)
        assert len(set(labels[:50])) == 1
        assert len(set(labels[50:])) == 1
        assert labels[0] != labels[50]
        assert centroids.shape == (2, 2)

    def test_k_one_single_cluster(self):
        rng = np.random.default_rng(1)
        labels, centroids = kmeans(rng.random((10, 3)), 1, rng)
        assert np.all(labels == 0)

    def test_k_equals_n(self):
        rng = np.random.default_rng(2)
        points = np.arange(6, dtype=float).reshape(3, 2)
        labels, _ = kmeans(points, 3, rng)
        assert len(set(labels.tolist())) == 3

    def test_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 0, rng)
        with pytest.raises(ValueError):
            kmeans(np.zeros((5, 2)), 6, rng)
        with pytest.raises(ValueError):
            kmeans(np.zeros(5), 2, rng)

    def test_identical_points_ok(self):
        rng = np.random.default_rng(4)
        labels, _ = kmeans(np.ones((8, 2)), 3, rng)
        assert labels.shape == (8,)


class TestModes:
    def test_features_shape(self, small_simulation):
        s = next(iter(small_simulation.series.values()))
        feats = machine_features(s)
        assert feats.shape == (len(FEATURE_NAMES),)
        assert np.all(np.isfinite(feats))

    def test_discover_modes(self, small_simulation):
        modes = discover_modes(small_simulation.series, k=3, seed=0)
        assert modes.num_modes == 3
        assert modes.labels.shape == modes.machine_ids.shape
        assert modes.mode_sizes().sum() == len(small_simulation.series)
        descr = modes.describe()
        assert len(descr) == 3
        assert all("cpu_mean" in d for d in descr)

    def test_members_partition(self, small_simulation):
        modes = discover_modes(small_simulation.series, k=2, seed=1)
        all_members = np.sort(
            np.concatenate([modes.members(j) for j in range(2)])
        )
        np.testing.assert_array_equal(all_members, modes.machine_ids)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            discover_modes({}, k=2)

    def test_deterministic(self, small_simulation):
        a = discover_modes(small_simulation.series, k=3, seed=5)
        b = discover_modes(small_simulation.series, k=3, seed=5)
        np.testing.assert_array_equal(a.labels, b.labels)


@pytest.fixture(scope="module")
def trace():
    from repro.synth import GoogleConfig, generate_google_trace

    return generate_google_trace(
        horizon=8 * 3600.0,
        num_machines=10,
        seed=0,
        tasks_per_hour=120.0,
        config=GoogleConfig(busy_window=None),
    )


class TestSliceTime:
    def test_window_rebased(self, trace):
        sliced = slice_time(trace, 3600.0, 7200.0)
        assert sliced.horizon == 3600.0
        if len(sliced.task_events):
            assert sliced.task_events["time"].min() >= 0
            assert sliced.task_events["time"].max() < 3600.0

    def test_validates_after_slicing(self, trace):
        from repro.traces.validate import validate_trace

        sliced = slice_time(trace, 0.0, 4 * 3600.0)
        # Event sequences may start mid-lifecycle after slicing, so
        # skip the order check but keep every structural invariant.
        validate_trace(sliced, check_event_order=False)

    def test_event_count_shrinks(self, trace):
        sliced = slice_time(trace, 3600.0, 7200.0)
        assert len(sliced.task_events) < len(trace.task_events)

    def test_bad_window_rejected(self, trace):
        with pytest.raises(ValueError):
            slice_time(trace, -1.0, 100.0)
        with pytest.raises(ValueError):
            slice_time(trace, 100.0, 100.0)
        with pytest.raises(ValueError):
            slice_time(trace, 0.0, trace.horizon * 2)


class TestSelectMachines:
    def test_subset(self, trace):
        sub = select_machines(trace, [0, 1, 2])
        assert sub.num_machines == 3
        placed = sub.task_events.select(sub.task_events["machine_id"] >= 0)
        assert set(np.unique(placed["machine_id"]).tolist()) <= {0, 1, 2}
        assert set(np.unique(sub.task_usage["machine_id"]).tolist()) <= {0, 1, 2}

    def test_unplaced_events_kept(self, trace):
        sub = select_machines(trace, [0])
        submits = sub.task_events.select(sub.task_events["machine_id"] == -1)
        assert len(submits) > 0

    def test_unknown_machine_rejected(self, trace):
        with pytest.raises(KeyError):
            select_machines(trace, [999])
        with pytest.raises(ValueError):
            select_machines(trace, [])


class TestDownsample:
    def test_factor_one_identity(self, trace):
        assert downsample_usage(trace, 1) is trace

    def test_row_count_shrinks(self, trace):
        coarse = downsample_usage(trace, 4)
        assert len(coarse.task_usage) < len(trace.task_usage)

    def test_total_cpu_time_preserved(self, trace):
        us = trace.task_usage
        fine_cpu_time = float(
            (np.asarray(us["cpu_usage"])
             * (np.asarray(us["end_time"]) - np.asarray(us["start_time"]))).sum()
        )
        coarse = downsample_usage(trace, 6).task_usage
        # Weighted means over merged spans: cpu*length must be close
        # (merged span >= covered length, so allow slack from gaps).
        coarse_cpu_time = float(
            (np.asarray(coarse["cpu_usage"])
             * (np.asarray(coarse["end_time"]) - np.asarray(coarse["start_time"]))).sum()
        )
        assert coarse_cpu_time >= fine_cpu_time * 0.95

    def test_bad_factor(self, trace):
        with pytest.raises(ValueError):
            downsample_usage(trace, 0)
