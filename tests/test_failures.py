"""Unit tests for the failure model."""

import numpy as np
import pytest

from repro.sim.failures import FailureModel
from repro.traces.schema import TaskEvent


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestRunTime:
    def test_finish_runs_full(self, rng):
        model = FailureModel()
        assert model.run_time(int(TaskEvent.FINISH), 100.0, rng) == 100.0

    @pytest.mark.parametrize(
        "fate",
        [TaskEvent.FAIL, TaskEvent.KILL, TaskEvent.LOST, TaskEvent.EVICT],
    )
    def test_abnormal_runs_partial(self, rng, fate):
        model = FailureModel()
        for _ in range(20):
            rt = model.run_time(int(fate), 100.0, rng)
            assert 0 < rt <= 100.0

    def test_unknown_fate_rejected(self, rng):
        model = FailureModel()
        with pytest.raises(ValueError):
            model.run_time(int(TaskEvent.SUBMIT), 100.0, rng)

    def test_fraction_bounds_respected(self, rng):
        model = FailureModel(fail_fraction=(0.5, 0.5))
        assert model.run_time(int(TaskEvent.FAIL), 100.0, rng) == pytest.approx(
            50.0
        )


class TestResubmission:
    def test_fail_resubmits_sometimes(self, rng):
        model = FailureModel(resubmit_prob=1.0)
        assert model.resubmits(int(TaskEvent.FAIL), 0, rng)
        model = FailureModel(resubmit_prob=0.0)
        assert not model.resubmits(int(TaskEvent.FAIL), 0, rng)

    def test_kill_never_resubmits(self, rng):
        model = FailureModel(resubmit_prob=1.0)
        assert not model.resubmits(int(TaskEvent.KILL), 0, rng)
        assert not model.resubmits(int(TaskEvent.LOST), 0, rng)
        assert not model.resubmits(int(TaskEvent.FINISH), 0, rng)

    def test_evict_resubmits(self, rng):
        model = FailureModel(resubmit_prob=1.0)
        assert model.resubmits(int(TaskEvent.EVICT), 0, rng)

    def test_max_resubmits_enforced(self, rng):
        model = FailureModel(resubmit_prob=1.0, max_resubmits=2)
        assert model.resubmits(int(TaskEvent.FAIL), 1, rng)
        assert not model.resubmits(int(TaskEvent.FAIL), 2, rng)


class TestRedrawFate:
    def test_distribution(self):
        rng = np.random.default_rng(1)
        model = FailureModel()
        draws = [model.redraw_fate(rng) for _ in range(5000)]
        finish_frac = draws.count(int(TaskEvent.FINISH)) / len(draws)
        assert finish_frac == pytest.approx(0.408, abs=0.03)

    def test_custom_refate(self):
        rng = np.random.default_rng(2)
        model = FailureModel(refate_probs=(("finish", 1.0),))
        assert model.redraw_fate(rng) == int(TaskEvent.FINISH)


class TestValidation:
    def test_bad_fraction(self):
        with pytest.raises(ValueError):
            FailureModel(fail_fraction=(0.0, 0.5))
        with pytest.raises(ValueError):
            FailureModel(kill_fraction=(0.9, 0.5))

    def test_bad_resubmit_prob(self):
        with pytest.raises(ValueError):
            FailureModel(resubmit_prob=1.5)

    def test_bad_max_resubmits(self):
        with pytest.raises(ValueError):
            FailureModel(max_resubmits=-1)

    def test_bad_refate_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            FailureModel(refate_probs=(("finish", 0.5),))
