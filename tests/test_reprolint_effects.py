"""Tests for reprolint's parallel-safety effect analysis (PR 6).

Covers the effect-summary fixpoint in :mod:`repro.analysis.graph`
(worker reachability across module boundaries, import cycles,
recursion, re-export chains, higher-order call sites), the three flow
rules built on it (REP103 worker-purity, REP203 ordered-sink flow,
REP303 pickle-boundary), the CLI's --select/--ignore/--explain, and the
incremental cache's re-keying when a distant caller changes a
worker-reachability verdict.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.cli import explain_rule, main as cli_main
from repro.analysis.graph import build_project_graph, summarize_module
from repro.analysis.reporters import render_sarif

MINI_PYPROJECT = """\
[project]
name = "repro"

[tool.reprolint]
exclude = ["*.egg-info/*", "*__pycache__*"]

[tool.reprolint.layers]
core = 0
traces = 1
synth = 2
hostload = 2
sim = 3
apps = 3
experiments = 4
"""

MINI_SCHEMA = """\
JOB_TABLE_SCHEMA = {
    "job_id": "int64",
    "submit_time": "float64",
}
"""


@pytest.fixture
def project(tmp_path):
    """A minimal repro-shaped project; returns a writer/linter helper."""

    class Project:
        root = tmp_path

        def write(self, relpath: str, source: str) -> Path:
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            return path

        def lint(self, *relpaths: str, **kwargs):
            targets = [tmp_path / p for p in (relpaths or ("src",))]
            return lint_paths(targets, root=tmp_path, **kwargs)

    proj = Project()
    proj.write("pyproject.toml", MINI_PYPROJECT)
    proj.write("src/repro/traces/schema.py", MINI_SCHEMA)
    proj.write("src/repro/__init__.py", "")
    return proj


def rules_at(run, relpath: str, line: int) -> set[str]:
    return {
        d.rule_id
        for d in run.all_diagnostics
        if d.path == relpath and d.line == line
    }


def only(run, rule_id: str):
    return [d for d in run.all_diagnostics if d.rule_id == rule_id]


LAUNCHER = """\
from concurrent.futures import ProcessPoolExecutor

from ..core.state import work

def main(xs):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return [f.result() for f in [pool.submit(work, x) for x in xs]]
"""


# -- REP103: worker purity ----------------------------------------------------


class TestWorkerPurity:
    def test_global_write_in_submitted_function_fails(self, project):
        project.write(
            "src/repro/core/state.py",
            """\
            COUNT = 0

            def work(x):
                global COUNT
                COUNT = x
                return x
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        run = project.lint()
        [diag] = only(run, "REP103")
        assert diag.path == "src/repro/core/state.py"
        assert "COUNT" in diag.message
        assert "worker" in diag.message

    def test_pure_worker_passes(self, project):
        project.write(
            "src/repro/core/state.py",
            """\
            def work(x):
                return x * 2
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        assert not only(project.lint(), "REP103")

    def test_unshipped_impure_function_passes(self, project):
        # The effect alone is not a finding; only worker-reachable
        # effects fire.
        project.write(
            "src/repro/core/state.py",
            """\
            COUNT = 0

            def bump(x):
                global COUNT
                COUNT = x
            """,
        )
        assert not only(project.lint(), "REP103")

    def test_transitive_effect_across_modules_fails(self, project):
        # launch -> work (shipped) -> record (other module, impure):
        # the diagnostic lands on record's effect site with the chain.
        project.write(
            "src/repro/core/counters.py",
            """\
            TALLY = {}

            def record(key, n):
                TALLY[key] = n
            """,
        )
        project.write(
            "src/repro/core/state.py",
            """\
            from .counters import record

            def work(x):
                record("x", x)
                return x
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        run = project.lint()
        [diag] = only(run, "REP103")
        assert diag.path == "src/repro/core/counters.py"
        assert "worker root" in diag.message
        assert "repro.core.state.work" in diag.message

    def test_mutable_default_mutation_fails(self, project):
        project.write(
            "src/repro/core/state.py",
            """\
            def work(x, acc=[]):
                acc.append(x)
                return acc
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        [diag] = only(project.lint(), "REP103")
        assert "shared default 'acc'" in diag.message

    def test_pool_initializer_is_not_a_root(self, project):
        # Per-worker setup through initializer= is the sanctioned way
        # to configure process-local state.
        project.write(
            "src/repro/core/state.py",
            """\
            STATE = {}

            def setup(path):
                STATE["path"] = path

            def work(x):
                return x
            """,
        )
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            from ..core.state import setup, work

            def main(xs, path):
                with ProcessPoolExecutor(
                    max_workers=2, initializer=setup, initargs=(path,)
                ) as pool:
                    return list(pool.map(work, xs))
            """,
        )
        assert not only(project.lint(), "REP103")

    def test_worker_state_modules_exempts_global_writes(self, project):
        project.write(
            "pyproject.toml",
            MINI_PYPROJECT.replace(
                "[tool.reprolint.layers]",
                'worker-state-modules = ["repro.core.state"]\n'
                "\n[tool.reprolint.layers]",
            ),
        )
        project.write(
            "src/repro/core/state.py",
            """\
            MEMO = {}

            def work(x):
                MEMO[x] = x * 2
                return MEMO[x]
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        assert not only(project.lint(), "REP103")

    def test_configured_worker_roots(self, project):
        # No syntactic shipping site anywhere, but the config declares
        # the entry point (e.g. for a framework-invoked worker).
        project.write(
            "pyproject.toml",
            MINI_PYPROJECT.replace(
                "[tool.reprolint.layers]",
                'worker-roots = ["repro.core.state.work"]\n'
                "\n[tool.reprolint.layers]",
            ),
        )
        project.write(
            "src/repro/core/state.py",
            """\
            COUNT = 0

            def work(x):
                global COUNT
                COUNT = x
            """,
        )
        [diag] = only(project.lint(), "REP103")
        assert "configured worker root" in diag.message

    def test_process_target_is_a_root(self, project):
        project.write(
            "src/repro/core/state.py",
            """\
            DONE = []

            def child(conn, x):
                DONE.append(x)
                conn.send(x)
            """,
        )
        project.write(
            "src/repro/apps/launch.py",
            """\
            import multiprocessing

            from ..core.state import child

            def main(conn, x):
                proc = multiprocessing.Process(target=child, args=(conn, x))
                proc.start()
            """,
        )
        [diag] = only(project.lint(), "REP103")
        assert "DONE" in diag.message


# -- fixpoint edge cases ------------------------------------------------------


class TestFixpointEdgeCases:
    def test_import_cycle_terminates_and_flags(self, project):
        project.write(
            "src/repro/core/a.py",
            """\
            from .b import helper

            TOTAL = 0

            def work(x):
                global TOTAL
                TOTAL = helper(x)
                return TOTAL
            """,
        )
        project.write(
            "src/repro/core/b.py",
            """\
            def helper(x):
                from .a import work  # import cycle, function-local
                return x + 1
            """,
        )
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            from ..core.a import work

            def main(xs):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, xs))
            """,
        )
        run = project.lint()
        [diag] = only(run, "REP103")
        assert diag.path == "src/repro/core/a.py"

    def test_recursive_worker_terminates(self, project):
        project.write(
            "src/repro/core/state.py",
            """\
            DEPTH = 0

            def work(n):
                global DEPTH
                DEPTH = n
                if n:
                    return work(n - 1)
                return 0
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        [diag] = only(project.lint(), "REP103")
        assert "DEPTH" in diag.message

    def test_reexport_chain_into_worker_root(self, project):
        # pool.submit(work) where work is re-exported through the
        # package __init__; the impure definition two hops away fires.
        project.write(
            "src/repro/core/impl.py",
            """\
            SEEN = {}

            def work(x):
                SEEN[x] = True
                return x
            """,
        )
        project.write(
            "src/repro/core/__init__.py",
            "from .impl import work\n",
        )
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            from repro.core import work

            def main(xs):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(work, x) for x in xs]
            """,
        )
        run = project.lint()
        [diag] = only(run, "REP103")
        assert diag.path == "src/repro/core/impl.py"

    def test_higher_order_call_site_propagates(self, project):
        # work -> apply(impure, x) where apply calls its fn parameter:
        # the graph adds the apply -> impure edge, so impure is
        # worker-reachable even though nothing names it at a boundary.
        project.write(
            "src/repro/core/state.py",
            """\
            HITS = {}

            def impure(x):
                HITS[x] = x
                return x

            def apply(fn, x):
                return fn(x)

            def work(x):
                return apply(impure, x)
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        run = project.lint()
        [diag] = only(run, "REP103")
        assert "repro.core.state.impure" in diag.message


# -- REP203: ordered-sink flow ------------------------------------------------


class TestOrderedSink:
    def test_set_into_join_fails(self, project):
        project.write(
            "src/repro/core/render.py",
            """\
            def legend(names):
                seen = set(names)
                return ", ".join(seen)
            """,
        )
        [diag] = only(project.lint(), "REP203")
        assert "join" in diag.message
        assert "sorted" in diag.hint

    def test_sorted_set_passes(self, project):
        project.write(
            "src/repro/core/render.py",
            """\
            def legend(names):
                seen = set(names)
                return ", ".join(sorted(seen))
            """,
        )
        assert not only(project.lint(), "REP203")

    def test_set_literal_into_ordered_loop_fails(self, project):
        project.write(
            "src/repro/core/render.py",
            """\
            def lines():
                out = []
                for name in {"b", "a"}:
                    out.append(name)
                return out
            """,
        )
        [diag] = only(project.lint(), "REP203")
        assert diag.line == 3

    def test_unordered_consumption_passes(self, project):
        # Membership tests and accumulation don't observe order.
        project.write(
            "src/repro/core/render.py",
            """\
            def total(values):
                acc = 0
                for v in set(values):
                    acc += v
                return acc
            """,
        )
        assert not only(project.lint(), "REP203")

    def test_module_level_set_constant_fails(self, project):
        project.write(
            "src/repro/core/render.py",
            """\
            KINDS = {"grid", "cloud"}

            def header():
                return " | ".join(KINDS)
            """,
        )
        [diag] = only(project.lint(), "REP203")
        assert "KINDS" in diag.message

    def test_set_returned_by_callee_fails_cross_module(self, project):
        project.write(
            "src/repro/core/tags.py",
            """\
            def tags():
                return {"b", "a"}
            """,
        )
        project.write(
            "src/repro/apps/render.py",
            """\
            from ..core.tags import tags

            def line():
                return ", ".join(tags())
            """,
        )
        run = project.lint()
        [diag] = only(run, "REP203")
        assert diag.path == "src/repro/apps/render.py"
        assert "repro.core.tags.tags" in diag.message

    def test_list_returning_callee_passes(self, project):
        project.write(
            "src/repro/core/tags.py",
            """\
            def tags():
                return ["a", "b"]
            """,
        )
        project.write(
            "src/repro/apps/render.py",
            """\
            from ..core.tags import tags

            def line():
                return ", ".join(tags())
            """,
        )
        assert not only(project.lint(), "REP203")

    def test_dict_iteration_not_flagged(self, project):
        # Insertion order is a language guarantee.
        project.write(
            "src/repro/core/render.py",
            """\
            def line(d):
                return ", ".join(d)
            """,
        )
        assert not only(project.lint(), "REP203")

    def test_set_operator_result_fails(self, project):
        project.write(
            "src/repro/core/render.py",
            """\
            def extras(have, want):
                missing = set(want) - set(have)
                return ", ".join(missing)
            """,
        )
        assert only(project.lint(), "REP203")


# -- REP303: pickle boundary --------------------------------------------------


class TestPickleBoundary:
    def test_lambda_to_submit_fails(self, project):
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def main(xs):
                with ProcessPoolExecutor() as pool:
                    return [pool.submit(lambda x: x + 1, x) for x in xs]
            """,
        )
        [diag] = only(project.lint(), "REP303")
        assert "lambda" in diag.message
        assert "module-level function" in diag.hint

    def test_local_function_to_map_fails(self, project):
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def main(xs):
                def work(x):
                    return x + 1
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, xs))
            """,
        )
        [diag] = only(project.lint(), "REP303")
        assert "inside another function" in diag.message

    def test_local_class_in_process_args_fails(self, project):
        project.write(
            "src/repro/apps/launch.py",
            """\
            import multiprocessing

            def child(task):
                return task

            def main(x):
                class Task:
                    pass
                proc = multiprocessing.Process(target=child, args=(Task,))
                proc.start()
            """,
        )
        [diag] = only(project.lint(), "REP303")
        assert "class" in diag.message

    def test_open_handle_capture_fails(self, project):
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def work(handle):
                return handle.read()

            def main(path):
                with open(path) as fh:
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(work, fh).result()
            """,
        )
        [diag] = only(project.lint(), "REP303")
        assert "open file handle" in diag.message
        assert "ship the path" in diag.hint

    def test_module_level_function_passes(self, project):
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            def work(x):
                return x + 1

            def main(xs):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, xs))
            """,
        )
        assert not only(project.lint(), "REP303")

    def test_conditionally_defined_module_function_passes(self, project):
        # Defined inside `if` at module level — still importable by
        # qualname, hence picklable.
        project.write(
            "src/repro/apps/launch.py",
            """\
            from concurrent.futures import ProcessPoolExecutor

            if True:
                def work(x):
                    return x + 1

            def main(xs):
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(work, xs))
            """,
        )
        assert not only(project.lint(), "REP303")

    def test_pipe_send_of_local_function_fails(self, project):
        project.write(
            "src/repro/apps/launch.py",
            """\
            def child(conn):
                def outcome():
                    return 1
                conn.send(outcome)
            """,
        )
        [diag] = only(project.lint(), "REP303")
        assert "pipe send" in diag.message

    def test_cache_put_of_lambda_fails(self, project):
        project.write(
            "src/repro/core/store.py",
            """\
            from .diskcache import DiskCache

            def save(path, key):
                cache = DiskCache(path)
                cache.put(key, lambda: 1)
            """,
        )
        project.write(
            "src/repro/core/diskcache.py",
            """\
            class DiskCache:
                def __init__(self, path):
                    self.path = path

                def put(self, key, obj):
                    pass
            """,
        )
        [diag] = only(project.lint(), "REP303")
        assert "disk-cache put" in diag.message


# -- CLI: --select / --ignore / --explain -------------------------------------


class TestRuleSelection:
    def _write_mixed(self, project):
        # One REP203 finding and one REP101-style finding in one file.
        project.write(
            "src/repro/core/mixed.py",
            """\
            import numpy as np

            def make():
                return np.random.default_rng()

            def legend(names):
                return ", ".join(set(names))
            """,
        )

    def test_select_narrows_to_listed_rules(self, project):
        self._write_mixed(project)
        run = project.lint(select=("REP203",))
        assert {d.rule_id for d in run.all_diagnostics} == {"REP203"}

    def test_ignore_drops_rules(self, project):
        self._write_mixed(project)
        run = project.lint(ignore=("REP203",))
        ids = {d.rule_id for d in run.all_diagnostics}
        assert "REP203" not in ids
        assert ids  # the RNG finding is still reported

    def test_unknown_rule_id_raises(self, project):
        self._write_mixed(project)
        with pytest.raises(ValueError, match="unknown rule id"):
            project.lint(select=("REP999",))

    def test_cli_exit_codes(self, project, capsys, monkeypatch):
        self._write_mixed(project)
        monkeypatch.chdir(project.root)
        assert cli_main(["--select", "BOGUS", "src"]) == 2
        assert cli_main(["--select", "REP203", "src"]) == 1
        assert cli_main(["--select", "REP601", "src"]) == 0
        capsys.readouterr()

    def test_explain_includes_doc_and_example(self):
        text = explain_rule("REP303")
        assert "REP303" in text
        assert "pickle" in text.lower()
        assert "Example (flagged):" in text
        text = explain_rule("REP103")
        assert "worker" in text.lower()

    def test_explain_unknown_rule_raises(self):
        with pytest.raises(ValueError, match="unknown rule id"):
            explain_rule("REP999")

    def test_explain_falls_back_to_module_docstring(self):
        # REP102 predates the doc/example fields; --explain must still
        # produce prose from the checker module's docstring.
        text = explain_rule("REP102")
        assert "provenance" in text.lower()


# -- incremental cache + parallel parity --------------------------------------


class TestEffectsCaching:
    def test_warm_run_reanalyzes_nothing(self, project, tmp_path):
        project.write(
            "src/repro/core/state.py",
            """\
            COUNT = 0

            def work(x):
                global COUNT
                COUNT = x
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        cache = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache)
        assert only(cold, "REP103")
        warm = project.lint(cache_dir=cache)
        assert warm.files_analyzed == 0
        assert warm.files_cached == warm.files_checked
        # Cached payloads still carry the findings.
        assert [d.to_dict() for d in warm.all_diagnostics] == [
            d.to_dict() for d in cold.all_diagnostics
        ]

    def test_caller_edit_rekeys_reachability_verdict(self, project, tmp_path):
        # state.py does not import launch.py, so the import closure
        # alone would serve a stale REP103 verdict; the effect-facts
        # fingerprint must re-key it.
        project.write(
            "src/repro/core/state.py",
            """\
            COUNT = 0

            def work(x):
                global COUNT
                COUNT = x
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        cache = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache)
        assert only(cold, "REP103")
        # Drop the shipping site; work is no longer worker-reachable.
        project.write(
            "src/repro/apps/launch.py",
            """\
            from ..core.state import work

            def main(xs):
                return [work(x) for x in xs]
            """,
        )
        warm = project.lint(cache_dir=cache)
        assert not only(warm, "REP103")
        # Both the edited file and the re-keyed verdict were re-run.
        assert warm.files_analyzed >= 2

    def test_select_keys_its_own_cache_entries(self, project, tmp_path):
        self_write = project.write
        self_write(
            "src/repro/core/render.py",
            """\
            def legend(names):
                return ", ".join(set(names))
            """,
        )
        cache = tmp_path / "lint-cache"
        full = project.lint(cache_dir=cache)
        assert only(full, "REP203")
        narrowed = project.lint(cache_dir=cache, ignore=("REP203",))
        assert not only(narrowed, "REP203")
        # And the full config's entries were not clobbered.
        full_again = project.lint(cache_dir=cache)
        assert full_again.files_analyzed == 0
        assert only(full_again, "REP203")

    def test_parallel_output_matches_serial(self, project):
        project.write(
            "src/repro/core/state.py",
            """\
            COUNT = 0

            def work(x):
                global COUNT
                COUNT = x
                return ", ".join(set("abc"))
            """,
        )
        project.write("src/repro/apps/launch.py", LAUNCHER)
        serial = project.lint(jobs=1)
        parallel = project.lint(jobs=2)
        assert [d.to_dict() for d in serial.all_diagnostics] == [
            d.to_dict() for d in parallel.all_diagnostics
        ]
        assert render_sarif(serial) == render_sarif(parallel)

    def test_sarif_carries_new_rules_and_results(self, project):
        project.write(
            "src/repro/core/render.py",
            """\
            def legend(names):
                return ", ".join(set(names))
            """,
        )
        sarif = render_sarif(project.lint())
        assert '"REP103"' in sarif
        assert '"REP203"' in sarif
        assert '"REP303"' in sarif


# -- graph-level unit coverage ------------------------------------------------


class TestEffectSummaries:
    def _graph(self, sources: dict[str, str]):
        summaries = {}
        for module, src in sources.items():
            relpath = "src/" + module.replace(".", "/") + ".py"
            summaries[relpath] = summarize_module(
                textwrap.dedent(src), module, relpath, "repro"
            )
        return build_project_graph(summaries, "repro")

    def test_env_fs_process_effects_tracked_not_reported(self):
        graph = self._graph(
            {
                "repro.core.m": """\
                import os
                import shutil
                import subprocess

                def touch_env():
                    os.environ["X"] = "1"

                def spawn():
                    subprocess.run(["true"])
                """
            }
        )
        effects = {
            fn.qualname: {e.kind for e in fn.effects}
            for fn in graph.functions.values()
        }
        assert "env" in effects["repro.core.m.touch_env"]
        assert "process" in effects["repro.core.m.spawn"]

    def test_worker_reachability_is_deterministic(self):
        sources = {
            "repro.core.state": """\
            X = 0

            def a():
                global X
                X = 1

            def b():
                a()
            """,
            "repro.apps.go": """\
            from concurrent.futures import ProcessPoolExecutor

            from ..core.state import a, b

            def main():
                with ProcessPoolExecutor() as pool:
                    pool.submit(a)
                    pool.submit(b)
            """,
        }
        first = self._graph(sources).worker_reachability()
        second = self._graph(sources).worker_reachability()
        assert first == second
        assert "repro.core.state.a" in first
        assert "repro.core.state.b" in first

    def test_effect_facts_only_cover_own_module(self):
        graph = self._graph(
            {
                "repro.core.state": """\
                def work(x):
                    return x
                """,
                "repro.apps.go": """\
                from concurrent.futures import ProcessPoolExecutor

                from ..core.state import work

                def main(xs):
                    with ProcessPoolExecutor() as pool:
                        return list(pool.map(work, xs))
                """,
            }
        )
        facts = graph.effect_facts_for_module("repro.core.state")
        assert [f[0] for f in facts] == ["repro.core.state.work"]
        assert graph.effect_facts_for_module("repro.traces.none") == ()
