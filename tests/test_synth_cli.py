"""Tests for the repro-generate CLI."""

import pytest

from repro.synth.cli import main
from repro.traces.gwa import read_gwa
from repro.traces.io import load_trace
from repro.traces.swf import read_swf


class TestCli:
    def test_list_systems(self, capsys):
        assert main(["--list-systems"]) == 0
        out = capsys.readouterr().out
        assert "AuverGrid" in out
        assert "GWA" in out and "SWF" in out

    def test_google_trace(self, tmp_path, capsys):
        out_dir = tmp_path / "trace"
        code = main(
            [
                "google",
                "--days",
                "0.1",
                "--machines",
                "5",
                "--out",
                str(out_dir),
            ]
        )
        assert code == 0
        trace = load_trace(out_dir)
        assert trace.num_machines == 5
        assert "wrote Google trace" in capsys.readouterr().out

    def test_grid_gwa(self, tmp_path):
        out = tmp_path / "ag.gwa.gz"
        assert main(
            ["grid", "AuverGrid", "--days", "2", "--out", str(out)]
        ) == 0
        jobs = read_gwa(out)
        assert jobs.num_rows > 0

    def test_grid_swf(self, tmp_path):
        out = tmp_path / "anl.swf"
        assert main(["grid", "ANL", "--days", "3", "--out", str(out)]) == 0
        jobs = read_swf(out)
        assert jobs.num_rows > 0

    def test_unknown_system(self, tmp_path, capsys):
        out = tmp_path / "x.gwa"
        assert main(["grid", "NoSuchGrid", "--out", str(out)]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_no_command_prints_help(self, capsys):
        assert main([]) == 2
        assert "usage" in capsys.readouterr().out
