"""Integration tests for the cluster simulator."""

import numpy as np
import pytest

from repro.sim import ClusterSimulator, MonitorConfig, SimConfig
from repro.sim.cluster import SimResult
from repro.sim.job import jobs_from_events
from repro.synth import GoogleConfig, generate_machines, generate_task_requests
from repro.traces.schema import TASK_EVENT_SCHEMA, TaskEvent
from repro.traces.validate import validate_job_table

HOUR = 3600.0


def _run(
    horizon=6 * HOUR,
    n_machines=6,
    rate=40.0,
    sim_config=None,
    seed=0,
) -> SimResult:
    rng = np.random.default_rng(seed)
    machines = generate_machines(n_machines, rng)
    requests = generate_task_requests(
        horizon,
        seed=seed + 1,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=rate,
    )
    sim = ClusterSimulator(machines, sim_config or SimConfig(), seed=seed + 2)
    return sim.run(requests, horizon)


class TestSimBasics:
    def test_event_log_schema(self, tiny_sim_result):
        _, result = tiny_sim_result
        assert set(result.task_events.column_names) == set(TASK_EVENT_SCHEMA)

    def test_events_time_ordered_after_sort(self, tiny_sim_result):
        _, result = tiny_sim_result
        times = np.asarray(result.task_events.sort_by("time")["time"])
        assert np.all(np.diff(times) >= 0)
        assert times.min() >= 0
        assert times.max() <= result.horizon

    def test_every_submit_has_matching_request_or_resubmit(
        self, tiny_sim_result
    ):
        requests, result = tiny_sim_result
        n_submits = result.counts["submitted"]
        assert n_submits >= len(requests) * 0.95  # all arrivals before horizon

    def test_schedule_events_name_machines(self, tiny_sim_result):
        _, result = tiny_sim_result
        ev = result.task_events
        sched = ev.select(ev["event_type"] == int(TaskEvent.SCHEDULE))
        assert np.all(sched["machine_id"] >= 0)

    def test_completion_counts_match_events(self, tiny_sim_result):
        _, result = tiny_sim_result
        ev = result.task_events
        for name, code in (
            ("finish", TaskEvent.FINISH),
            ("fail", TaskEvent.FAIL),
            ("kill", TaskEvent.KILL),
            ("evict", TaskEvent.EVICT),
            ("lost", TaskEvent.LOST),
        ):
            observed = int(
                np.count_nonzero(ev["event_type"] == int(code))
            )
            assert observed == result.counts[name]

    def test_deterministic(self):
        a = _run(horizon=2 * HOUR, rate=30.0, seed=7)
        b = _run(horizon=2 * HOUR, rate=30.0, seed=7)
        assert a.task_events == b.task_events
        assert a.machine_usage == b.machine_usage

    def test_batched_drain_byte_identical(self):
        # The batched event-drain fast path must not change a single
        # scheduler decision: every output table matches the
        # one-event-at-a-time reference run exactly. Pinned to the
        # scalar engine — batched_drain only concerns its loop, and
        # the default engine now routes to the SoA path.
        def run(batched):
            rng = np.random.default_rng(11)
            machines = generate_machines(6, rng)
            requests = generate_task_requests(
                4 * HOUR,
                seed=12,
                config=GoogleConfig(busy_window=None),
                tasks_per_hour=60.0,
            )
            sim = ClusterSimulator(machines, SimConfig(), seed=13)
            return sim.run(
                requests, 4 * HOUR, batched_drain=batched, engine="scalar"
            )

        fast, golden = run(True), run(False)
        assert fast.task_events == golden.task_events
        assert fast.machine_usage == golden.machine_usage
        assert fast.cluster_series == golden.cluster_series
        assert fast.counts == golden.counts

    def test_monitor_rows(self, tiny_sim_result):
        _, result = tiny_sim_result
        mu = result.machine_usage
        n_machines = result.machines.num_rows
        n_ticks = len(result.cluster_series)
        assert len(mu) == n_machines * n_ticks

    def test_usage_within_capacity(self, tiny_sim_result):
        _, result = tiny_sim_result
        mu = result.machine_usage
        caps = {
            int(m): c
            for m, c in zip(
                result.machines["machine_id"], result.machines["cpu_capacity"]
            )
        }
        cap_arr = np.array([caps[int(m)] for m in mu["machine_id"]])
        assert np.all(mu["cpu_usage"] <= cap_arr + 1e-9)
        assert np.all(mu["cpu_usage"] >= 0)

    def test_band_columns_bounded_by_total(self, tiny_sim_result):
        _, result = tiny_sim_result
        mu = result.machine_usage
        assert np.all(mu["cpu_high"] <= mu["cpu_mid_high"] + 1e-9)
        assert np.all(mu["cpu_mid_high"] <= mu["cpu_usage"] + 1e-6)

    def test_completion_mix_sums_to_one(self, tiny_sim_result):
        _, result = tiny_sim_result
        mix = result.completion_mix()
        total = sum(
            mix[k] for k in ("finish", "fail", "kill", "evict", "lost")
        )
        assert total == pytest.approx(1.0)
        assert mix["abnormal"] == pytest.approx(1.0 - mix["finish"])

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            _run(horizon=0.0)  # type: ignore[arg-type]


class TestSchedulingBehavior:
    def test_mass_conservation(self, tiny_sim_result):
        """Every schedule is eventually matched by at most one terminal."""
        _, result = tiny_sim_result
        n_sched = result.counts["scheduled"]
        n_term = sum(
            result.counts[k]
            for k in ("finish", "fail", "kill", "evict", "lost")
        )
        # Tasks still running at the horizon lack terminals.
        assert n_term <= n_sched
        assert n_term >= 0.5 * n_sched

    def test_preemption_off_no_mechanistic_evictions(self):
        config = SimConfig(preemption=False)
        result = _run(sim_config=config, rate=60.0)
        # Fate-drawn evictions still occur, but no preemption cascades;
        # the run must complete and stay consistent.
        assert result.counts["scheduled"] > 0

    def test_saturated_cluster_queues_tasks(self):
        # One tiny machine, many tasks: pending must build up.
        from repro.synth.machines import FleetConfig

        rng = np.random.default_rng(3)
        machines = generate_machines(
            1, rng, FleetConfig(cpu_levels=(0.25,), cpu_weights=(1.0,))
        )
        requests = generate_task_requests(
            2 * HOUR,
            seed=4,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=2000.0,
        )
        sim = ClusterSimulator(machines, SimConfig(), seed=5)
        result = sim.run(requests, 2 * HOUR)
        assert int(np.asarray(result.cluster_series["n_pending"]).max()) > 0

    def test_high_priority_preempts_low(self):
        """A saturating low-priority load must yield to high priority."""
        from repro.synth.google_model import TaskRequests
        from repro.core.table import Table

        machines = Table(
            {
                "machine_id": np.array([0], dtype=np.int64),
                "cpu_capacity": np.array([1.0]),
                "mem_capacity": np.array([1.0]),
                "page_cache_capacity": np.array([1.0]),
            }
        )
        n_low = 10
        low = TaskRequests(
            submit_time=np.linspace(0, 1.0, n_low),
            job_id=np.arange(n_low, dtype=np.int64),
            task_index=np.zeros(n_low, dtype=np.int32),
            priority=np.full(n_low, 2, dtype=np.int16),
            cpu_request=np.full(n_low, 0.1),
            mem_request=np.full(n_low, 0.1),
            duration=np.full(n_low, 7200.0),
            cpu_utilization=np.full(n_low, 0.5),
            mem_utilization=np.full(n_low, 0.9),
            page_cache=np.zeros(n_low),
            fate=np.full(n_low, int(TaskEvent.FINISH), dtype=np.int8),
        )
        high = TaskRequests(
            submit_time=np.array([10.0]),
            job_id=np.array([100], dtype=np.int64),
            task_index=np.zeros(1, dtype=np.int32),
            priority=np.array([11], dtype=np.int16),
            cpu_request=np.array([0.5]),
            mem_request=np.array([0.5]),
            duration=np.array([100.0]),
            cpu_utilization=np.array([0.5]),
            mem_utilization=np.array([0.9]),
            page_cache=np.zeros(1),
            fate=np.full(1, int(TaskEvent.FINISH), dtype=np.int8),
        )
        merged = TaskRequests(
            **{
                name: np.concatenate(
                    [getattr(low, name), getattr(high, name)]
                )
                for name in low.__dataclass_fields__
            }
        ).sorted_by_time()
        sim = ClusterSimulator(machines, SimConfig(), seed=7)
        result = sim.run(merged, 4 * HOUR)
        assert result.counts["evict"] > 0
        ev = result.task_events
        high_sched = ev.select(
            (ev["event_type"] == int(TaskEvent.SCHEDULE))
            & (ev["priority"] == 11)
        )
        assert len(high_sched) == 1


class TestJobsFromEvents:
    def test_aggregation_valid(self, tiny_sim_result):
        _, result = tiny_sim_result
        jobs = jobs_from_events(result.task_events, result.horizon)
        validate_job_table(jobs)
        assert len(jobs) > 0

    def test_job_bounds(self, tiny_sim_result):
        _, result = tiny_sim_result
        jobs = jobs_from_events(result.task_events, result.horizon)
        assert np.all(jobs["end_time"] <= result.horizon + 1e-9)
        assert np.all(jobs["end_time"] >= jobs["submit_time"])

    def test_empty_rejected(self):
        from repro.core.table import Table
        from repro.traces.schema import TASK_EVENT_SCHEMA

        empty = Table(
            {k: np.empty(0, dtype=v) for k, v in TASK_EVENT_SCHEMA.items()},
            schema=TASK_EVENT_SCHEMA,
        )
        with pytest.raises(ValueError):
            jobs_from_events(empty, 100.0)


class TestMonitorConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(sample_period=0)
        with pytest.raises(ValueError):
            MonitorConfig(cpu_noise=-1.0)

    def test_zero_noise_deterministic_usage(self):
        config = SimConfig(
            monitor=MonitorConfig(cpu_noise=0.0, mem_noise=0.0, page_noise=0.0)
        )
        result = _run(sim_config=config, horizon=2 * HOUR, rate=30.0)
        mu = result.machine_usage
        assert np.all(np.asarray(mu["cpu_usage"]) >= 0)
