"""Map-reduce over shards: order contract and merge exactness.

The load-bearing property is byte-identity: for every accumulator the
experiments use, folding per-shard partials must reproduce the batch
computation bit for bit, for any shard size and for the spawn pool.
"""

import os
import signal
from dataclasses import dataclass

import numpy as np
import pytest

from repro.core.ecdf import ecdf
from repro.core.fairness import HourlyCountsAccumulator, hourly_counts
from repro.core.kernels import (
    ECDFAccumulator,
    MassCountAccumulator,
    merge_run_lengths,
    run_length_encode,
)
from repro.core.mapreduce import (
    MapReduceConfig,
    MapReduceError,
    map_reduce,
    map_shards,
    merge_accumulators,
)
from repro.core.masscount import mass_count
from repro.core.shard import ShardedTable, ShardIntegrityError
from repro.core.timing import Timings
from repro.core.segments import LevelRunAccumulator, level_durations
from repro.core.shard import write_table
from repro.core.table import Table

SHARD_SIZES = (1, 3, 7, 50, 1000)


def _sample(n=200, seed=3):
    rng = np.random.default_rng(seed)
    # Repeated values exercise the ECDF's distinct-value folding.
    return np.round(rng.exponential(50.0, n), 1)


def _sum_kernel(shard):
    return float(np.sum(np.asarray(shard["x"])))


def _ecdf_kernel(shard):
    acc = ECDFAccumulator()
    acc.add(np.asarray(shard["x"]))
    return acc


def _mass_kernel(shard):
    acc = MassCountAccumulator()
    acc.add(np.asarray(shard["x"]))
    return acc


def _hourly_kernel(shard, horizon):
    acc = HourlyCountsAccumulator(horizon)
    acc.add(np.asarray(shard["x"]))
    return acc


def _runs_kernel(shard):
    return run_length_encode(np.asarray(shard["x"]))


class TestMapShards:
    def test_results_in_shard_order(self, tmp_path):
        values = _sample(40)
        sharded = write_table(Table({"x": values}), tmp_path / "t", 7)
        got = map_shards(sharded, _sum_kernel)
        want = [
            float(np.sum(values[i : i + 7])) for i in range(0, 40, 7)
        ]
        assert got == want

    def test_zero_shards(self, tmp_path):
        sharded = write_table(Table({"x": np.empty(0)}), tmp_path / "t", 4)
        assert map_shards(sharded, _sum_kernel) == []
        assert map_reduce(sharded, _sum_kernel, merge=lambda a, b: a) is None


class TestMergeExactness:
    """Per-shard fold == batch, bit for bit, for every shard size."""

    def test_ecdf(self, tmp_path):
        values = _sample()
        want = ecdf(values)
        for rows in SHARD_SIZES:
            sharded = write_table(
                Table({"x": values}), tmp_path / f"e{rows}", rows
            )
            got = map_reduce(sharded, _ecdf_kernel).finalize()
            np.testing.assert_array_equal(got.values, want.values)
            np.testing.assert_array_equal(got.probabilities, want.probabilities)

    def test_mass_count(self, tmp_path):
        values = _sample()
        want = mass_count(values)
        for rows in SHARD_SIZES:
            sharded = write_table(
                Table({"x": values}), tmp_path / f"m{rows}", rows
            )
            acc = map_reduce(sharded, _mass_kernel)
            np.testing.assert_array_equal(acc.merged(), values)
            got = acc.finalize()
            assert got.mm_distance == want.mm_distance
            assert got.joint_ratio == want.joint_ratio

    def test_hourly_counts(self, tmp_path):
        times = np.sort(_sample(300, seed=5)) * 60.0
        horizon = float(times.max()) + 1.0
        want = hourly_counts(times, horizon)
        for rows in SHARD_SIZES:
            sharded = write_table(
                Table({"x": times}), tmp_path / f"h{rows}", rows
            )
            acc = map_reduce(sharded, _hourly_kernel, args=(horizon,))
            np.testing.assert_array_equal(acc.counts(), want)

    def test_run_lengths(self, tmp_path):
        rng = np.random.default_rng(11)
        codes = rng.integers(0, 3, 120, dtype=np.int64)
        want = run_length_encode(codes)
        for rows in SHARD_SIZES:
            sharded = write_table(
                Table({"x": codes}), tmp_path / f"r{rows}", rows
            )
            got = map_reduce(sharded, _runs_kernel, merge=merge_run_lengths)
            np.testing.assert_array_equal(got.starts, want.starts)
            np.testing.assert_array_equal(got.lengths, want.lengths)
            np.testing.assert_array_equal(got.values, want.values)


class TestLevelRunAccumulator:
    def test_matches_batch_for_any_chunking(self):
        rng = np.random.default_rng(7)
        period = 300.0
        values = np.clip(rng.normal(0.5, 0.3, 240), 0.0, 1.0)
        times = np.arange(values.size) * period
        want = level_durations(times, values)
        for sizes in [(240,), (1,) * 240, (37, 100, 103), (239, 1)]:
            acc = LevelRunAccumulator(tail=period)
            start = 0
            for size in sizes:
                acc.add(times[start : start + size], values[start : start + size])
                start += size
            got = acc.finalize()
            assert got.keys() == want.keys()
            for lvl in want:
                np.testing.assert_array_equal(got[lvl], want[lvl])

    def test_merge_matches_single_accumulator(self):
        rng = np.random.default_rng(9)
        period = 300.0
        values = np.clip(rng.normal(0.5, 0.3, 90), 0.0, 1.0)
        times = np.arange(values.size) * period
        want = level_durations(times, values)
        parts = []
        for lo, hi in ((0, 30), (30, 31), (31, 90)):
            acc = LevelRunAccumulator(tail=period)
            acc.add(times[lo:hi], values[lo:hi])
            parts.append(acc)
        merged = merge_accumulators(
            merge_accumulators(parts[0], parts[1]), parts[2]
        )
        got = merged.finalize()
        for lvl in want:
            np.testing.assert_array_equal(got[lvl], want[lvl])

    def test_rejects_out_of_order_chunks(self):
        acc = LevelRunAccumulator(tail=300.0)
        acc.add(np.array([0.0, 300.0]), np.array([0.1, 0.1]))
        with pytest.raises(ValueError):
            acc.add(np.array([150.0]), np.array([0.1]))


class TestSpawnPool:
    """jobs > 1 must be byte-identical to the serial fold."""

    def test_map_shards_parallel_order(self, tmp_path):
        values = _sample(60)
        sharded = write_table(Table({"x": values}), tmp_path / "t", 9)
        assert map_shards(sharded, _sum_kernel, jobs=2) == map_shards(
            sharded, _sum_kernel
        )

    def test_map_reduce_parallel_identical(self, tmp_path):
        values = _sample(150, seed=13)
        sharded = write_table(Table({"x": values}), tmp_path / "t", 11)
        serial = map_reduce(sharded, _ecdf_kernel).finalize()
        parallel = map_reduce(sharded, _ecdf_kernel, jobs=2).finalize()
        np.testing.assert_array_equal(serial.values, parallel.values)
        np.testing.assert_array_equal(
            serial.probabilities, parallel.probabilities
        )
        acc_s = map_reduce(sharded, _mass_kernel)
        acc_p = map_reduce(sharded, _mass_kernel, jobs=3)
        np.testing.assert_array_equal(acc_s.merged(), acc_p.merged())


# -- supervision: injectors and kernels must be picklable (spawn) ----------


@dataclass(frozen=True)
class _KillOnce:
    """SIGKILL the worker running the given block, first attempt only."""

    block: int

    def __call__(self, root, block, attempt):
        if block == self.block and attempt == 1:
            os.kill(os.getpid(), signal.SIGKILL)


@dataclass(frozen=True)
class _HangOnce:
    """Stall the given block's first attempt far past the block timeout."""

    block: int
    seconds: float = 60.0

    def __call__(self, root, block, attempt):
        if block == self.block and attempt == 1:
            import time

            time.sleep(self.seconds)


@dataclass(frozen=True)
class _AlwaysKill:
    """Every worker dies: forces degradation to the inline path."""

    def __call__(self, root, block, attempt):
        os.kill(os.getpid(), signal.SIGKILL)


def _boom_kernel(shard):
    raise ValueError("boom")


_FAST = dict(backoff_base=0.001, backoff_cap=0.01)


class TestSupervision:
    """Crash/timeout/error/corruption handling in the spawn pool."""

    def _sharded(self, tmp_path, n=60, rows=5, name="t"):
        values = _sample(n, seed=17)
        return values, write_table(
            Table({"x": values}), tmp_path / name, rows
        )

    def test_killed_worker_respawned_and_block_retried(self, tmp_path):
        values, sharded = self._sharded(tmp_path)
        timings = Timings()
        got = map_shards(
            sharded,
            _sum_kernel,
            jobs=2,
            config=MapReduceConfig(**_FAST),
            inject=_KillOnce(block=1),
            timings=timings,
        )
        assert got == map_shards(sharded, _sum_kernel)
        assert timings.counters["mapreduce_crashes"] >= 1
        assert timings.counters["mapreduce_retries"] >= 1
        assert timings.counters["mapreduce_respawns"] >= 1

    def test_hung_block_killed_and_retried(self, tmp_path):
        values, sharded = self._sharded(tmp_path, n=20, rows=5)
        timings = Timings()
        got = map_shards(
            sharded,
            _sum_kernel,
            jobs=2,
            config=MapReduceConfig(timeout=1.0, poll_interval=0.02, **_FAST),
            inject=_HangOnce(block=0),
            timings=timings,
        )
        assert got == map_shards(sharded, _sum_kernel)
        assert timings.counters["mapreduce_block_timeouts"] >= 1

    def test_kernel_exception_is_permanent(self, tmp_path):
        values, sharded = self._sharded(tmp_path, n=20, rows=5)
        with pytest.raises(MapReduceError, match="boom"):
            map_shards(
                sharded,
                _boom_kernel,
                jobs=2,
                config=MapReduceConfig(**_FAST),
            )

    def test_retries_exhausted_falls_back_inline(self, tmp_path):
        # A block whose worker dies on every attempt must still finish
        # (inline in the parent), not loop or raise.
        values, sharded = self._sharded(tmp_path, n=30, rows=5)
        timings = Timings()
        got = map_shards(
            sharded,
            _sum_kernel,
            jobs=2,
            config=MapReduceConfig(retries=1, degrade_after=100, **_FAST),
            inject=_AlwaysKill(),
            timings=timings,
        )
        assert got == map_shards(sharded, _sum_kernel)
        assert timings.counters["mapreduce_inline"] >= 1

    def test_circuit_breaker_degrades_pool(self, tmp_path):
        # Enough transient failures trip the breaker: the remaining
        # blocks run inline in index order and the fold stays exact.
        values, sharded = self._sharded(tmp_path, n=60, rows=4)
        timings = Timings()
        serial = map_reduce(sharded, _ecdf_kernel).finalize()
        got = map_reduce(
            sharded,
            _ecdf_kernel,
            jobs=3,
            config=MapReduceConfig(retries=0, degrade_after=1, **_FAST),
            inject=_AlwaysKill(),
            timings=timings,
        ).finalize()
        np.testing.assert_array_equal(got.values, serial.values)
        np.testing.assert_array_equal(got.probabilities, serial.probabilities)
        assert timings.counters["mapreduce_inline"] >= 1

    def test_corrupt_shard_heals_and_result_is_clean(self, tmp_path):
        values, sharded = self._sharded(tmp_path, n=40, rows=5)
        # Flip a data byte: structural checks pass, the digest fails in
        # the worker, and the parent's heal callback swaps in a rebuilt
        # byte-identical table.
        victim = sharded.root / "shard-00003" / "x.npy"
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))

        healed_roots = []

        def heal(root, message):
            rebuilt = write_table(
                Table({"x": values}), tmp_path / f"heal{len(healed_roots)}", 5
            )
            healed_roots.append(root)
            return str(rebuilt.root)

        clean = write_table(Table({"x": values}), tmp_path / "ref", 5)
        want = map_shards(clean, _sum_kernel)
        for jobs in (1, 2):
            got = map_shards(
                ShardedTable.open(sharded.root, verify="lazy"),
                _sum_kernel,
                jobs=jobs,
                config=MapReduceConfig(**_FAST),
                heal=heal,
            )
            assert got == want, jobs
        assert len(healed_roots) == 2

    def test_corruption_without_heal_raises_typed_error(self, tmp_path):
        values, sharded = self._sharded(tmp_path, n=20, rows=5)
        victim = sharded.root / "shard-00001" / "x.npy"
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        table = ShardedTable.open(sharded.root, verify="lazy")
        for jobs in (1, 2):
            with pytest.raises(ShardIntegrityError):
                map_shards(
                    table,
                    _sum_kernel,
                    jobs=jobs,
                    config=MapReduceConfig(**_FAST),
                )

    def test_heal_attempts_are_capped(self, tmp_path):
        values, sharded = self._sharded(tmp_path, n=20, rows=5)
        victim = sharded.root / "shard-00001" / "x.npy"
        data = bytearray(victim.read_bytes())
        data[-1] ^= 0xFF
        victim.write_bytes(bytes(data))
        calls = []

        def bad_heal(root, message):
            calls.append(root)
            return root  # "healed" to the same corrupt table

        with pytest.raises(ShardIntegrityError):
            map_shards(
                ShardedTable.open(sharded.root, verify="lazy"),
                _sum_kernel,
                jobs=2,
                config=MapReduceConfig(max_heals=2, **_FAST),
                heal=bad_heal,
            )
        assert len(calls) == 2

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MapReduceConfig(timeout=0.0)
        with pytest.raises(ValueError):
            MapReduceConfig(retries=-1)
        with pytest.raises(ValueError):
            MapReduceConfig(verify="paranoid")
