"""Unit and calibration tests for the Grid workload models."""

import numpy as np
import pytest

from repro.core.fairness import submission_rate_stats
from repro.core.masscount import mass_count
from repro.synth.grid_hostload import GridHostConfig, generate_grid_host_series
from repro.synth.grid_model import (
    generate_all_grids,
    generate_grid_jobs,
    grid_preset,
)
from repro.synth.presets import DAY, GRID_PRESETS
from repro.traces.schema import GWA_JOB_SCHEMA, SWF_JOB_SCHEMA

HORIZON = 10 * DAY


class TestPresets:
    def test_all_eight_systems_present(self):
        assert len(GRID_PRESETS) == 8
        for name in (
            "AuverGrid",
            "NorduGrid",
            "SHARCNET",
            "ANL",
            "RICC",
            "METACENTRUM",
            "LLNL-Atlas",
            "DAS-2",
        ):
            assert name in GRID_PRESETS

    def test_lookup(self):
        assert grid_preset("AuverGrid").name == "AuverGrid"
        with pytest.raises(KeyError, match="available"):
            grid_preset("NoSuchGrid")

    def test_preset_validation(self):
        from repro.synth.presets import GridSystemPreset
        from repro.core.distributions import Deterministic

        with pytest.raises(ValueError):
            GridSystemPreset(
                name="x",
                archive="bogus",
                mean_jobs_per_hour=1.0,
                fairness=0.5,
                diurnal_amplitude=0.5,
                job_length=Deterministic(10.0),
                proc_counts=(1,),
                proc_weights=(1.0,),
                utilization_range=(0.5, 1.0),
                mem_mb=Deterministic(100.0),
            )


class TestGenerateGridJobs:
    def test_gwa_schema(self):
        jobs = generate_grid_jobs("AuverGrid", HORIZON, seed=0)
        assert set(jobs.column_names) == set(GWA_JOB_SCHEMA)

    def test_swf_schema(self):
        jobs = generate_grid_jobs("ANL", HORIZON, seed=0)
        assert set(jobs.column_names) == set(SWF_JOB_SCHEMA)

    def test_rate_calibration(self):
        jobs = generate_grid_jobs("AuverGrid", 30 * DAY, seed=1)
        stats = submission_rate_stats(
            np.asarray(jobs["submit_time"]), 30 * DAY
        )
        assert stats.avg_per_hour == pytest.approx(45, rel=0.25)

    def test_fairness_much_lower_than_google(self):
        for name in ("SHARCNET", "NorduGrid"):
            jobs = generate_grid_jobs(name, 30 * DAY, seed=2)
            stats = submission_rate_stats(
                np.asarray(jobs["submit_time"]), 30 * DAY
            )
            assert stats.fairness < 0.3
            assert stats.min_per_hour == 0

    def test_auvergrid_masscount_calibration(self):
        jobs = generate_grid_jobs("AuverGrid", 60 * DAY, seed=3)
        mc = mass_count(np.asarray(jobs["run_time"]))
        assert mc.joint_ratio[0] == pytest.approx(24, abs=4)

    def test_parallel_systems_have_multiproc_jobs(self):
        jobs = generate_grid_jobs("SHARCNET", HORIZON, seed=4)
        assert jobs["num_procs"].max() > 1

    def test_deterministic(self):
        a = generate_grid_jobs("RICC", HORIZON, seed=5)
        b = generate_grid_jobs("RICC", HORIZON, seed=5)
        assert a == b

    def test_too_short_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            generate_grid_jobs("LLNL-Atlas", 1.0, seed=0)

    def test_generate_all(self):
        out = generate_all_grids(HORIZON, seed=0)
        assert set(out) == set(GRID_PRESETS)
        subset = generate_all_grids(HORIZON, seed=0, systems=["ANL"])
        assert set(subset) == {"ANL"}

    def test_generate_all_same_seed_identical(self):
        # Regression: child streams are spawned from the root seed, so a
        # rerun with the same seed reproduces every system exactly.
        a = generate_all_grids(HORIZON, seed=7)
        b = generate_all_grids(HORIZON, seed=7)
        assert set(a) == set(b)
        for name in a:
            assert a[name] == b[name], f"{name} differs between identical runs"

    def test_generate_all_seed_decorrelates(self):
        a = generate_all_grids(HORIZON, seed=7)
        c = generate_all_grids(HORIZON, seed=8)
        assert any(a[name] != c[name] for name in a)

    def test_generate_all_subset_matches_full_run(self):
        # A system's trace depends only on (seed, name): requesting a
        # subset, or listing systems in another order, changes nothing.
        full = generate_all_grids(HORIZON, seed=7)
        solo = generate_all_grids(HORIZON, seed=7, systems=["RICC"])
        assert solo["RICC"] == full["RICC"]
        pair = generate_all_grids(HORIZON, seed=7, systems=["RICC", "ANL"])
        riap = generate_all_grids(HORIZON, seed=7, systems=["ANL", "RICC"])
        assert pair["RICC"] == riap["RICC"] == full["RICC"]
        assert pair["ANL"] == riap["ANL"] == full["ANL"]


class TestGridHostload:
    def test_shapes_and_bounds(self):
        times, cpu, mem = generate_grid_host_series(5 * DAY, seed=0)
        assert times.shape == cpu.shape == mem.shape
        assert cpu.min() >= 0 and cpu.max() <= 1
        assert mem.min() >= 0 and mem.max() <= 1

    def test_cpu_above_memory(self):
        _, cpu, mem = generate_grid_host_series(10 * DAY, seed=1)
        assert cpu.mean() > mem.mean()

    def test_low_noise(self):
        from repro.core.noise import noise_stats

        _, cpu, _ = generate_grid_host_series(10 * DAY, seed=2)
        assert noise_stats(cpu)["mean"] < 0.01

    def test_long_stable_levels(self):
        from repro.core.segments import constant_segments, discretize

        times, cpu, _ = generate_grid_host_series(10 * DAY, seed=3)
        seg = constant_segments(times, discretize(np.clip(cpu, 0, 1)))
        # Mean stable period should span hours, not minutes.
        assert seg.durations.mean() > 3600.0

    def test_validation(self):
        with pytest.raises(ValueError):
            generate_grid_host_series(-1.0)
        with pytest.raises(ValueError):
            GridHostConfig(mean_level_duration=0.0)
        with pytest.raises(ValueError):
            GridHostConfig(noise_std=-0.1)

    def test_deterministic(self):
        a = generate_grid_host_series(DAY, seed=9)
        b = generate_grid_host_series(DAY, seed=9)
        for x, y in zip(a, b):
            np.testing.assert_array_equal(x, y)
