"""Tests for reprolint's whole-program dataflow layer (PR 5).

Covers the flow-sensitive rules (REP102 rng-provenance, REP202
cross-module schema flow, REP701 unused-suppression), suppression-
comment parsing edge cases, the incremental cache's invalidation
contract, parallel analysis equivalence and the SARIF reporter.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import lint_paths
from repro.analysis.engine import SuppressionSpec, _parse_suppressions
from repro.analysis.graph import build_project_graph, summarize_module
from repro.analysis.reporters import render_sarif

MINI_PYPROJECT = """\
[project]
name = "repro"

[tool.reprolint]
exclude = ["*.egg-info/*", "*__pycache__*"]

[tool.reprolint.layers]
core = 0
traces = 1
synth = 2
hostload = 2
sim = 3
apps = 3
experiments = 4
"""

MINI_SCHEMA = """\
JOB_TABLE_SCHEMA = {
    "job_id": "int64",
    "submit_time": "float64",
    "run_time": "float64",
    "wait_time": "float64",
}
"""


@pytest.fixture
def project(tmp_path):
    """A minimal repro-shaped project; returns a writer/linter helper."""

    class Project:
        root = tmp_path

        def write(self, relpath: str, source: str) -> Path:
            path = tmp_path / relpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(source))
            return path

        def lint(self, *relpaths: str, **kwargs):
            targets = [tmp_path / p for p in (relpaths or ("src",))]
            return lint_paths(targets, root=tmp_path, **kwargs)

    proj = Project()
    proj.write("pyproject.toml", MINI_PYPROJECT)
    proj.write("src/repro/traces/schema.py", MINI_SCHEMA)
    proj.write("src/repro/__init__.py", "")
    return proj


def rules_at(run, relpath: str, line: int) -> set[str]:
    return {
        d.rule_id
        for d in run.all_diagnostics
        if d.path == relpath and d.line == line
    }


def only(run, rule_id: str):
    return [d for d in run.all_diagnostics if d.rule_id == rule_id]


# -- REP102: rng provenance ---------------------------------------------------


class TestRngProvenance:
    def test_hard_coded_seed_in_core_fails(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import numpy as np

            def make():
                return np.random.default_rng(1234)
            """,
        )
        run = project.lint()
        assert "REP102" in rules_at(run, "src/repro/core/m.py", 4)
        [diag] = only(run, "REP102")
        assert "hard-coded seed" in diag.message

    def test_adhoc_seed_arithmetic_in_synth_fails(self, project):
        project.write(
            "src/repro/synth/m.py",
            """\
            import numpy as np

            def make(seed):
                return np.random.default_rng(seed + 10)
            """,
        )
        run = project.lint()
        assert "REP102" in rules_at(run, "src/repro/synth/m.py", 4)
        [diag] = only(run, "REP102")
        assert "seed arithmetic" in diag.message
        assert "spawn" in diag.hint

    def test_seeded_spawn_chain_passes(self, project):
        project.write(
            "src/repro/core/streams.py",
            """\
            import numpy as np

            def children(seed, n):
                ss = np.random.SeedSequence(seed)
                return [np.random.default_rng(child) for child in ss.spawn(n)]

            def child(seed):
                ss = np.random.SeedSequence(seed)
                return np.random.default_rng(ss.spawn(3)[0])
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_param_passthrough_passes(self, project):
        project.write(
            "src/repro/synth/m.py",
            """\
            import numpy as np

            def generate(rng: np.random.Generator, n):
                return rng.normal(size=n)

            def wrap(rng, n):
                return generate(rng, n)
            """,
        )
        assert project.lint().all_diagnostics == []

    def test_cross_module_literal_entropy_arg_fails_in_scope(self, project):
        project.write(
            "src/repro/synth/gen.py",
            """\
            import numpy as np

            def generate(rng: np.random.Generator, n):
                return rng.normal(size=n)
            """,
        )
        project.write(
            "src/repro/sim/run.py",
            """\
            import numpy as np
            from ..synth.gen import generate

            def simulate():
                return generate(np.random.default_rng(7), 10)
            """,
        )
        run = project.lint()
        assert "REP102" in rules_at(run, "src/repro/sim/run.py", 5)
        assert rules_at(run, "src/repro/synth/gen.py", 4) == set()

    def test_experiments_may_choose_literal_seeds(self, project):
        project.write(
            "src/repro/synth/gen.py",
            """\
            import numpy as np

            def generate(rng: np.random.Generator, n):
                return rng.normal(size=n)
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            import numpy as np
            from ..synth.gen import generate

            def main(seed=123):
                return generate(np.random.default_rng(seed + 1), 10)
            """,
        )
        # The experiments layer is the composition root: literal/derived
        # run seeds are its job, so REP102 stays quiet there.
        assert only(project.lint(), "REP102") == []

    def test_unseeded_entropy_arg_fails_even_from_experiments(self, project):
        project.write(
            "src/repro/synth/gen.py",
            """\
            import numpy as np

            def generate(rng: np.random.Generator, n):
                return rng.normal(size=n)
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            import numpy as np
            from ..synth.gen import generate

            def main():
                return generate(np.random.default_rng(), 10)
            """,
        )
        run = project.lint()
        assert "REP102" in rules_at(run, "src/repro/experiments/run.py", 5)

    def test_unseeded_generator_returned_into_scope_fails(self, project):
        project.write(
            "src/repro/apps/helpers.py",
            """\
            import numpy as np

            def fresh_rng():
                return np.random.default_rng()
            """,
        )
        project.write(
            "src/repro/sim/use.py",
            """\
            from ..apps.helpers import fresh_rng

            def simulate():
                rng = fresh_rng()
                return rng.normal()
            """,
        )
        run = project.lint()
        assert "REP102" in rules_at(run, "src/repro/sim/use.py", 4)

    def test_entropy_param_closure_through_forwarding(self, project):
        # seed -> wrapper -> generate: the wrapper's param becomes an
        # entropy param transitively, so a literal flowing into the
        # wrapper from a scoped layer is caught.
        project.write(
            "src/repro/synth/gen.py",
            """\
            import numpy as np

            def generate(rng: np.random.Generator, n):
                return rng.normal(size=n)

            def wrapper(rng, n):
                return generate(rng, n)
            """,
        )
        project.write(
            "src/repro/sim/run.py",
            """\
            import numpy as np
            from ..synth.gen import wrapper

            def simulate():
                return wrapper(np.random.default_rng(99), 4)
            """,
        )
        run = project.lint()
        assert "REP102" in rules_at(run, "src/repro/sim/run.py", 5)


# -- REP202: cross-module schema flow ----------------------------------------


class TestSchemaFlow:
    def test_cross_module_missing_column_caught(self, project):
        project.write(
            "src/repro/core/stats.py",
            """\
            def mean_wait(jobs):
                return jobs["wait_time"] / jobs["submit_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import mean_wait
            from ..core.table import Table

            def main():
                t = Table({"submit_time": [1.0], "run_time": [2.0]})
                return mean_wait(t)
            """,
        )
        run = project.lint()
        # "wait_time" exists in the global schema (so REP201 is quiet)
        # but no caller passes it — only the flow rule can see that.
        assert rules_at(run, "src/repro/core/stats.py", 2) == {"REP202"}
        [diag] = only(run, "REP202")
        assert "wait_time" in diag.message
        assert "1 call site" in diag.message

    def test_satisfied_columns_pass(self, project):
        project.write(
            "src/repro/core/stats.py",
            """\
            def mean_wait(jobs):
                return jobs["wait_time"] / jobs["run_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import mean_wait
            from ..core.table import Table

            def main():
                t = Table({"wait_time": [1.0], "run_time": [2.0]})
                return mean_wait(t)
            """,
        )
        assert only(project.lint(), "REP202") == []

    def test_union_over_multiple_call_sites(self, project):
        project.write(
            "src/repro/core/stats.py",
            """\
            def span(jobs):
                return jobs["submit_time"] + jobs["run_time"]
            """,
        )
        project.write(
            "src/repro/experiments/a.py",
            """\
            from ..core.stats import span
            from ..core.table import Table

            def main():
                return span(Table({"submit_time": [0.0]}))
            """,
        )
        project.write(
            "src/repro/experiments/b.py",
            """\
            from ..core.stats import span
            from ..core.table import Table

            def main():
                return span(Table({"run_time": [0.0]}))
            """,
        )
        # Each caller alone is missing a column, but the inferred schema
        # is the union over call sites, which satisfies both reads.
        assert only(project.lint(), "REP202") == []

    def test_opaque_call_site_silences_inference(self, project):
        project.write(
            "src/repro/core/stats.py",
            """\
            def mean_wait(jobs):
                return jobs["wait_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import mean_wait
            from .io_helpers import load

            def main():
                return mean_wait(load())
            """,
        )
        project.write(
            "src/repro/experiments/io_helpers.py",
            """\
            def load():
                return NotImplemented
            """,
        )
        # One caller whose argument schema is unknowable: inference is
        # incomplete, the rule says nothing.
        assert only(project.lint(), "REP202") == []

    def test_columns_added_by_function_itself_allowed(self, project):
        project.write(
            "src/repro/core/stats.py",
            """\
            def enrich(jobs):
                out = jobs.with_columns(wait_share=1.0)
                return out["wait_share"], jobs["run_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import enrich
            from ..core.table import Table

            def main():
                return enrich(Table({"run_time": [2.0]}))
            """,
        )
        assert only(project.lint(), "REP202") == []

    def test_schema_flow_through_reexport(self, project):
        project.write(
            "src/repro/core/__init__.py",
            "from .stats import mean_wait\n",
        )
        project.write(
            "src/repro/core/stats.py",
            """\
            def mean_wait(jobs):
                return jobs["wait_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core import mean_wait
            from ..core.table import Table

            def main():
                return mean_wait(Table({"run_time": [2.0]}))
            """,
        )
        run = project.lint()
        assert rules_at(run, "src/repro/core/stats.py", 2) == {"REP202"}


# -- REP701: unused suppressions ---------------------------------------------


class TestUnusedSuppression:
    def test_stale_suppression_flagged(self, project):
        project.write(
            "src/repro/core/m.py",
            "X = 1  # reprolint: disable=REP101\n",
        )
        run = project.lint()
        assert rules_at(run, "src/repro/core/m.py", 1) == {"REP701"}
        [diag] = only(run, "REP701")
        assert "suppresses nothing" in diag.message

    def test_used_suppression_not_flagged(self, project):
        project.write(
            "src/repro/core/m.py",
            "import random  # reprolint: disable=REP101\n",
        )
        assert project.lint().all_diagnostics == []

    def test_multiple_codes_partially_used(self, project):
        project.write(
            "src/repro/core/m.py",
            "import random  # reprolint: disable=REP101,REP501\n",
        )
        run = project.lint()
        [diag] = only(run, "REP701")
        assert "REP501" in diag.message
        assert "REP101" not in diag.message

    def test_unknown_rule_in_suppression(self, project):
        project.write(
            "src/repro/core/m.py",
            "import random  # reprolint: disable=REP101,REP999\n",
        )
        run = project.lint()
        [diag] = only(run, "REP701")
        assert "unknown rule" in diag.message
        assert "REP999" in diag.message

    def test_malformed_missing_equals(self, project):
        project.write(
            "src/repro/core/m.py",
            "X = 1  # reprolint: disable REP101\n",
        )
        run = project.lint()
        [diag] = only(run, "REP701")
        assert "malformed" in diag.message

    def test_malformed_empty_code_list(self, project):
        project.write(
            "src/repro/core/m.py",
            "X = 1  # reprolint: disable=\n",
        )
        run = project.lint()
        [diag] = only(run, "REP701")
        assert "malformed" in diag.message

    def test_malformed_unknown_directive(self, project):
        project.write(
            "src/repro/core/m.py",
            "X = 1  # reprolint: enable=REP101\n",
        )
        run = project.lint()
        [diag] = only(run, "REP701")
        assert "unknown directive" in diag.message

    def test_marker_inside_string_is_not_a_suppression(self, project):
        project.write(
            "src/repro/core/m.py",
            'DOC = "# reprolint: disable=REP101"\n',
        )
        assert project.lint().all_diagnostics == []

    def test_disable_all_used_and_unused(self, project):
        project.write(
            "src/repro/core/used.py",
            "import random  # reprolint: disable=all\n",
        )
        project.write(
            "src/repro/core/unused.py",
            "X = 1  # reprolint: disable=all\n",
        )
        run = project.lint()
        assert rules_at(run, "src/repro/core/used.py", 1) == set()
        # Even when stale, ``disable=all`` covers REP701 itself, so the
        # unused-suppression report is swallowed by its own directive
        # (matching pylint, where disable=all disables useless-suppression).
        assert rules_at(run, "src/repro/core/unused.py", 1) == set()

    def test_rep701_suppresses_itself(self, project):
        project.write(
            "src/repro/core/m.py",
            "X = 1  # reprolint: disable=REP101,REP701\n",
        )
        # pylint-convention: disabling the unused-suppression rule on
        # the same line silences the report about the stale REP101.
        assert project.lint().all_diagnostics == []

    def test_tests_are_exempt(self, project):
        project.write(
            "tests/test_m.py",
            "X = 1  # reprolint: disable=REP101\n",
        )
        assert project.lint("tests").all_diagnostics == []


class TestSuppressionParsing:
    def test_well_formed_multi_code(self):
        specs = _parse_suppressions(
            "x = 1  # reprolint: disable=REP101, REP502\n"
        )
        assert specs == [
            SuppressionSpec(line=1, codes=("REP101", "REP502"))
        ]

    def test_trailing_prose_is_malformed(self):
        [spec] = _parse_suppressions(
            "x = 1  # reprolint: disable=REP101 because reasons\n"
        )
        assert spec.malformed is not None
        assert spec.codes == ()

    def test_non_directive_comments_ignored(self):
        assert _parse_suppressions("x = 1  # a plain comment\n") == []

    def test_marker_in_string_ignored(self):
        assert (
            _parse_suppressions('s = "# reprolint: disable=REP101"\n') == []
        )


# -- incremental cache --------------------------------------------------------


BASE = """\
def base_value():
    return 1
"""

MID = """\
from ..core.base import base_value

def mid_value():
    return base_value() + 1
"""

TOP = """\
from ..core.mid import mid_value

def top_value():
    return mid_value() + 1
"""

OTHER = """\
def unrelated():
    return 42
"""


class TestIncrementalCache:
    def _seed_tree(self, project):
        project.write("src/repro/core/base.py", BASE)
        project.write("src/repro/core/mid.py", MID)
        project.write("src/repro/synth/top.py", TOP)
        project.write("src/repro/traces/other.py", OTHER)

    def test_warm_run_analyzes_zero_files(self, project, tmp_path):
        self._seed_tree(project)
        cache_dir = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache_dir)
        warm = project.lint(cache_dir=cache_dir)
        assert cold.files_analyzed == cold.files_checked > 0
        assert warm.files_analyzed == 0
        assert warm.files_cached == cold.files_checked
        assert [d.to_dict() for d in warm.all_diagnostics] == [
            d.to_dict() for d in cold.all_diagnostics
        ]

    def test_edit_invalidates_file_and_dependents_only(self, project, tmp_path):
        self._seed_tree(project)
        cache_dir = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache_dir)
        project.write(
            "src/repro/core/base.py", BASE + "\n# edited\n"
        )
        run = project.lint(cache_dir=cache_dir)
        # base.py itself, plus mid.py and top.py whose import closures
        # contain it; other.py and the rest stay cached.
        assert run.files_analyzed == 3
        assert run.files_cached == cold.files_checked - 3

    def test_caller_edit_rekeys_callee_diagnostics(self, project, tmp_path):
        project.write(
            "src/repro/core/stats.py",
            """\
            def mean_wait(jobs):
                return jobs["wait_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import mean_wait
            from ..core.table import Table

            def main():
                return mean_wait(Table({"wait_time": [1.0]}))
            """,
        )
        cache_dir = tmp_path / "lint-cache"
        assert only(project.lint(cache_dir=cache_dir), "REP202") == []
        # Edit only the CALLER: the table it passes loses the column.
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import mean_wait
            from ..core.table import Table

            def main():
                return mean_wait(Table({"run_time": [1.0]}))
            """,
        )
        run = project.lint(cache_dir=cache_dir)
        # The callee's file is unchanged and not a dependent of the
        # caller in the import graph — only the flow fingerprint can
        # re-key it. The new diagnostic must appear.
        assert rules_at(run, "src/repro/core/stats.py", 2) == {"REP202"}

    def test_parse_error_cached(self, project, tmp_path):
        project.write("src/repro/core/broken.py", "def broken(:\n")
        cache_dir = tmp_path / "lint-cache"
        cold = project.lint(cache_dir=cache_dir)
        warm = project.lint(cache_dir=cache_dir)
        assert [d.rule_id for d in cold.all_diagnostics] == ["REP000"]
        assert [d.rule_id for d in warm.all_diagnostics] == ["REP000"]
        assert warm.files_analyzed == 0


# -- parallel analysis --------------------------------------------------------


class TestParallelAnalysis:
    def test_jobs_equivalent_to_serial(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import random

            def f():
                return random.random()
            """,
        )
        project.write(
            "src/repro/core/stats.py",
            """\
            def mean_wait(jobs):
                return jobs["wait_time"]
            """,
        )
        project.write(
            "src/repro/experiments/run.py",
            """\
            from ..core.stats import mean_wait
            from ..core.table import Table

            def main():
                return mean_wait(Table({"run_time": [1.0]}))
            """,
        )
        serial = project.lint(jobs=1)
        parallel = project.lint(jobs=2)
        assert [d.to_dict() for d in serial.all_diagnostics] == [
            d.to_dict() for d in parallel.all_diagnostics
        ]
        assert serial.files_checked == parallel.files_checked


# -- SARIF reporter -----------------------------------------------------------

#: Trimmed-down SARIF 2.1.0 schema: the structural subset repro-lint
#: emits, with the spec's cardinality and type constraints preserved.
SARIF_SCHEMA = {
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "version": {"enum": ["2.1.0"]},
        "$schema": {"type": "string", "format": "uri"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            }
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {
                                    "enum": [
                                        "none",
                                        "note",
                                        "warning",
                                        "error",
                                    ]
                                },
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                    "properties": {
                                        "text": {"type": "string"}
                                    },
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type": "string"
                                                            }
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                            "startColumn": {
                                                                "type": "integer",
                                                                "minimum": 1,
                                                            },
                                                        },
                                                    },
                                                },
                                            }
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


class TestSarifReporter:
    def _run_with_findings(self, project):
        project.write(
            "src/repro/core/m.py",
            """\
            import random

            def f():
                return random.random()
            """,
        )
        return project.lint()

    def test_sarif_validates_against_schema(self, project):
        jsonschema = pytest.importorskip("jsonschema")
        run = self._run_with_findings(project)
        log = json.loads(render_sarif(run))
        jsonschema.validate(log, SARIF_SCHEMA)

    def test_sarif_results_match_diagnostics(self, project):
        run = self._run_with_findings(project)
        log = json.loads(render_sarif(run))
        results = log["runs"][0]["results"]
        assert len(results) == len(run.all_diagnostics)
        for result, diag in zip(results, run.all_diagnostics):
            assert result["ruleId"] == diag.rule_id
            region = result["locations"][0]["physicalLocation"]["region"]
            assert region["startLine"] == diag.line
            assert region["startColumn"] == diag.col + 1  # SARIF is 1-based
        rule_ids = {
            rule["id"] for rule in log["runs"][0]["tool"]["driver"]["rules"]
        }
        assert {r["ruleId"] for r in results} <= rule_ids

    def test_sarif_counts_surfaced(self, project):
        run = self._run_with_findings(project)
        log = json.loads(render_sarif(run))
        props = log["runs"][0]["properties"]
        assert props["filesChecked"] == run.files_checked
        assert props["filesAnalyzed"] == run.files_analyzed


# -- graph unit coverage ------------------------------------------------------


class TestProjectGraph:
    def _graph(self, sources: dict[str, str]):
        summaries = {}
        for relpath, src in sources.items():
            module = (
                relpath[len("src/") :]
                .removesuffix(".py")
                .removesuffix("/__init__")
                .replace("/", ".")
            )
            summaries[relpath] = summarize_module(
                textwrap.dedent(src), module, relpath, "repro"
            )
        return build_project_graph(summaries, "repro")

    def test_import_closure_is_transitive(self):
        graph = self._graph(
            {
                "src/repro/core/base.py": "X = 1\n",
                "src/repro/core/mid.py": "from .base import X\n",
                "src/repro/synth/top.py": "from ..core.mid import X\n",
            }
        )
        assert graph.import_closure("repro.synth.top") == {
            "repro.core.mid",
            "repro.core.base",
        }
        assert graph.dependents("repro.core.base") == {
            "repro.core.mid",
            "repro.synth.top",
        }

    def test_resolve_function_through_reexport(self):
        graph = self._graph(
            {
                "src/repro/core/__init__.py": "from .stats import f\n",
                "src/repro/core/stats.py": "def f(jobs):\n    return jobs\n",
            }
        )
        fn = graph.resolve_function("repro.core.f")
        assert fn is not None
        assert fn.qualname == "repro.core.stats.f"

    def test_conditionally_defined_function_summarized_safely(self):
        graph = self._graph(
            {
                "src/repro/core/m.py": """\
                try:
                    import numpy as np

                    def make(seed):
                        return np.random.default_rng(seed)
                except ImportError:
                    make = None
                """,
            }
        )
        # The nested definition is walked in its own scope (no crash,
        # no top-level registration).
        assert "make" not in graph.modules["repro.core.m"].functions
