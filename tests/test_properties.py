"""Property-based tests (hypothesis) on core data structures/invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.ecdf import ecdf
from repro.core.fairness import hourly_counts, jain_fairness
from repro.core.masscount import mass_count
from repro.core.noise import autocorrelation, mean_filter
from repro.core.segments import constant_segments, discretize
from repro.core.table import Table, concat_tables

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(
    min_value=1e-6, max_value=1e6, allow_nan=False, allow_infinity=False
)


class TestECDFProperties:
    @given(arrays(np.float64, st.integers(1, 200), elements=finite_floats))
    def test_cdf_monotone_and_bounded(self, sample):
        cdf = ecdf(sample)
        assert np.all(np.diff(cdf.probabilities) >= 0)
        assert 0 < cdf.probabilities[0] <= 1
        assert cdf.probabilities[-1] == pytest.approx(1.0)

    @given(arrays(np.float64, st.integers(1, 200), elements=finite_floats))
    def test_cdf_at_max_is_one(self, sample):
        cdf = ecdf(sample)
        assert cdf(float(sample.max())) == pytest.approx(1.0)

    @given(
        arrays(np.float64, st.integers(1, 100), elements=finite_floats),
        st.floats(min_value=0, max_value=1),
    )
    def test_quantile_cdf_galois(self, sample, q):
        """cdf(quantile(q)) >= q for every attainable q."""
        cdf = ecdf(sample)
        value = cdf.quantile(q)
        assert cdf(value) >= q - 1e-12


class TestMassCountProperties:
    @given(arrays(np.float64, st.integers(1, 300), elements=positive_floats))
    def test_joint_ratio_halves(self, sample):
        mc = mass_count(sample)
        x, y = mc.joint_ratio
        assert x + y == pytest.approx(100.0)
        assert 0 <= x <= 100

    @given(arrays(np.float64, st.integers(2, 300), elements=positive_floats))
    def test_mass_lags_count(self, sample):
        mc = mass_count(sample)
        assert np.all(mc.mass_cdf <= mc.count_cdf + 1e-9)

    @given(
        arrays(np.float64, st.integers(1, 200), elements=positive_floats),
        st.floats(min_value=0.1, max_value=100),
    )
    def test_scale_invariance(self, sample, factor):
        """Scaling the sample rescales mm-distance but not joint ratio."""
        a = mass_count(sample)
        b = mass_count(sample * factor)
        assert a.joint_ratio[0] == pytest.approx(b.joint_ratio[0], abs=1e-6)
        assert b.mm_distance == pytest.approx(a.mm_distance * factor, rel=1e-9)


class TestFairnessProperties:
    @given(
        arrays(
            np.float64,
            st.integers(1, 100),
            elements=st.floats(min_value=0, max_value=1e6, allow_nan=False),
        )
    )
    def test_bounds(self, x):
        f = jain_fairness(x)
        assert 0 < f <= 1.0 + 1e-12
        if np.any(x > 0):
            assert f >= 1.0 / x.size - 1e-12

    @given(
        arrays(
            np.float64,
            st.integers(1, 500),
            elements=st.floats(min_value=0, max_value=86400 * 3 - 1e-6,
                               allow_nan=False),
        )
    )
    def test_hourly_counts_conserve_mass(self, times):
        counts = hourly_counts(times, horizon=3 * 86400.0)
        assert counts.sum() == times.size
        assert len(counts) == 72


class TestSegmentProperties:
    @given(
        st.integers(2, 300).flatmap(
            lambda n: st.tuples(
                st.just(n),
                arrays(
                    np.int64, n, elements=st.integers(0, 4)
                ),
            )
        )
    )
    def test_durations_cover_span(self, n_and_levels):
        n, levels = n_and_levels
        times = np.arange(n, dtype=np.float64) * 300.0
        seg = constant_segments(times, levels)
        assert seg.durations.sum() == pytest.approx(
            times[-1] - times[0] + 300.0
        )
        # Adjacent runs always differ in level.
        assert np.all(seg.levels[1:] != seg.levels[:-1])

    @given(
        arrays(
            np.float64,
            st.integers(1, 200),
            elements=st.floats(min_value=0, max_value=1, allow_nan=False),
        )
    )
    def test_discretize_round_trip_bounds(self, values):
        levels = discretize(values)
        edges = np.array([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
        assert np.all(levels >= 0)
        assert np.all(levels <= 4)
        lower = edges[levels]
        assert np.all(values >= lower - 1e-12)


class TestNoiseProperties:
    @given(
        arrays(np.float64, st.integers(2, 300), elements=finite_floats),
        st.integers(1, 20),
    )
    def test_mean_filter_preserves_mean_range(self, signal, window):
        smooth = mean_filter(signal, window)
        assert smooth.min() >= signal.min() - 1e-9
        assert smooth.max() <= signal.max() + 1e-9

    @given(arrays(np.float64, st.integers(3, 300), elements=finite_floats))
    def test_autocorrelation_bounded(self, signal):
        r = autocorrelation(signal)
        assert -1.0 - 1e-9 <= r <= 1.0 + 1e-9


class TestTableProperties:
    @given(
        arrays(np.float64, st.integers(0, 100), elements=finite_floats),
        st.integers(0, 10),
    )
    def test_select_then_concat_identity(self, column, split):
        t = Table({"x": column})
        k = min(split, len(t))
        left = t.select(np.arange(k))
        right = t.select(np.arange(k, len(t)))
        if len(t) == 0:
            return
        merged = concat_tables([left, right])
        assert merged == t

    @given(arrays(np.float64, st.integers(1, 100), elements=finite_floats))
    def test_sort_is_permutation(self, column):
        t = Table({"x": column})
        s = t.sort_by("x")
        np.testing.assert_allclose(
            np.sort(column), np.asarray(s["x"]), equal_nan=True
        )

    @given(
        arrays(np.int64, st.integers(1, 200), elements=st.integers(0, 5))
    )
    def test_group_indices_partition(self, keys):
        t = Table({"k": keys})
        groups = t.group_indices("k")
        all_idx = np.sort(np.concatenate(list(groups.values())))
        np.testing.assert_array_equal(all_idx, np.arange(len(t)))
        for key, idx in groups.items():
            assert np.all(keys[idx] == key)


class TestSimulatorProperties:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 10_000))
    def test_sim_accounting_invariants(self, seed):
        """Random small sims never violate resource accounting."""
        from repro.sim import ClusterSimulator, SimConfig
        from repro.synth import (
            GoogleConfig,
            generate_machines,
            generate_task_requests,
        )

        rng = np.random.default_rng(seed)
        machines = generate_machines(3, rng)
        requests = generate_task_requests(
            4 * 3600.0,
            seed=seed,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=60.0,
        )
        result = ClusterSimulator(machines, SimConfig(), seed=seed).run(
            requests, 4 * 3600.0
        )
        mu = result.machine_usage
        assert np.all(np.asarray(mu["cpu_usage"]) >= 0)
        assert np.all(np.asarray(mu["n_running"]) >= 0)
        mix = result.completion_mix()
        total = sum(
            mix[k] for k in ("finish", "fail", "kill", "evict", "lost")
        )
        assert total == pytest.approx(1.0) or total == 0.0
