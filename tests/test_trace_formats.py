"""Unit tests for GWA/SWF formats, CSV I/O and trace persistence."""

import gzip

import numpy as np
import pytest

from repro.synth.google_model import GoogleConfig, generate_google_trace
from repro.traces.gwa import MISSING, gwa_table, read_gwa, write_gwa
from repro.traces.io import (
    TraceParseError,
    TraceParseWarning,
    load_trace,
    read_csv,
    save_trace,
    write_csv,
)
from repro.traces.schema import GWA_JOB_SCHEMA, SWF_JOB_SCHEMA
from repro.traces.swf import read_swf, swf_table, write_swf
from repro.core.table import Table


def _gwa():
    return gwa_table(
        submit_time=np.array([0.0, 10.0, 20.0]),
        run_time=np.array([100.0, 200.0, 300.0]),
        num_procs=np.array([1, 2, 4]),
    )


class TestGwaTable:
    def test_defaults_filled(self):
        t = _gwa()
        assert set(t.column_names) == set(GWA_JOB_SCHEMA)
        assert np.all(t["wait_time"] == MISSING)
        np.testing.assert_array_equal(t["job_id"], [0, 1, 2])
        assert np.all(t["status"] == 1)

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            gwa_table(bogus=np.array([1.0]))

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            gwa_table()


class TestGwaRoundTrip:
    def test_plain(self, tmp_path):
        path = tmp_path / "trace.gwa"
        write_gwa(_gwa(), path)
        back = read_gwa(path)
        assert back == Table(
            {k: _gwa()[k] for k in back.column_names},
            schema=GWA_JOB_SCHEMA,
        )

    def test_gzip(self, tmp_path):
        path = tmp_path / "trace.gwa.gz"
        write_gwa(_gwa(), path)
        back = read_gwa(path)
        np.testing.assert_allclose(back["run_time"], [100.0, 200.0, 300.0])

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "t.gwa"
        write_gwa(_gwa(), path)
        content = path.read_text()
        assert content.startswith("#")

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "bad.gwa"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="fields"):
            read_gwa(path)

    def test_wrong_schema_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            write_gwa(Table({"a": [1.0]}), tmp_path / "x.gwa")


class TestSwfRoundTrip:
    def test_roundtrip(self, tmp_path):
        t = swf_table(
            submit_time=np.array([5.0, 15.0]),
            run_time=np.array([50.0, 60.0]),
            num_procs=np.array([8, 16]),
        )
        path = tmp_path / "trace.swf"
        write_swf(t, path, header="Computer: Test cluster")
        back = read_swf(path)
        assert set(back.column_names) == set(SWF_JOB_SCHEMA)
        np.testing.assert_allclose(back["run_time"], [50.0, 60.0])
        np.testing.assert_allclose(back["num_procs"], [8, 16])
        assert "Test cluster" in path.read_text()

    def test_encoding_locale_independent(self, tmp_path):
        # Headers may carry non-ASCII site names; reading must not
        # depend on the host locale (files are pinned to UTF-8).
        t = swf_table(submit_time=np.array([5.0]))
        for name in ("trace.swf", "trace.swf.gz"):
            path = tmp_path / name
            write_swf(t, path, header="Computer: Grille-5000 — Orsay")
            back = read_swf(path)
            np.testing.assert_allclose(back["submit_time"], [5.0])

    def test_swf_ids_one_based(self):
        t = swf_table(submit_time=np.array([0.0]))
        assert t["job_id"][0] == 1

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 2 3 4\n")
        with pytest.raises(ValueError, match="fields"):
            read_swf(path)

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            swf_table(nope=np.array([1.0]))


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        t = Table({"x": np.array([1.5, 2.5]), "y": np.array([1.0, 2.0])})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["x"], t["x"])

    def test_gzip_roundtrip(self, tmp_path):
        t = Table({"x": np.arange(100, dtype=float)})
        path = tmp_path / "t.csv.gz"
        write_csv(t, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["x"], t["x"])

    def test_empty_table_roundtrip(self, tmp_path):
        t = Table({"x": np.empty(0), "y": np.empty(0)})
        path = tmp_path / "e.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert len(back) == 0
        assert set(back.column_names) == {"x", "y"}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)


class TestParseRobustness:
    """Strict parsing pinpoints defects; lenient parsing survives them."""

    def _swf_with_defects(self, tmp_path):
        t = swf_table(
            submit_time=np.array([0.0, 10.0, 20.0]),
            run_time=np.array([5.0, 6.0, 7.0]),
        )
        path = tmp_path / "damaged.swf"
        write_swf(t, path)
        lines = path.read_text().splitlines()
        lines.insert(2, "1 2 3")  # too few fields (file line 3)
        lines.append("x " * 18)  # non-numeric fields
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_strict_swf_raises_with_file_and_line(self, tmp_path):
        path = self._swf_with_defects(tmp_path)
        with pytest.raises(TraceParseError, match="fields") as excinfo:
            read_swf(path)
        assert excinfo.value.path == str(path)
        assert excinfo.value.line == 3
        assert f"{path}:3" in str(excinfo.value)

    def test_lenient_swf_skips_and_warns(self, tmp_path):
        path = self._swf_with_defects(tmp_path)
        with pytest.warns(TraceParseWarning, match="skipped 2"):
            back = read_swf(path, strict=False)
        np.testing.assert_allclose(back["run_time"], [5.0, 6.0, 7.0])

    def test_gwa_strict_and_lenient(self, tmp_path):
        t = gwa_table(submit_time=np.array([1.0, 2.0]))
        path = tmp_path / "damaged.gwa"
        write_gwa(t, path)
        lines = path.read_text().splitlines()
        lines.insert(2, "not a record")
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceParseError, match="GWA"):
            read_gwa(path)
        with pytest.warns(TraceParseWarning):
            back = read_gwa(path, strict=False)
        assert back.num_rows == 2

    def test_garbage_bytes(self, tmp_path):
        path = tmp_path / "garbage.swf"
        line = (" ".join(["1"] * 18) + "\n").encode()
        path.write_bytes(b"; header\n" + b"\xff\xfe garbage\n" + line)
        with pytest.raises(TraceParseError, match="undecodable byte"):
            read_swf(path)
        with pytest.warns(TraceParseWarning):
            back = read_swf(path, strict=False)
        assert back.num_rows == 1  # replacement chars fail field parsing

    def test_truncated_gzip(self, tmp_path):
        path = tmp_path / "truncated.swf.gz"
        with gzip.open(path, "wt", encoding="utf-8") as fh:
            for _ in range(500):
                fh.write(" ".join(["1"] * 18) + "\n")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(TraceParseError, match="truncated or corrupt"):
            read_swf(path)
        with pytest.warns(TraceParseWarning, match="truncated or corrupt"):
            back = read_swf(path, strict=False)
        # Lenient mode keeps whatever decompressed before the cut.
        assert back.num_rows < 500

    def test_csv_strict_and_lenient(self, tmp_path):
        t = Table({"a": np.array([1.0, 2.0]), "b": np.array([3.0, 4.0])})
        path = tmp_path / "damaged.csv"
        write_csv(t, path)
        lines = path.read_text().splitlines()
        lines.insert(1, "1,2,3")  # wrong arity (file line 2)
        lines.append("x,y")  # non-numeric
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TraceParseError) as excinfo:
            read_csv(path)
        assert excinfo.value.line == 2
        with pytest.warns(TraceParseWarning, match="skipped 2"):
            back = read_csv(path, strict=False)
        np.testing.assert_allclose(back["a"], [1.0, 2.0])

    def test_csv_without_header_fails_even_lenient(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(TraceParseError):
            read_csv(path, strict=False)


class TestTracePersistence:
    def test_save_load(self, tmp_path):
        trace = generate_google_trace(
            horizon=3 * 3600.0,
            num_machines=5,
            seed=0,
            tasks_per_hour=60.0,
            config=GoogleConfig(busy_window=None),
        )
        save_trace(trace, tmp_path / "trace")
        back = load_trace(tmp_path / "trace")
        assert back.horizon == trace.horizon
        assert back.jobs == trace.jobs
        assert back.task_events == trace.task_events
        assert back.task_usage == trace.task_usage
        assert back.machines == trace.machines
