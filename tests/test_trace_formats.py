"""Unit tests for GWA/SWF formats, CSV I/O and trace persistence."""

import numpy as np
import pytest

from repro.synth.google_model import GoogleConfig, generate_google_trace
from repro.traces.gwa import MISSING, gwa_table, read_gwa, write_gwa
from repro.traces.io import load_trace, read_csv, save_trace, write_csv
from repro.traces.schema import GWA_JOB_SCHEMA, SWF_JOB_SCHEMA
from repro.traces.swf import read_swf, swf_table, write_swf
from repro.traces.table import Table


def _gwa():
    return gwa_table(
        submit_time=np.array([0.0, 10.0, 20.0]),
        run_time=np.array([100.0, 200.0, 300.0]),
        num_procs=np.array([1, 2, 4]),
    )


class TestGwaTable:
    def test_defaults_filled(self):
        t = _gwa()
        assert set(t.column_names) == set(GWA_JOB_SCHEMA)
        assert np.all(t["wait_time"] == MISSING)
        np.testing.assert_array_equal(t["job_id"], [0, 1, 2])
        assert np.all(t["status"] == 1)

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            gwa_table(bogus=np.array([1.0]))

    def test_no_columns_rejected(self):
        with pytest.raises(ValueError):
            gwa_table()


class TestGwaRoundTrip:
    def test_plain(self, tmp_path):
        path = tmp_path / "trace.gwa"
        write_gwa(_gwa(), path)
        back = read_gwa(path)
        assert back == Table(
            {k: _gwa()[k] for k in back.column_names},
            schema=GWA_JOB_SCHEMA,
        )

    def test_gzip(self, tmp_path):
        path = tmp_path / "trace.gwa.gz"
        write_gwa(_gwa(), path)
        back = read_gwa(path)
        np.testing.assert_allclose(back["run_time"], [100.0, 200.0, 300.0])

    def test_comments_skipped(self, tmp_path):
        path = tmp_path / "t.gwa"
        write_gwa(_gwa(), path)
        content = path.read_text()
        assert content.startswith("#")

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "bad.gwa"
        path.write_text("1 2 3\n")
        with pytest.raises(ValueError, match="fields"):
            read_gwa(path)

    def test_wrong_schema_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="schema"):
            write_gwa(Table({"a": [1.0]}), tmp_path / "x.gwa")


class TestSwfRoundTrip:
    def test_roundtrip(self, tmp_path):
        t = swf_table(
            submit_time=np.array([5.0, 15.0]),
            run_time=np.array([50.0, 60.0]),
            num_procs=np.array([8, 16]),
        )
        path = tmp_path / "trace.swf"
        write_swf(t, path, header="Computer: Test cluster")
        back = read_swf(path)
        assert set(back.column_names) == set(SWF_JOB_SCHEMA)
        np.testing.assert_allclose(back["run_time"], [50.0, 60.0])
        np.testing.assert_allclose(back["num_procs"], [8, 16])
        assert "Test cluster" in path.read_text()

    def test_encoding_locale_independent(self, tmp_path):
        # Headers may carry non-ASCII site names; reading must not
        # depend on the host locale (files are pinned to UTF-8).
        t = swf_table(submit_time=np.array([5.0]))
        for name in ("trace.swf", "trace.swf.gz"):
            path = tmp_path / name
            write_swf(t, path, header="Computer: Grille-5000 — Orsay")
            back = read_swf(path)
            np.testing.assert_allclose(back["submit_time"], [5.0])

    def test_swf_ids_one_based(self):
        t = swf_table(submit_time=np.array([0.0]))
        assert t["job_id"][0] == 1

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "bad.swf"
        path.write_text("1 2 3 4\n")
        with pytest.raises(ValueError, match="fields"):
            read_swf(path)

    def test_unknown_column_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            swf_table(nope=np.array([1.0]))


class TestCsvRoundTrip:
    def test_roundtrip(self, tmp_path):
        t = Table({"x": np.array([1.5, 2.5]), "y": np.array([1.0, 2.0])})
        path = tmp_path / "t.csv"
        write_csv(t, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["x"], t["x"])

    def test_gzip_roundtrip(self, tmp_path):
        t = Table({"x": np.arange(100, dtype=float)})
        path = tmp_path / "t.csv.gz"
        write_csv(t, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["x"], t["x"])

    def test_empty_table_roundtrip(self, tmp_path):
        t = Table({"x": np.empty(0), "y": np.empty(0)})
        path = tmp_path / "e.csv"
        write_csv(t, path)
        back = read_csv(path)
        assert len(back) == 0
        assert set(back.column_names) == {"x", "y"}

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "none.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_csv(path)


class TestTracePersistence:
    def test_save_load(self, tmp_path):
        trace = generate_google_trace(
            horizon=3 * 3600.0,
            num_machines=5,
            seed=0,
            tasks_per_hour=60.0,
            config=GoogleConfig(busy_window=None),
        )
        save_trace(trace, tmp_path / "trace")
        back = load_trace(tmp_path / "trace")
        assert back.horizon == trace.horizon
        assert back.jobs == trace.jobs
        assert back.task_events == trace.task_events
        assert back.task_usage == trace.task_usage
        assert back.machines == trace.machines
