"""Integration tests: every experiment runs and matches the paper's shape.

These are the reproduction's acceptance tests — each experiment's
headline comparative claim (who wins, which direction) must hold at the
small test scale. Magnitudes are checked loosely where the small scale
supports it; exact magnitudes are the benchmarks' job at paper scale.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, run_all, run_experiment
from repro.experiments.runner import main as runner_main


@pytest.fixture(scope="module")
def results():
    return run_all(scale="small", seed=0)


class TestRegistry:
    def test_all_experiments_registered(self):
        assert len(EXPERIMENTS) == 23
        assert "scorecard" in EXPERIMENTS
        for fig in (2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13):
            assert f"fig{fig}" in EXPERIMENTS
        for other in ("tab1", "tab2", "tab3", "txt1", "txt2"):
            assert other in EXPERIMENTS
        for ext in ("ext1", "ext2", "ext3", "ext4", "ext5"):
            assert ext in EXPERIMENTS

    def test_unknown_id_rejected(self):
        with pytest.raises(KeyError, match="available"):
            run_experiment("fig999")

    def test_render_has_tables(self, results):
        for result in results.values():
            text = result.render()
            assert result.experiment_id in text
            assert len(result.tables) >= 1


class TestWorkloadClaims:
    def test_fig2_low_priorities_dominate(self, results):
        m = results["fig2"].metrics
        assert m["job_frac_low(1-4)"] > 0.6
        assert m["total_tasks"] > m["total_jobs"]

    def test_fig3_google_shorter(self, results):
        m = results["fig3"].metrics
        assert m["google_frac_under_1000s"] > 0.7
        assert m["grids_mostly_over_2000s"]

    def test_fig4_pareto_ordering(self, results):
        m = results["fig4"].metrics
        assert m["google_more_pareto"]
        assert m["google_joint_small_side"] == pytest.approx(6, abs=3)
        assert m["auvergrid_joint_small_side"] == pytest.approx(24, abs=5)
        assert m["google_mmdist_days"] > m["auvergrid_mmdist_days"]

    def test_fig5_google_fastest_submission(self, results):
        assert results["fig5"].metrics["google_shortest_intervals"]

    def test_tab1_rates_and_fairness(self, results):
        m = results["tab1"].metrics
        assert m["google_rate_highest"]
        assert m["google_fairness_highest"]
        assert m["google_avg_per_hour"] == pytest.approx(552, rel=0.1)
        assert m["google_fairness"] == pytest.approx(0.94, abs=0.05)

    def test_fig6_google_lower_demand(self, results):
        m = results["fig6"].metrics
        assert m["google_lower_cpu"]
        assert m["google_frac_under_1_cpu"] > 0.8
        assert m["google_mem_median_mb_32gb"] < m["min_grid_mem_median_mb"]

    def test_txt2_task_length_stats(self, results):
        m = results["txt2"].metrics
        assert m["google_frac_under_10min"] == pytest.approx(0.55, abs=0.07)
        assert m["google_frac_under_1h"] == pytest.approx(0.90, abs=0.06)
        assert m["cloud_tasks_mostly_shorter"]
        assert m["cloud_max_longer"]


class TestHostLoadClaims:
    def test_fig7_memory_ordering(self, results):
        m = results["fig7"].metrics
        assert m["assigned_exceeds_consumed"]

    def test_fig8_queue_shape(self, results):
        m = results["fig8"].metrics
        assert m["steady_running_mean"] > 5
        assert m["finished_grows_linearly"]
        assert m["final_abnormal_fraction"] == pytest.approx(0.6, abs=0.1)

    def test_fig9_skewed_durations(self, results):
        m = results["fig9"].metrics
        assert m["intervals_with_data"] >= 2
        assert m["skewed_everywhere"]

    def test_fig10_cpu_idle_mem_busy(self, results):
        m = results["fig10"].metrics
        assert m["high_priority_cpu_mostly_idle"]
        assert m["cpu_share_low_band"] > 0.4

    def test_tab23_cpu_faster_than_mem(self):
        from repro.experiments.datasets import simulation_dataset
        from repro.experiments.tab23_level_durations import run as run_tab23

        combined = run_tab23(scale="small")
        assert combined.metrics["cpu_changes_faster_than_mem"]

    def test_fig11_high_band_lighter(self, results):
        m = results["fig11"].metrics
        assert m["high_band_uses_less"]
        assert m["near_uniform"]

    def test_fig12_mem_above_cpu(self, results):
        m = results["fig12"].metrics
        assert m["mem_above_cpu"]
        assert m["mean_mem_usage_pct"] > m["mean_mem_usage_high_pct"]

    def test_fig13_cloud_noisier(self, results):
        m = results["fig13"].metrics
        assert m["google_mem_above_cpu"]
        assert m["grid_cpu_above_mem"]
        assert m["google_noisier"]
        assert m["noise_ratio_google_over_auvergrid"] > 3

    def test_txt1_abnormal_mix(self, results):
        m = results["txt1"].metrics
        assert m["abnormal_fraction"] == pytest.approx(0.592, abs=0.08)
        assert m["fail_dominates_abnormal"]
        assert m["fail_share_of_abnormal"] == pytest.approx(0.5, abs=0.1)
        assert m["kill_share_of_abnormal"] == pytest.approx(0.307, abs=0.08)


class TestExtensionClaims:
    def test_ext1_grids_more_diurnal(self, results):
        assert results["ext1"].metrics["grids_all_more_diurnal"]

    def test_ext2_cloud_harder_to_predict(self, results):
        m = results["ext2"].metrics
        assert m["cloud_harder_to_predict"]
        assert m["best_cloud_rmse"] > m["best_grid_rmse"]

    def test_ext3_consolidation_worthwhile(self, results):
        m = results["ext3"].metrics
        assert m["consolidation_worthwhile"]
        assert 0 < m["mean_shutoff_fraction"] < 1

    def test_ext4_fitting_contrast(self, results):
        m = results["ext4"].metrics
        assert m["auvergrid_single_family_adequate"]
        assert m["google_needs_mixture"]

    def test_ext5_modes_distinct(self, results):
        m = results["ext5"].metrics
        assert m["num_modes"] >= 2
        assert m["distinct_modes_found"]


class TestScorecard:
    def test_all_claims_pass_at_small_scale(self):
        from repro.experiments.scorecard import run as run_scorecard

        result = run_scorecard(scale="small", seed=0)
        failing = [
            row for row in result.tables[0].rows if row[3] == "FAIL"
        ]
        assert result.metrics["all_pass"], f"failing claims: {failing}"
        assert result.metrics["claims_total"] >= 12


class TestRunnerCli:
    def test_list(self, capsys):
        assert runner_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig4" in out

    def test_run_one(self, capsys):
        # --no-cache keeps the test hermetic (no writes to ~/.cache).
        assert runner_main(["fig4", "--scale", "small", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "joint" in out.lower()

    def test_unknown_id(self, capsys):
        assert runner_main(["nope"]) == 2
        assert "unknown" in capsys.readouterr().err


class TestDatasets:
    def test_unknown_scale_rejected(self):
        from repro.experiments.datasets import simulation_dataset, workload_dataset

        with pytest.raises(KeyError, match="available"):
            workload_dataset("huge")
        with pytest.raises(KeyError, match="available"):
            simulation_dataset("huge")

    def test_grid_system_names_cover_presets(self):
        from repro.experiments.datasets import grid_system_names
        from repro.synth.presets import GRID_PRESETS

        names = grid_system_names()
        assert set(names) == set(GRID_PRESETS)

    def test_memoization_returns_same_object(self):
        from repro.experiments.datasets import workload_dataset

        assert workload_dataset("small", 0) is workload_dataset("small", 0)


class TestShardedBackend:
    """--backend sharded must render byte-identically to in-memory."""

    SHARDED_IDS = ("fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig13", "tab1")

    @pytest.fixture()
    def sharded_backend(self):
        from repro.experiments.datasets import BackendSpec, configure_backend

        yield lambda **kw: configure_backend(
            BackendSpec(name="sharded", **kw)
        )
        configure_backend(None)

    def test_rendered_output_identical(self, results, sharded_backend):
        sharded_backend(shard_rows=4096)
        for exp_id in self.SHARDED_IDS:
            rendered = run_experiment(exp_id, scale="small", seed=0).render()
            assert rendered == results[exp_id].render(), exp_id

    def test_spawn_pool_identical(self, results, sharded_backend):
        sharded_backend(shard_rows=4096, jobs=2)
        rendered = run_experiment("fig7", scale="small", seed=0).render()
        assert rendered == results["fig7"].render()

    def test_shard_size_invariant(self, results, sharded_backend):
        for shard_rows in (1000, 30_000):
            sharded_backend(shard_rows=shard_rows)
            rendered = run_experiment("fig5", scale="small", seed=0).render()
            assert rendered == results["fig5"].render(), shard_rows

    def test_runner_cli_backend_flag(self, capsys):
        assert (
            runner_main(
                [
                    "fig4",
                    "--scale",
                    "small",
                    "--no-cache",
                    "--backend",
                    "sharded",
                    "--shard-rows",
                    "5000",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "Fig. 4" in out
        from repro.experiments.datasets import configure_backend

        configure_backend(None)


class TestOutOfCoreChaos:
    """Injected worker kill, shard corruption, and block hang must heal.

    The acceptance property of the self-healing layer: under a fault
    plan exercising every block fault kind, the sharded run's rendered
    output is byte-identical to the clean in-memory run and the
    recovery counters record what happened.
    """

    def test_fig7_chaos_identical_and_counted(self, results, monkeypatch):
        import json

        from repro.experiments.datasets import (
            BackendSpec,
            configure_backend,
            dataset_stats,
            reset_dataset_stats,
        )
        from repro.experiments.faults import PLAN_ENV

        plan = [
            # Attempt 1: the worker dies mid-block (respawn + retry).
            {"experiment_id": "*", "kind": "kill-worker", "block": 0},
            # Attempt 2: a shard is corrupted on disk (quarantine + heal).
            # No block timeout: spawn startup dwarfs any short timeout at
            # this scale and would degrade blocks to inline before the
            # faults fire (the timeout path is covered in test_mapreduce).
            {
                "experiment_id": "*",
                "kind": "corrupt-shard",
                "block": 0,
                "attempt": 2,
                "shard": 0,
            },
        ]
        monkeypatch.setenv(PLAN_ENV, json.dumps(plan))
        configure_backend(
            BackendSpec(
                name="sharded",
                shard_rows=1024,
                jobs=2,
                block_retries=3,
            )
        )
        reset_dataset_stats()
        try:
            rendered = run_experiment("fig7", scale="small", seed=0).render()
            stats = dataset_stats()
        finally:
            configure_backend(None)
            reset_dataset_stats()
        assert rendered == results["fig7"].render()
        assert stats["mapreduce_crashes"] >= 1
        assert stats["mapreduce_respawns"] >= 1
        assert stats["mapreduce_retries"] >= 1
        assert stats["shards_quarantined"] >= 1
        assert stats["shards_rederived"] >= 1
