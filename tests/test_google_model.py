"""Unit and calibration tests for the Google workload model."""

import numpy as np
import pytest

from repro.core.fairness import submission_rate_stats
from repro.core.masscount import mass_count
from repro.core.summary import fraction_below
from repro.synth.google_model import (
    FATE_CODES,
    GoogleConfig,
    concat_task_requests,
    generate_google_jobs,
    generate_google_trace,
    generate_task_requests,
    generate_task_requests_chunked,
    iter_task_requests,
)
from repro.synth.presets import DAY, HOUR
from repro.traces.schema import JOB_TABLE_SCHEMA, TaskEvent
from repro.traces.validate import validate_trace

HORIZON = 2 * DAY


class TestGoogleConfig:
    def test_defaults_valid(self):
        GoogleConfig()

    def test_bad_fate_probs(self):
        with pytest.raises(ValueError, match="sum to 1"):
            GoogleConfig(fate_probs={"finish": 0.5, "fail": 0.1, "kill": 0.1, "evict": 0.1, "lost": 0.1})

    def test_missing_fate_key(self):
        with pytest.raises(ValueError, match="keys"):
            GoogleConfig(fate_probs={"finish": 1.0})

    def test_bad_priority_weights(self):
        with pytest.raises(ValueError, match="12"):
            GoogleConfig(priority_weights=(1.0, 2.0))

    def test_bad_rate(self):
        with pytest.raises(ValueError):
            GoogleConfig(jobs_per_hour=-5)


class TestGenerateGoogleJobs:
    def test_schema(self):
        jobs = generate_google_jobs(HORIZON, seed=0)
        assert set(jobs.column_names) == set(JOB_TABLE_SCHEMA)

    def test_deterministic(self):
        a = generate_google_jobs(HORIZON, seed=3)
        b = generate_google_jobs(HORIZON, seed=3)
        assert a == b

    def test_rate_near_552(self):
        config = GoogleConfig(busy_window=None)
        jobs = generate_google_jobs(10 * DAY, seed=1, config=config)
        stats = submission_rate_stats(
            np.asarray(jobs["submit_time"]), 10 * DAY
        )
        assert stats.avg_per_hour == pytest.approx(552, rel=0.05)

    def test_fairness_near_094(self):
        config = GoogleConfig(busy_window=None)
        jobs = generate_google_jobs(20 * DAY, seed=2, config=config)
        stats = submission_rate_stats(
            np.asarray(jobs["submit_time"]), 20 * DAY
        )
        assert stats.fairness == pytest.approx(0.94, abs=0.04)

    def test_job_lengths_mostly_short(self):
        jobs = generate_google_jobs(HORIZON, seed=3)
        lengths = np.asarray(jobs["end_time"] - jobs["submit_time"])
        assert 0.7 < fraction_below(lengths, 1000.0) < 0.9

    def test_priorities_in_range(self):
        jobs = generate_google_jobs(HORIZON, seed=4)
        assert jobs["priority"].min() >= 1
        assert jobs["priority"].max() <= 12

    def test_low_band_dominates(self):
        jobs = generate_google_jobs(HORIZON, seed=5)
        low = np.count_nonzero(jobs["priority"] <= 4)
        assert low / len(jobs) > 0.7

    def test_horizon_too_short(self):
        with pytest.raises(ValueError):
            generate_google_jobs(0.001, seed=0)


class TestGenerateTaskRequests:
    def test_direct_rate_mode(self):
        req = generate_task_requests(
            HORIZON, seed=0, tasks_per_hour=100.0,
            config=GoogleConfig(busy_window=None),
        )
        assert len(req) == pytest.approx(100 * 48, rel=0.1)
        assert np.all(np.diff(req.submit_time) >= 0)

    def test_fanout_mode_shares_priority_within_job(self):
        req = generate_task_requests(
            6 * HOUR, seed=1, config=GoogleConfig(busy_window=None)
        )
        job_ids = req.job_id
        priorities = req.priority
        for jid in np.unique(job_ids)[:50]:
            assert len(np.unique(priorities[job_ids == jid])) == 1

    def test_task_lengths_calibration(self):
        """Sec. VI: ~55% < 10 min, ~90% < 1 h, heavy service tail."""
        req = generate_task_requests(
            HORIZON, seed=2, tasks_per_hour=4000.0,
            config=GoogleConfig(busy_window=None),
        )
        d = req.duration
        assert fraction_below(d, 600) == pytest.approx(0.55, abs=0.06)
        assert fraction_below(d, 3600) == pytest.approx(0.90, abs=0.05)
        assert d.max() > 5 * DAY

    def test_joint_ratio_near_6_94(self):
        req = generate_task_requests(
            HORIZON, seed=3, tasks_per_hour=4000.0,
            config=GoogleConfig(busy_window=None),
        )
        mc = mass_count(req.duration)
        assert mc.joint_ratio[0] == pytest.approx(6.0, abs=2.5)

    def test_fates_from_config(self):
        req = generate_task_requests(
            HORIZON, seed=4, tasks_per_hour=1000.0,
            config=GoogleConfig(busy_window=None),
        )
        valid = set(FATE_CODES.values())
        assert set(np.unique(req.fate)) <= valid
        finish_frac = np.count_nonzero(
            req.fate == int(TaskEvent.FINISH)
        ) / len(req)
        assert finish_frac == pytest.approx(0.408, abs=0.05)

    def test_requests_positive(self):
        req = generate_task_requests(
            6 * HOUR, seed=5, tasks_per_hour=500.0,
            config=GoogleConfig(busy_window=None),
        )
        assert np.all(req.cpu_request > 0)
        assert np.all(req.mem_request > 0)
        assert np.all(req.duration > 0)

    def test_sorted_by_time_helper(self):
        req = generate_task_requests(
            3 * HOUR, seed=6, tasks_per_hour=200.0,
            config=GoogleConfig(busy_window=None),
        )
        shuffled_order = np.random.default_rng(0).permutation(len(req))
        from repro.synth.google_model import TaskRequests

        shuffled = TaskRequests(
            **{
                name: getattr(req, name)[shuffled_order]
                for name in req.__dataclass_fields__
            }
        )
        resorted = shuffled.sorted_by_time()
        np.testing.assert_allclose(resorted.submit_time, req.submit_time)

    def test_length_mismatch_rejected(self):
        from repro.synth.google_model import TaskRequests

        with pytest.raises(ValueError, match="length"):
            TaskRequests(
                submit_time=np.zeros(2),
                job_id=np.zeros(2, dtype=np.int64),
                task_index=np.zeros(2, dtype=np.int32),
                priority=np.ones(2, dtype=np.int16),
                cpu_request=np.ones(2),
                mem_request=np.ones(2),
                duration=np.ones(2),
                cpu_utilization=np.ones(2),
                mem_utilization=np.ones(2),
                page_cache=np.ones(1),  # wrong length
                fate=np.full(2, 4, dtype=np.int8),
            )


class TestChunkedGeneration:
    """Chunked columnar generation: chunk-size-invariant, bounded memory."""

    KW = dict(tasks_per_hour=300.0, config=GoogleConfig(busy_window=None))

    def _fields(self, req):
        return {
            name: getattr(req, name)
            for name in type(req).__dataclass_fields__
        }

    @pytest.mark.parametrize("chunk_tasks", [37, 500, 10**9])
    def test_chunking_is_bitwise_invariant(self, chunk_tasks):
        # Any chunk size concatenates to the identical trace — the
        # property that lets paper-scale runs stream 25M tasks without
        # materializing more than one chunk of every column.
        whole = generate_task_requests_chunked(12 * HOUR, seed=5, **self.KW)
        chunks = list(
            iter_task_requests(
                12 * HOUR, seed=5, chunk_tasks=chunk_tasks, **self.KW
            )
        )
        assert all(
            len(c) == chunk_tasks for c in chunks[:-1]
        )  # only the tail may be short
        rebuilt = concat_task_requests(chunks)
        assert len(rebuilt) == len(whole)
        for name, column in self._fields(whole).items():
            np.testing.assert_array_equal(
                getattr(rebuilt, name), column, err_msg=name
            )
            assert getattr(rebuilt, name).dtype == column.dtype

    def test_deterministic_in_seed(self):
        a = generate_task_requests_chunked(6 * HOUR, seed=8, **self.KW)
        b = generate_task_requests_chunked(6 * HOUR, seed=8, **self.KW)
        c = generate_task_requests_chunked(6 * HOUR, seed=9, **self.KW)
        np.testing.assert_array_equal(a.duration, b.duration)
        assert not np.array_equal(a.duration, c.duration)

    def test_stream_is_time_sorted_with_unique_job_ids(self):
        chunks = list(
            iter_task_requests(8 * HOUR, seed=6, chunk_tasks=100, **self.KW)
        )
        req = concat_task_requests(chunks)
        assert np.all(np.diff(req.submit_time) >= 0)
        assert len(np.unique(req.job_id)) == len(req)
        np.testing.assert_array_equal(req.job_id, np.arange(len(req)))

    def test_generator_seed_rejected(self):
        with pytest.raises(TypeError, match="seed"):
            next(
                iter_task_requests(
                    HOUR, seed=np.random.default_rng(0), **self.KW
                )
            )

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ValueError, match="chunk_tasks"):
            next(iter_task_requests(HOUR, seed=0, chunk_tasks=0, **self.KW))

    def test_empty_concat_rejected(self):
        with pytest.raises(ValueError, match="at least one chunk"):
            concat_task_requests([])


class TestGenerateGoogleTrace:
    def test_valid_trace(self):
        trace = generate_google_trace(
            horizon=6 * HOUR,
            num_machines=10,
            seed=0,
            tasks_per_hour=120.0,
            config=GoogleConfig(busy_window=None),
        )
        validate_trace(trace)
        assert trace.num_machines == 10
        assert trace.num_jobs > 0
        assert len(trace.task_usage) > 0

    def test_usage_windows_within_horizon(self):
        trace = generate_google_trace(
            horizon=6 * HOUR,
            num_machines=5,
            seed=1,
            tasks_per_hour=60.0,
            config=GoogleConfig(busy_window=None),
        )
        assert trace.task_usage["end_time"].max() <= 6 * HOUR + 1e-6

    def test_completion_mix_tracks_config(self):
        from repro.traces.google import completion_mix

        trace = generate_google_trace(
            horizon=12 * HOUR,
            num_machines=10,
            seed=2,
            tasks_per_hour=400.0,
            config=GoogleConfig(busy_window=None),
        )
        mix = completion_mix(trace)
        assert mix["abnormal"] == pytest.approx(0.592, abs=0.07)
