"""Tests for the repro-bench harness (snapshots, regression policy, CLI)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments.bench import (
    _sticky_series,
    _synthetic_usage,
    compare_snapshots,
    existing_snapshots,
    main,
    next_snapshot_path,
)


def _snap(*entries):
    return {"version": 1, "seed": 0, "scales": ["small"], "entries": list(entries)}


def _e(name, scale="small", wall=1.0, speedup=None):
    return {"name": name, "scale": scale, "wall_s": wall, "speedup": speedup}


class TestRegressionPolicy:
    def test_speedup_drop_flagged(self):
        base = _snap(_e("series_extraction", speedup=40.0))
        cur = _snap(_e("series_extraction", speedup=3.0))
        (msg,) = compare_snapshots(base, cur)
        assert "series_extraction" in msg and "40.0x -> 3.0x" in msg

    def test_grace_floor_tolerates_fast_enough(self):
        # 40x -> 6x is below 80% retention but above the 5x floor:
        # still a real optimization, so not a regression.
        base = _snap(_e("run_length_segmentation", speedup=40.0))
        cur = _snap(_e("run_length_segmentation", speedup=6.0))
        assert compare_snapshots(base, cur) == []

    def test_near_unity_baselines_not_gated(self):
        # The batched event drain hovers near 1x; its ratio is noise,
        # not a guarantee to protect.
        base = _snap(_e("event_drain", speedup=1.04))
        cur = _snap(_e("event_drain", speedup=0.7))
        assert compare_snapshots(base, cur) == []

    def test_wall_check_opt_in(self):
        base = _snap(_e("hostload_pipeline", wall=1.0))
        cur = _snap(_e("hostload_pipeline", wall=1.5))
        assert compare_snapshots(base, cur) == []
        (msg,) = compare_snapshots(base, cur, check_wall=True)
        assert "wall" in msg

    def test_new_and_missing_entries_ignored(self):
        base = _snap(_e("series_extraction", speedup=40.0))
        cur = _snap(_e("brand_new_kernel", speedup=1.0))
        assert compare_snapshots(base, cur) == []


class TestSnapshots:
    def test_numbering_starts_at_3_and_increments(self, tmp_path):
        assert next_snapshot_path(tmp_path).name == "BENCH_3.json"
        (tmp_path / "BENCH_3.json").write_text("{}")
        (tmp_path / "BENCH_10.json").write_text("{}")
        (tmp_path / "BENCH_other.txt").write_text("")
        assert [p.name for p in existing_snapshots(tmp_path)] == [
            "BENCH_3.json",
            "BENCH_10.json",
        ]
        assert next_snapshot_path(tmp_path).name == "BENCH_11.json"


class TestSyntheticInputs:
    def test_sticky_series_is_sticky_and_deterministic(self):
        a = _sticky_series(np.random.default_rng(3), 4, 200, 0.5)
        b = _sticky_series(np.random.default_rng(3), 4, 200, 0.5)
        np.testing.assert_array_equal(a, b)
        grid = a.reshape(200, 4).T  # machine-major
        repeats = np.mean(grid[:, 1:] == grid[:, :-1])
        assert 0.5 < repeats < 0.9  # held values, not white noise
        assert a.min() >= 0.0 and a.max() <= 0.5

    def test_synthetic_usage_shape(self):
        usage, machines = _synthetic_usage("small", seed=0)
        assert usage.num_rows == machines.num_rows * (
            usage.num_rows // machines.num_rows
        )
        assert set(usage.column_names) >= {"time", "machine_id", "cpu_usage"}


class TestCli:
    def test_small_scale_end_to_end(self, tmp_path, capsys):
        out = tmp_path / "snaps"
        code = main(
            [
                "--scale", "small",
                "--skip-experiments",
                "--out", str(out),
                "--check",
            ]
        )
        assert code == 0
        snap_path = out / "BENCH_3.json"
        assert snap_path.exists()
        snapshot = json.loads(snap_path.read_text())
        names = {e["name"] for e in snapshot["entries"]}
        assert {
            "series_extraction",
            "run_length_segmentation",
            "mass_count_accumulation",
            "event_drain",
            "sim_drain",
            "chunked_generation",
            "hostload_pipeline",
        } <= names
        for entry in snapshot["entries"]:
            assert entry["wall_s"] >= 0
            assert entry["peak_rss_kb"] > 0
        # A second run diffs against the first and numbers itself 4.
        assert main(["--scale", "small", "--skip-experiments", "--out", str(out), "--check"]) == 0
        assert (out / "BENCH_4.json").exists()

    def test_only_filter_restricts_families(self, tmp_path):
        out = tmp_path / "snaps"
        code = main(
            [
                "--scale", "small",
                "--only", "sim_drain",
                "--out", str(out),
            ]
        )
        assert code == 0
        snapshot = json.loads((out / "BENCH_3.json").read_text())
        names = {e["name"] for e in snapshot["entries"]}
        assert names == {"sim_drain"}
        (entry,) = snapshot["entries"]
        assert entry["speedup"] is not None  # scalar golden ran too

    def test_unknown_scale_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["--scale", "galactic", "--out", str(tmp_path), "--no-write"])
