"""Unit tests for the consolidation and per-user applications."""

import numpy as np
import pytest

from repro.apps.consolidation import (
    ConsolidationReport,
    consolidation_potential,
    pack_demands,
)
from repro.apps.users import jobs_per_user, top_user_share, user_summary
from repro.core.table import Table


class TestPackDemands:
    def test_everything_fits_one_machine(self):
        used = pack_demands(
            cpu_demand=np.array([0.1, 0.2]),
            mem_demand=np.array([0.1, 0.1]),
            cpu_capacity=np.array([1.0, 1.0]),
            mem_capacity=np.array([1.0, 1.0]),
            headroom=0.0,
        )
        assert used == 1

    def test_split_across_machines(self):
        used = pack_demands(
            cpu_demand=np.array([0.6, 0.6]),
            mem_demand=np.array([0.1, 0.1]),
            cpu_capacity=np.array([1.0, 1.0]),
            mem_capacity=np.array([1.0, 1.0]),
            headroom=0.0,
        )
        assert used == 2

    def test_headroom_forces_more_machines(self):
        kwargs = dict(
            cpu_demand=np.array([0.5, 0.45]),
            mem_demand=np.array([0.1, 0.1]),
            cpu_capacity=np.array([1.0, 1.0]),
            mem_capacity=np.array([1.0, 1.0]),
        )
        assert pack_demands(**kwargs, headroom=0.0) == 1
        assert pack_demands(**kwargs, headroom=0.2) == 2

    def test_zero_demand_zero_machines(self):
        used = pack_demands(
            cpu_demand=np.zeros(3),
            mem_demand=np.zeros(3),
            cpu_capacity=np.ones(3),
            mem_capacity=np.ones(3),
        )
        assert used == 0

    def test_memory_binds_too(self):
        used = pack_demands(
            cpu_demand=np.array([0.1, 0.1]),
            mem_demand=np.array([0.6, 0.6]),
            cpu_capacity=np.array([1.0, 1.0]),
            mem_capacity=np.array([1.0, 1.0]),
            headroom=0.0,
        )
        assert used == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            pack_demands(
                np.zeros(2), np.zeros(3), np.ones(2), np.ones(2)
            )
        with pytest.raises(ValueError):
            pack_demands(
                np.zeros(2), np.zeros(2), np.ones(2), np.ones(2), headroom=1.0
            )


class TestConsolidationPotential:
    def test_on_simulated_fleet(self, small_simulation):
        report = consolidation_potential(
            small_simulation.series, headroom=0.1, stride=12
        )
        assert isinstance(report, ConsolidationReport)
        assert report.fleet_size == len(small_simulation.series)
        assert 0 < report.mean_needed <= report.fleet_size
        assert 0 <= report.mean_shutoff_fraction < 1
        assert report.peak_needed >= report.machines_needed.min()

    def test_idle_fleet_consolidates_heavily(self, small_simulation):
        """A lightly loaded cluster should free a large fleet share."""
        report = consolidation_potential(
            small_simulation.series, headroom=0.05, stride=24
        )
        # Simulated CPU ~28%, memory ~56% of capacity: memory binds, but
        # a meaningful share of machines must still be freeable.
        assert report.mean_shutoff_fraction > 0.1

    def test_validation(self, small_simulation):
        with pytest.raises(ValueError):
            consolidation_potential({}, headroom=0.1)
        with pytest.raises(ValueError):
            consolidation_potential(small_simulation.series, stride=0)


class TestUsers:
    def _jobs(self, user_ids):
        n = len(user_ids)
        return Table(
            {
                "job_id": np.arange(n, dtype=np.int64),
                "user_id": np.asarray(user_ids, dtype=np.int64),
                "submit_time": np.arange(n, dtype=np.float64),
                "end_time": np.arange(n, dtype=np.float64) + 10,
                "priority": np.ones(n, dtype=np.int16),
                "num_tasks": np.ones(n, dtype=np.int32),
                "cpu_usage": np.ones(n),
                "mem_usage": np.ones(n) * 0.1,
            }
        )

    def test_jobs_per_user(self):
        jobs = self._jobs([1, 1, 2, 3, 3, 3])
        assert jobs_per_user(jobs) == {1: 2, 2: 1, 3: 3}

    def test_top_user_share(self):
        jobs = self._jobs([1, 1, 1, 2])
        assert top_user_share(jobs, k=1) == pytest.approx(0.75)
        with pytest.raises(ValueError):
            top_user_share(jobs, k=0)

    def test_user_summary(self):
        jobs = self._jobs([1] * 8 + [2, 3])
        summary = user_summary(jobs)
        assert summary.num_users == 3
        assert summary.jobs_per_user_max == 8
        assert summary.top10_share == 1.0
        assert 0 < summary.fairness_across_users < 1
        assert summary.masscount.joint_ratio[0] <= 50

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            user_summary(self._jobs([]).select(np.array([], dtype=int)))

    def test_on_google_workload(self, small_workload):
        summary = user_summary(small_workload.google_jobs)
        assert summary.num_users > 100
        assert summary.jobs_per_user_mean > 1
