"""Tests for deterministic fault injection (repro.experiments.faults)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.diskcache import MISS, CacheCorruptionError
from repro.core.timing import Timings
from repro.experiments import datasets
from repro.experiments.faults import (
    BLOCK_FAULT_KINDS,
    PLAN_ENV,
    SHARD_FAULT_KINDS,
    FaultInjected,
    FaultPlan,
    FaultSpec,
    ShardFaultInjector,
    corrupt_one_cache_entry,
    corrupt_shard_column,
    plan_from_env,
    spill_fault_hook,
)
from repro.experiments.runner import main as runner_main


@pytest.fixture
def plain_cache(tmp_path):
    """A dataset disk cache in a temp dir; restores the disabled default."""
    cache = datasets.configure_cache(tmp_path)
    yield cache
    datasets.configure_cache(None)
    datasets.reset_dataset_stats()


class TestPlanParsing:
    def test_inline_json_list(self):
        plan = FaultPlan.load('[{"experiment_id": "fig4", "kind": "kill"}]')
        assert plan.faults == (FaultSpec(experiment_id="fig4", kind="kill"),)

    def test_object_with_faults_key(self):
        plan = FaultPlan.load('{"faults": [{"experiment_id": "tab1"}]}')
        assert plan.faults[0].experiment_id == "tab1"
        assert plan.faults[0].kind == "raise"

    def test_file_path(self, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(
            json.dumps(
                [{"experiment_id": "fig7", "kind": "hang", "seconds": 5}]
            )
        )
        plan = FaultPlan.load(path)
        assert plan.faults[0].kind == "hang"
        assert plan.faults[0].seconds == 5

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan.from_obj([{"experiment_id": "fig4", "kind": "explode"}])

    def test_attempt_must_be_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec(experiment_id="fig4", attempt=0)

    def test_non_list_rejected(self):
        with pytest.raises(ValueError, match="list"):
            FaultPlan.from_obj("nope")


class TestLookupAndTrigger:
    def test_lookup_matches_exact_experiment_and_attempt(self):
        plan = FaultPlan.from_obj([{"experiment_id": "fig4", "attempt": 2}])
        assert plan.lookup("fig4", 2) is not None
        assert plan.lookup("fig4", 1) is None
        assert plan.lookup("fig2", 2) is None

    def test_trigger_raise_counts_injection(self):
        plan = FaultPlan.from_obj([{"experiment_id": "fig4", "kind": "raise"}])
        timings = Timings()
        with pytest.raises(FaultInjected, match="fig4 attempt 1"):
            plan.trigger("fig4", 1, timings=timings)
        assert timings.counters["faults_injected"] == 1

    def test_trigger_corruption_is_typed(self):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "fig4", "kind": "raise-corruption"}]
        )
        with pytest.raises(CacheCorruptionError):
            plan.trigger("fig4", 1)

    def test_unplanned_attempt_is_noop(self):
        plan = FaultPlan.from_obj([{"experiment_id": "fig4"}])
        timings = Timings()
        plan.trigger("tab1", 1, timings=timings)  # must not raise
        plan.trigger("fig4", 2, timings=timings)
        assert "faults_injected" not in timings.counters


class TestCorruptOneCacheEntry:
    def test_truncates_first_entry_and_cache_self_heals(self, plain_cache):
        key = "a" * 64
        plain_cache.put(key, {"x": np.arange(50)})
        assert corrupt_one_cache_entry() == key
        # The damaged entry is quarantined on the next read, not served.
        assert plain_cache.get(key) is MISS
        assert plain_cache.stats.quarantined == 1
        assert plain_cache.stats.errors == 1

    def test_none_without_cache(self):
        datasets.configure_cache(None)
        assert corrupt_one_cache_entry() is None

    def test_none_with_empty_cache(self, plain_cache):
        assert corrupt_one_cache_entry() is None


class TestPlanFromEnv:
    def test_absent_env_is_none(self):
        assert plan_from_env({}) is None
        assert plan_from_env({PLAN_ENV: ""}) is None

    def test_inline_json_env(self):
        plan = plan_from_env({PLAN_ENV: '[{"experiment_id": "fig4"}]'})
        assert plan is not None
        assert plan.faults[0].experiment_id == "fig4"

    def test_env_plan_activates_supervision_in_runner(
        self, monkeypatch, capsys
    ):
        monkeypatch.setenv(
            PLAN_ENV, '[{"experiment_id": "fig4", "kind": "raise"}]'
        )
        rc = runner_main(["fig4", "--scale", "small", "--no-cache"])
        out, err = capsys.readouterr()
        assert rc == 1
        assert "fig4 failed [exception]" in err
        assert "injected failure" in err

    def test_invalid_plan_rejected_by_runner(self, monkeypatch, capsys):
        monkeypatch.setenv(PLAN_ENV, '[{"experiment_id": "fig4", "kind": "x"}]')
        rc = runner_main(["fig4", "--scale", "small", "--no-cache"])
        assert rc == 2
        assert "invalid fault plan" in capsys.readouterr().err


class TestShardFaultSpecs:
    """Validation of the out-of-core fault kinds."""

    def test_block_kinds_require_block(self):
        for kind in BLOCK_FAULT_KINDS:
            with pytest.raises(ValueError, match="block"):
                FaultSpec(experiment_id="*", kind=kind)

    def test_corrupt_shard_requires_shard(self):
        with pytest.raises(ValueError, match="shard"):
            FaultSpec(experiment_id="*", kind="corrupt-shard", block=0)

    def test_torn_spill_requires_shard(self):
        with pytest.raises(ValueError, match="shard"):
            FaultSpec(experiment_id="*", kind="torn-spill")

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(experiment_id="*", kind="kill-worker", block=-1)
        with pytest.raises(ValueError):
            FaultSpec(
                experiment_id="*", kind="torn-spill", shard=-2
            )

    def test_shard_kinds_skipped_by_experiment_lookup(self):
        # Experiment-level supervision must not fire on out-of-core
        # faults: they have their own injection points.
        plan = FaultPlan.from_obj(
            [{"experiment_id": "*", "kind": "kill-worker", "block": 0}]
        )
        assert plan.lookup("fig7", 1) is None
        assert plan.lookup("*", 1) is None

    def test_lookup_block_matches_table_block_attempt(self):
        plan = FaultPlan.from_obj(
            [
                {
                    "experiment_id": "machine_usage",
                    "kind": "kill-worker",
                    "block": 2,
                    "attempt": 1,
                }
            ]
        )
        assert plan.lookup_block("machine_usage", 2, 1) is not None
        assert plan.lookup_block("machine_usage", 2, 2) is None
        assert plan.lookup_block("machine_usage", 1, 1) is None
        assert plan.lookup_block("google_jobs", 2, 1) is None

    def test_wildcard_table_matches_all(self):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "*", "kind": "hang-block", "block": 0}]
        )
        assert plan.lookup_block("anything", 0, 1) is not None
        assert plan.has_shard_faults("anything")

    def test_lookup_spill(self):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "t", "kind": "torn-spill", "shard": 3}]
        )
        assert plan.lookup_spill("t", 3) is not None
        assert plan.lookup_spill("t", 2) is None
        assert plan.lookup_spill("u", 3) is None


class TestShardFaultInjector:
    def test_picklable_across_spawn_boundary(self):
        import pickle

        plan = FaultPlan.from_obj(
            [{"experiment_id": "*", "kind": "kill-worker", "block": 1}]
        )
        injector = ShardFaultInjector(plan=plan, table="t")
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.plan.lookup_block("t", 1, 1) is not None

    def test_unmatched_call_is_noop(self, tmp_path):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "t", "kind": "kill-worker", "block": 5}]
        )
        injector = ShardFaultInjector(plan=plan, table="t")
        injector(str(tmp_path), block=0, attempt=1)  # must not kill

    def test_corrupt_shard_fires_through_injector(self, tmp_path):
        from repro.core.shard import ShardedTable, write_table
        from repro.core.table import Table

        sharded = write_table(
            Table({"x": np.arange(12.0)}), tmp_path / "t", 4
        )
        plan = FaultPlan.from_obj(
            [
                {
                    "experiment_id": "t",
                    "kind": "corrupt-shard",
                    "block": 0,
                    "shard": 1,
                }
            ]
        )
        ShardFaultInjector(plan=plan, table="t")(
            str(sharded.root), block=0, attempt=1
        )
        # Structural validation still passes; the digest check catches it.
        reopened = ShardedTable.open(sharded.root, verify="lazy")
        from repro.core.shard import ShardIntegrityError

        with pytest.raises(ShardIntegrityError):
            reopened.shard(1)

    def test_corrupt_shard_column_returns_path(self, tmp_path):
        from repro.core.shard import write_table
        from repro.core.table import Table

        sharded = write_table(
            Table({"x": np.arange(8.0)}), tmp_path / "t", 4
        )
        hit = corrupt_shard_column(sharded.root, 0)
        assert hit is not None and hit.endswith("x.npy")
        assert corrupt_shard_column(sharded.root, 7) is None


class TestSpillFaultHook:
    def test_none_without_matching_fault(self):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "other", "kind": "torn-spill", "shard": 0}]
        )
        assert spill_fault_hook(plan, "t") is None

    def test_hook_ignores_resumed_spills(self):
        plan = FaultPlan.from_obj(
            [{"experiment_id": "t", "kind": "torn-spill", "shard": 0}]
        )
        hook = spill_fault_hook(plan, "t")
        assert hook is not None
        # Resumed attempt (resumed_shards > 0) must survive; wrong
        # event or shard must survive. Reaching here proves no SIGKILL.
        hook("column-written", 0, 3)
        hook("shard-committed", 0, 0)
        hook("column-written", 1, 0)
