"""Golden-equivalence and property tests for the SoA fast engine.

The SoA engine (and its compiled C hot loop) must reproduce the scalar
golden reference *byte for byte* — every event, every monitor sample,
every count, and the final RNG state. These tests pin that contract
over placement x preemption x churn x constraints, plus the calendar
queue's ordering invariants and the scalar-engine bugfixes that rode
along (stable preemption scan, fleet clamp, horizon accounting).
"""

import numpy as np
import pytest

from repro.sim import ClusterSimulator, SimConfig
from repro.sim import _ckernel
from repro.sim.churn import ChurnModel
from repro.sim.cluster import ENGINES
from repro.sim.constraints import ConstraintModel, generate_attribute_matrix
from repro.sim.engine import CalendarQueue, EventQueue
from repro.sim.failures import FailureModel
from repro.sim.machine import FleetState
from repro.sim.task import SimTask
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

HOUR = 3600.0

TERMINAL = ("finish", "fail", "kill", "evict", "lost")


def _inputs(seed, n_machines=8, horizon=6 * HOUR, rate=90.0):
    rng = np.random.default_rng(seed)
    machines = generate_machines(n_machines, rng)
    requests = generate_task_requests(
        horizon,
        seed=seed + 1,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=rate,
    )
    return machines, requests


def _config(policy, *, preempt=True, churn=False, constraints=False,
            n_machines=8, seed=0):
    churn_model = (
        ChurnModel(mean_uptime=8 * HOUR, mean_downtime=HOUR / 2)
        if churn else None
    )
    constraint_model = None
    if constraints:
        attrs = generate_attribute_matrix(
            n_machines, np.random.default_rng(seed + 5)
        )
        constraint_model = ConstraintModel(attrs, constraint_prob=0.3)
    return SimConfig(
        placement=policy,
        preemption=preempt,
        churn=churn_model,
        constraints=constraint_model,
    )


def _run(machines, requests, config, engine, seed, horizon):
    sim = ClusterSimulator(machines, config, seed=seed)
    result = sim.run(requests, horizon, engine=engine)
    return result, sim.rng.bit_generator.state


def _assert_same(got, golden):
    result, rng_state = got
    ref, ref_state = golden
    assert result.task_events == ref.task_events
    assert result.machine_usage == ref.machine_usage
    assert result.cluster_series == ref.cluster_series
    assert result.counts == ref.counts
    assert rng_state == ref_state


class TestGoldenEquivalence:
    """scalar vs soa-py vs soa: all four tables + final RNG state."""

    @pytest.mark.parametrize(
        "policy", ["balance", "best_fit", "first_fit", "random"]
    )
    @pytest.mark.parametrize("features", ["plain", "full"])
    def test_engines_byte_identical(self, policy, features):
        seed = 17
        horizon = 6 * HOUR
        machines, requests = _inputs(seed, horizon=horizon)
        full = features == "full"
        config = _config(
            policy, preempt=full, churn=full, constraints=full, seed=seed
        )
        golden = _run(machines, requests, config, "scalar", seed + 2, horizon)
        for engine in ("soa-py", "soa"):
            got = _run(machines, requests, config, engine, seed + 2, horizon)
            _assert_same(got, golden)

    def test_auto_resolves_to_soa(self):
        machines, requests = _inputs(23, n_machines=4, horizon=2 * HOUR)
        config = _config("balance")
        golden = _run(machines, requests, config, "soa", 9, 2 * HOUR)
        got = _run(machines, requests, config, "auto", 9, 2 * HOUR)
        _assert_same(got, golden)

    def test_engine_names(self):
        assert ENGINES == ("auto", "soa", "soa-py", "scalar")
        machines, requests = _inputs(3, n_machines=2, horizon=HOUR, rate=10.0)
        sim = ClusterSimulator(machines, SimConfig(), seed=1)
        with pytest.raises(ValueError, match="engine"):
            sim.run(requests, HOUR, engine="vectorized")


class TestKernelEligibility:
    """The C hot loop only claims configs it reproduces exactly."""

    def test_random_policy_falls_back(self):
        machines, requests = _inputs(3, n_machines=4, horizon=HOUR, rate=30.0)
        sim = ClusterSimulator(
            machines, SimConfig(placement="random"), seed=5
        )
        assert _ckernel.try_run(sim, requests, HOUR) is None

    def test_subclassed_failure_model_falls_back(self):
        class TweakedFailures(FailureModel):
            pass

        machines, requests = _inputs(3, n_machines=4, horizon=HOUR, rate=30.0)
        config = SimConfig(failures=TweakedFailures())
        sim = ClusterSimulator(machines, config, seed=5)
        assert _ckernel.try_run(sim, requests, HOUR) is None

    def test_kernel_claims_covered_config(self):
        if _ckernel.load() is None:
            pytest.skip("C kernel unavailable in this environment")
        machines, requests = _inputs(3, n_machines=4, horizon=HOUR, rate=30.0)
        sim = ClusterSimulator(machines, SimConfig(), seed=5)
        result = _ckernel.try_run(sim, requests, HOUR)
        assert result is not None
        assert result.counts["submitted"] > 0


class TestCalendarQueue:
    """CalendarQueue must be a drop-in for the binary-heap EventQueue."""

    def test_time_order_and_fifo_ties(self):
        q = CalendarQueue(width=10.0, horizon=100.0)
        q.push(30.0, 0, "c")
        q.push(10.0, 0, "a")
        q.push(10.0, 1, "b")
        assert [q.pop()[2] for _ in range(3)] == ["a", "b", "c"]

    def test_past_scheduling_rejected(self):
        q = CalendarQueue(width=10.0, horizon=100.0)
        q.push(50.0, 0)
        q.pop()
        with pytest.raises(ValueError, match="past"):
            q.push(10.0, 0)

    @pytest.mark.parametrize(
        "bad", [float("nan"), float("inf"), float("-inf")]
    )
    def test_non_finite_time_rejected(self, bad):
        q = CalendarQueue(width=10.0, horizon=100.0)
        with pytest.raises(ValueError, match="finite"):
            q.push(bad, 0)

    def test_pop_empty_raises(self):
        q = CalendarQueue(width=10.0, horizon=100.0)
        with pytest.raises(IndexError):
            q.pop()
        with pytest.raises(IndexError):
            q.pop_batch()

    def test_beyond_horizon_overflow_bucket(self):
        q = CalendarQueue(width=10.0, horizon=100.0)
        q.push(500.0, 0, "far")
        q.push(120.0, 0, "near")
        q.push(5.0, 0, "now")
        assert [q.pop()[2] for _ in range(3)] == ["now", "near", "far"]

    def test_late_push_into_draining_bucket(self):
        # After the frontier sorts a bucket, a push at now() must land
        # in the late heap and still interleave in (time, seq) order.
        q = CalendarQueue(width=10.0, horizon=100.0)
        q.push(12.0, 0, "a")
        q.push(18.0, 0, "c")
        assert q.pop()[2] == "a"  # frontier has sorted bucket [10, 20)
        q.push(12.0, 0, "late-equal")
        q.push(15.0, 0, "b")
        assert [q.pop()[2] for _ in range(3)] == ["late-equal", "b", "c"]

    def _random_times(self, rng, now, horizon):
        r = rng.random()
        if r < 0.25:
            return now  # exercise the late heap at the frontier
        if r < 0.55:
            # grid-aligned → timestamp ties across and within buckets
            return max(now, float(rng.integers(0, 14)) * 10.0)
        return now + float(rng.uniform(0.0, horizon * 1.3))

    def test_matches_heap_reference_interleaved(self):
        rng = np.random.default_rng(41)
        for trial in range(4):
            cal = CalendarQueue(width=10.0, horizon=100.0)
            ref = EventQueue()
            pushed = 0
            for _step in range(400):
                if len(ref) and rng.random() < 0.45:
                    assert cal.pop() == ref.pop()
                    assert cal.now == ref.now
                else:
                    t = self._random_times(rng, cal.now, 100.0)
                    kind = int(rng.integers(0, 3))
                    cal.push(t, kind, pushed)
                    ref.push(t, kind, pushed)
                    pushed += 1
                assert len(cal) == len(ref)
                assert cal.peek_time() == ref.peek_time()
            while len(ref):
                assert cal.pop() == ref.pop()

    def test_pop_batch_matches_heap_reference(self):
        rng = np.random.default_rng(42)
        cal = CalendarQueue(width=10.0, horizon=100.0)
        ref = EventQueue()
        pushed = 0
        for _step in range(300):
            if len(ref) and rng.random() < 0.35:
                assert cal.pop_batch() == ref.pop_batch()
            else:
                t = self._random_times(rng, cal.now, 100.0)
                cal.push(t, 0, pushed)
                ref.push(t, 0, pushed)
                pushed += 1
        while len(ref):
            assert cal.pop_batch() == ref.pop_batch()


def _task(priority=5, cpu=0.1, mem=0.1, job=0, idx=0, start=0.0):
    task = SimTask(
        job_id=job,
        task_index=idx,
        priority=priority,
        band=1,
        cpu_request=cpu,
        mem_request=mem,
        duration=100.0,
        cpu_eff=cpu * 0.5,
        mem_eff=mem * 0.9,
        page_cache=0.01,
        fate=4,
        submit_time=0.0,
    )
    task.start_time = start
    return task


class TestPreemptionTieBreak:
    """Stable scan order: free-CPU score ties resolve to lowest index."""

    def _tied_fleet(self):
        fleet = FleetState(generate_machines(4, np.random.default_rng(1)))
        # Identical machines → identical relative-free-CPU scores once
        # each hosts one equally sized victim.
        fleet.cpu_capacity[:] = 1.0
        fleet.mem_capacity[:] = 1.0
        fleet.free_cpu[:] = 1.0
        fleet.free_mem[:] = 1.0
        victims = []
        for m in range(4):
            victim = _task(priority=2, cpu=0.6, mem=0.1, job=m, start=10.0)
            fleet.start(m, victim)
            victims.append(victim)
        return fleet, victims

    def test_victim_set_pinned_under_score_ties(self):
        fleet, victims = self._tied_fleet()
        task = _task(priority=9, cpu=0.8, mem=0.2, job=99)
        machine, chosen = ClusterSimulator._find_preemption(fleet, task)
        assert machine == 0
        assert chosen == [victims[0]]

    def test_down_machines_skipped_in_tied_scan(self):
        fleet, victims = self._tied_fleet()
        fleet.available[0] = False
        task = _task(priority=9, cpu=0.8, mem=0.2, job=99)
        machine, chosen = ClusterSimulator._find_preemption(fleet, task)
        assert machine == 1
        assert chosen == [victims[1]]


class TestFleetClampInvariant:
    """Churn-heavy start/stop traffic never drives aggregates negative."""

    def test_aggregates_stay_nonnegative(self):
        rng = np.random.default_rng(5)
        fleet = FleetState(generate_machines(6, rng))
        live = []
        aggregates = (
            fleet.free_cpu,
            fleet.free_mem,
            fleet.cpu_base,
            fleet.mem_base,
            fleet.mem_assigned,
            fleet.page_base,
        )
        for step in range(2500):
            if live and (rng.random() < 0.5 or step > 2200):
                m, task = live.pop(int(rng.integers(0, len(live))))
                fleet.stop(m, task)
            else:
                m = int(rng.integers(0, fleet.num_machines))
                task = _task(
                    priority=int(rng.integers(0, 12)),
                    cpu=float(rng.uniform(1e-4, 0.2)),
                    mem=float(rng.uniform(1e-4, 0.2)),
                    job=step,
                )
                if not fleet.fits(m, task):
                    continue
                fleet.start(m, task)
                live.append((m, task))
            for arr in aggregates:
                assert np.all(arr >= 0.0)
            assert np.all(fleet.cpu_band >= 0.0)
            assert np.all(fleet.mem_band >= 0.0)
        while live:
            m, task = live.pop()
            fleet.stop(m, task)
        # Fully drained: any survivor is positive residue below 1e-9.
        for arr in (*aggregates[2:], fleet.cpu_band, fleet.mem_band):
            assert np.all(arr >= 0.0)
            assert np.all(arr <= 1e-9)


class TestHorizonAccounting:
    """submitted == terminal events + still-running + still-pending."""

    @pytest.mark.parametrize("engine", ["scalar", "soa"])
    @pytest.mark.parametrize(
        "policy,preempt", [("balance", True), ("first_fit", False)]
    )
    def test_counts_balance(self, engine, policy, preempt):
        # Small fleet + high rate → tasks are guaranteed to straddle
        # the horizon, so the carry-over counters do real work here.
        machines, requests = _inputs(
            31, n_machines=4, horizon=2 * HOUR, rate=220.0
        )
        config = _config(policy, preempt=preempt, n_machines=4)
        result, _ = _run(machines, requests, config, engine, 12, 2 * HOUR)
        counts = result.counts
        terminal = sum(counts[name] for name in TERMINAL)
        carried = counts["still_running"] + counts["still_pending"]
        assert counts["submitted"] == terminal + carried
        assert carried > 0
