"""Unit tests for Eq. 4 usage, summaries and report rendering."""

import numpy as np
import pytest

from repro.core.report import format_number, render_kv, render_table
from repro.core.summary import (
    fraction_below,
    fraction_between,
    summarize,
)
from repro.core.usage import cpu_usage_eq4, memory_usage_mb


class TestCpuUsageEq4:
    def test_sequential_fully_busy(self):
        out = cpu_usage_eq4(np.array([1.0]), np.array([100.0]), np.array([100.0]))
        assert out[0] == pytest.approx(1.0)

    def test_parallel_job(self):
        out = cpu_usage_eq4(np.array([4.0]), np.array([50.0]), np.array([100.0]))
        assert out[0] == pytest.approx(2.0)

    def test_interactive_below_one(self):
        out = cpu_usage_eq4(np.array([1.0]), np.array([5.0]), np.array([100.0]))
        assert out[0] == pytest.approx(0.05)

    def test_zero_wall_clock_rejected(self):
        with pytest.raises(ValueError):
            cpu_usage_eq4(np.array([1.0]), np.array([1.0]), np.array([0.0]))

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            cpu_usage_eq4(np.array([0.0]), np.array([1.0]), np.array([1.0]))

    def test_negative_exe_rejected(self):
        with pytest.raises(ValueError):
            cpu_usage_eq4(np.array([1.0]), np.array([-1.0]), np.array([1.0]))


class TestMemoryUsage:
    def test_scaling(self):
        out = memory_usage_mb(np.array([0.5]), 32.0)
        assert out[0] == pytest.approx(0.5 * 32 * 1024)

    def test_double_capacity_doubles(self):
        norm = np.array([0.1, 0.2])
        np.testing.assert_allclose(
            memory_usage_mb(norm, 64.0), 2 * memory_usage_mb(norm, 32.0)
        )

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            memory_usage_mb(np.array([1.5]), 32.0)
        with pytest.raises(ValueError):
            memory_usage_mb(np.array([0.5]), -1.0)


class TestSummary:
    def test_summarize(self):
        s = summarize(np.array([1.0, 2.0, 3.0]))
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.median == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert "mean" in s.as_dict()

    def test_summarize_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize(np.array([]))

    def test_fraction_below(self):
        assert fraction_below(np.array([1.0, 2.0, 3.0, 4.0]), 3.0) == 0.5

    def test_fraction_between(self):
        x = np.array([0.0, 1.0, 2.0, 3.0])
        assert fraction_between(x, 1.0, 3.0) == 0.5

    def test_fraction_between_bad_range(self):
        with pytest.raises(ValueError):
            fraction_between(np.array([1.0]), 2.0, 1.0)


class TestReport:
    def test_format_number(self):
        assert format_number(3) == "3"
        assert format_number(3.0) == "3"
        assert format_number(3.14159, precision=3) == "3.14"
        assert format_number("abc") == "abc"
        assert format_number(True) == "True"

    def test_render_table_alignment(self):
        out = render_table(
            ["name", "value"], [["x", 1], ["longer", 2.5]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert all("|" in line for line in lines[1:] if "-+-" not in line)

    def test_render_table_row_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_render_kv(self):
        out = render_kv({"alpha": 1, "b": 2.5}, title="vals")
        assert out.splitlines()[0] == "vals"
        assert "alpha" in out
