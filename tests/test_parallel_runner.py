"""Integration tests: disk-cached datasets, parallel runner, CLI flags."""

import json

import numpy as np
import pytest

from repro.core.timing import Timings
from repro.experiments import datasets
from repro.experiments.parallel import run_experiments, warm_datasets
from repro.experiments.registry import EXPERIMENTS
from repro.experiments.runner import main as runner_main


@pytest.fixture
def cache_dir(tmp_path):
    """A throwaway cache dir; restores the disabled-cache default."""
    yield tmp_path / "cache"
    datasets.configure_cache(None)
    datasets.reset_dataset_stats()


class TestDatasetDiskCache:
    def test_warm_cache_skips_generation(self, cache_dir):
        datasets.configure_cache(cache_dir)
        datasets.reset_dataset_stats()
        first = datasets.workload_dataset("small", 0)
        stats = datasets.dataset_stats()
        assert stats["workload_builds"] == 1
        assert stats["disk_misses"] == 1
        assert stats["disk_hits"] == 0

        # Fresh memo (as in a new process): the disk entry must serve
        # the dataset with zero trace generation.
        datasets.configure_cache(cache_dir)
        datasets.reset_dataset_stats()
        second = datasets.workload_dataset("small", 0)
        stats = datasets.dataset_stats()
        assert stats["workload_builds"] == 0
        assert stats["disk_hits"] == 1
        assert second.google_jobs == first.google_jobs
        for name, table in first.grid_jobs.items():
            assert second.grid_jobs[name] == table
        np.testing.assert_array_equal(
            second.google_tasks.duration, first.google_tasks.duration
        )

    def test_seed_change_misses(self, cache_dir):
        datasets.configure_cache(cache_dir)
        datasets.reset_dataset_stats()
        datasets.workload_dataset("small", 0)
        datasets.workload_dataset("small", 1)
        stats = datasets.dataset_stats()
        assert stats["workload_builds"] == 2
        assert stats["disk_misses"] == 2

    def test_simulation_round_trip(self, cache_dir):
        datasets.configure_cache(cache_dir)
        datasets.reset_dataset_stats()
        first = datasets.simulation_dataset("small", 0)
        datasets.configure_cache(cache_dir)
        second = datasets.simulation_dataset("small", 0)
        stats = datasets.dataset_stats()
        assert stats["simulation_builds"] == 1
        assert second.result.task_events == first.result.task_events
        assert second.result.machine_usage == first.result.machine_usage
        assert second.result.counts == first.result.counts
        assert set(second.series) == set(first.series)
        mid = next(iter(first.series))
        np.testing.assert_array_equal(
            second.series[mid].cpu, first.series[mid].cpu
        )

    def test_disabled_cache_always_builds(self, cache_dir):
        datasets.configure_cache(None)
        datasets.reset_dataset_stats()
        datasets.workload_dataset("small", 0)
        stats = datasets.dataset_stats()
        assert stats["workload_builds"] == 1
        assert stats["disk_misses"] == 0
        assert "cache_hits" not in stats


class TestSerialParallelEquivalence:
    def test_full_registry_byte_identical(self, cache_dir):
        datasets.configure_cache(cache_dir)
        ids = list(EXPERIMENTS)
        serial = run_experiments(ids, scale="small", seed=0, jobs=1)
        parallel = run_experiments(ids, scale="small", seed=0, jobs=2)
        assert [o.experiment_id for o in serial] == ids
        assert [o.experiment_id for o in parallel] == ids
        assert all(o.ok for o in serial)
        assert all(o.ok for o in parallel)
        for s, p in zip(serial, parallel):
            assert s.rendered == p.rendered

    def test_failure_is_captured_not_raised(self, monkeypatch):
        def boom(scale="paper", seed=0):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(EXPERIMENTS, "fig2", boom)
        datasets.configure_cache(None)
        outcomes = run_experiments(["fig2", "fig4"], scale="small", seed=0)
        assert not outcomes[0].ok
        assert "synthetic failure" in outcomes[0].error
        assert outcomes[1].ok

    def test_timings_collected(self, cache_dir):
        datasets.configure_cache(cache_dir)
        timings = Timings()
        run_experiments(
            ["fig4"], scale="small", seed=0, jobs=1, timings=timings
        )
        assert "run:fig4" in timings.stages
        assert "render:fig4" in timings.stages
        assert timings.counters.get("workload_builds", 0) >= 0

    def test_warm_datasets_populates_memo(self, cache_dir):
        datasets.configure_cache(cache_dir)
        warm_datasets("small", 0)
        datasets.reset_dataset_stats()
        datasets.workload_dataset("small", 0)
        datasets.simulation_dataset("small", 0)
        # Both were memo hits: no builds, no disk traffic.
        stats = datasets.dataset_stats()
        assert stats["workload_builds"] == 0
        assert stats["simulation_builds"] == 0
        assert stats["disk_misses"] == 0


class TestRunnerCli:
    def test_list_with_ids_rejected(self, capsys):
        assert runner_main(["--list", "fig4"]) == 2
        assert "--list" in capsys.readouterr().err

    def test_bad_jobs_rejected(self, capsys):
        assert runner_main(["fig4", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_failing_experiment_reported_and_run_continues(
        self, capsys, monkeypatch
    ):
        def boom(scale="paper", seed=0):
            raise RuntimeError("synthetic failure")

        monkeypatch.setitem(EXPERIMENTS, "fig2", boom)
        rc = runner_main(["fig2", "fig4", "--scale", "small", "--no-cache"])
        out, err = capsys.readouterr()
        assert rc == 1
        assert "fig2 failed" in err
        assert "synthetic failure" in err
        assert "fig4" in out  # later experiment still ran

    def test_json_report_and_profile(self, capsys, tmp_path, cache_dir):
        report_path = tmp_path / "timing.json"
        rc = runner_main(
            [
                "fig4",
                "--scale",
                "small",
                "--cache-dir",
                str(cache_dir),
                "--json",
                str(report_path),
                "--profile",
            ]
        )
        assert rc == 0
        err = capsys.readouterr().err
        assert "timing:" in err
        report = json.loads(report_path.read_text())
        assert report["scale"] == "small"
        assert report["jobs"] == 1
        assert report["cache"]["enabled"]
        assert report["experiments"][0]["id"] == "fig4"
        assert report["experiments"][0]["ok"]
        assert report["experiments"][0]["wall_s"] > 0
        assert report["counters"]["workload_builds"] == 1
        assert "run:fig4" in report["stages"]

    def test_second_cli_run_is_warm(self, capsys, tmp_path, cache_dir):
        report_path = tmp_path / "timing2.json"
        args = ["fig4", "--scale", "small", "--cache-dir", str(cache_dir)]
        assert runner_main(args) == 0
        out1 = capsys.readouterr().out
        assert (
            runner_main(args + ["--json", str(report_path)]) == 0
        )
        out2 = capsys.readouterr().out
        assert out2 == out1
        report = json.loads(report_path.read_text())
        assert report["counters"]["workload_builds"] == 0
        assert report["counters"]["disk_hits"] == 1
