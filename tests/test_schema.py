"""Unit tests for trace schema constants and priority banding."""

import numpy as np
import pytest

from repro.traces.schema import (
    ABNORMAL_EVENTS,
    HIGH_PRIORITIES,
    LOW_PRIORITIES,
    MIDDLE_PRIORITIES,
    NUM_PRIORITIES,
    TERMINAL_EVENTS,
    PriorityBand,
    TaskEvent,
    TaskState,
    priority_band,
    priority_band_array,
)


class TestPriorityBand:
    def test_low(self):
        for p in LOW_PRIORITIES:
            assert priority_band(p) == PriorityBand.LOW

    def test_middle(self):
        for p in MIDDLE_PRIORITIES:
            assert priority_band(p) == PriorityBand.MIDDLE

    def test_high(self):
        for p in HIGH_PRIORITIES:
            assert priority_band(p) == PriorityBand.HIGH

    def test_bands_partition_priorities(self):
        all_p = (*LOW_PRIORITIES, *MIDDLE_PRIORITIES, *HIGH_PRIORITIES)
        assert sorted(all_p) == list(range(1, NUM_PRIORITIES + 1))

    @pytest.mark.parametrize("bad", [0, 13, -1])
    def test_out_of_range(self, bad):
        with pytest.raises(ValueError):
            priority_band(bad)

    def test_vectorized_matches_scalar(self):
        priorities = np.arange(1, 13)
        bands = priority_band_array(priorities)
        expected = [priority_band(int(p)).value for p in priorities]
        np.testing.assert_array_equal(bands, expected)

    def test_vectorized_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            priority_band_array(np.array([0, 5]))

    def test_vectorized_empty(self):
        assert priority_band_array(np.empty(0, dtype=int)).size == 0


class TestEventConstants:
    def test_terminal_events_move_to_dead(self):
        assert TaskEvent.FINISH in TERMINAL_EVENTS
        assert TaskEvent.SUBMIT not in TERMINAL_EVENTS
        assert TaskEvent.SCHEDULE not in TERMINAL_EVENTS

    def test_abnormal_is_terminal_minus_finish(self):
        assert set(ABNORMAL_EVENTS) == set(TERMINAL_EVENTS) - {TaskEvent.FINISH}

    def test_task_states(self):
        assert TaskState.PENDING != TaskState.RUNNING
        assert int(TaskState.UNSUBMITTED) == 0

    def test_event_codes_distinct(self):
        codes = [int(e) for e in TaskEvent]
        assert len(codes) == len(set(codes))
