"""Shared fixtures: small, session-cached datasets so tests stay fast."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.datasets import simulation_dataset, workload_dataset
from repro.sim import ClusterSimulator, SimConfig
from repro.synth import (
    GoogleConfig,
    generate_machines,
    generate_task_requests,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_workload():
    """Small-scale workload dataset (Google + all grids)."""
    return workload_dataset("small", seed=0)


@pytest.fixture(scope="session")
def small_simulation():
    """Small-scale simulated cluster (16 machines, 2 days)."""
    return simulation_dataset("small", seed=0)


@pytest.fixture(scope="session")
def tiny_sim_result():
    """A very small simulation for event-level assertions."""
    rng = np.random.default_rng(42)
    machines = generate_machines(6, rng)
    config = GoogleConfig(busy_window=None)
    requests = generate_task_requests(
        horizon=8 * 3600.0, seed=43, config=config, tasks_per_hour=40.0
    )
    sim = ClusterSimulator(machines, SimConfig(), seed=44)
    result = sim.run(requests, horizon=8 * 3600.0)
    return requests, result
