"""Unit tests for mass-count disparity analysis."""

import numpy as np
import pytest

from repro.core.masscount import joint_ratio_label, mass_count


class TestMassCount:
    def test_uniform_sample_balanced(self):
        # Identical items: count and mass CDFs coincide -> joint ~50/50.
        mc = mass_count(np.full(100, 3.0))
        assert mc.joint_ratio[0] == pytest.approx(50.0, abs=2.0)
        assert mc.mm_distance == pytest.approx(0.0)

    def test_pareto_sample_skewed(self):
        rng = np.random.default_rng(0)
        # alpha < 1 bounded Pareto: mass concentrates in few huge items.
        u = rng.uniform(size=20000)
        low, high, alpha = 1.0, 1e6, 0.5
        la, ha = low**alpha, high**alpha
        sample = (la / (1 - u * (1 - la / ha))) ** (1 / alpha)
        mc = mass_count(sample)
        assert mc.joint_ratio[0] < 15  # strongly Pareto
        assert mc.mass_median > mc.count_median

    def test_joint_ratio_sums_to_100(self):
        rng = np.random.default_rng(1)
        mc = mass_count(rng.lognormal(0, 1.5, 5000))
        assert mc.joint_ratio[0] + mc.joint_ratio[1] == pytest.approx(100.0)

    def test_lognormal_joint_ratio_theory(self):
        # For lognormal(sigma), crossing at Fc = Phi(sigma/2).
        from scipy.stats import norm

        sigma = 1.4
        rng = np.random.default_rng(2)
        mc = mass_count(rng.lognormal(0, sigma, 200_000))
        expected_small = 100 * (1 - norm.cdf(sigma / 2))
        assert mc.joint_ratio[0] == pytest.approx(expected_small, abs=1.5)

    def test_curves_monotone(self):
        rng = np.random.default_rng(3)
        mc = mass_count(rng.exponential(1.0, 1000))
        assert np.all(np.diff(mc.count_cdf) >= 0)
        assert np.all(np.diff(mc.mass_cdf) >= -1e-12)
        assert mc.count_cdf[-1] == pytest.approx(1.0)
        assert mc.mass_cdf[-1] == pytest.approx(1.0)

    def test_mass_cdf_below_count_cdf(self):
        # Mass lags count for any non-degenerate positive sample.
        rng = np.random.default_rng(4)
        mc = mass_count(rng.uniform(0.1, 10.0, 2000))
        assert np.all(mc.mass_cdf <= mc.count_cdf + 1e-9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            mass_count(np.array([]))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            mass_count(np.array([1.0, -1.0]))

    def test_zero_total_rejected(self):
        with pytest.raises(ValueError):
            mass_count(np.zeros(5))

    def test_label_format(self):
        mc = mass_count(np.full(10, 1.0))
        label = joint_ratio_label(mc)
        x, y = label.split("/")
        assert int(x) + int(y) == 100

    def test_relative_mm_distance(self):
        mc = mass_count(np.array([1.0, 2.0, 3.0, 100.0]))
        rel = mc.mm_distance_relative()
        assert 0 <= rel <= 1
        assert mc.mm_distance_relative(scale=mc.mm_distance) == pytest.approx(1.0)
