"""Unit tests for empirical CDFs and histograms."""

import numpy as np
import pytest

from repro.core.ecdf import (
    binned_pdf,
    ecdf,
    evaluate_cdf,
    histogram_counts,
    quantile,
)


class TestECDF:
    def test_simple(self):
        cdf = ecdf(np.array([1.0, 2.0, 3.0, 4.0]))
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == 0.25
        assert cdf(2.5) == 0.5
        assert cdf(4.0) == 1.0
        assert cdf(100.0) == 1.0

    def test_duplicates(self):
        cdf = ecdf(np.array([1.0, 1.0, 2.0]))
        assert cdf(1.0) == pytest.approx(2 / 3)

    def test_vector_evaluation(self):
        cdf = ecdf(np.array([1.0, 2.0]))
        out = cdf(np.array([0.0, 1.0, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([]))

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            ecdf(np.array([1.0, np.nan]))

    def test_padded_probabilities_precomputed(self):
        # Hot-loop fix: the 0-padded array is built once at construction
        # and reused identically across evaluations.
        cdf = ecdf(np.array([1.0, 2.0, 3.0]))
        padded = cdf._padded
        np.testing.assert_allclose(padded, [0.0, 1 / 3, 2 / 3, 1.0])
        cdf(np.array([0.5, 2.5]))
        assert cdf._padded is padded

    def test_quantile_inverts(self):
        sample = np.arange(1, 101, dtype=float)
        cdf = ecdf(sample)
        assert cdf.quantile(0.5) == 50.0
        assert cdf.quantile(1.0) == 100.0
        assert cdf.quantile(0.0) == 1.0

    def test_quantile_out_of_range(self):
        cdf = ecdf(np.array([1.0]))
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_monotone(self):
        rng = np.random.default_rng(0)
        cdf = ecdf(rng.normal(size=500))
        assert np.all(np.diff(cdf.probabilities) >= 0)
        assert cdf.probabilities[-1] == pytest.approx(1.0)

    def test_quantile_function_helper(self):
        assert quantile(np.array([1.0, 2.0, 3.0]), 0.5) == 2.0


class TestEvaluateCdf:
    def test_matches_manual(self):
        sample = np.array([1.0, 5.0, 10.0])
        out = evaluate_cdf(sample, np.array([0.0, 5.0, 20.0]))
        np.testing.assert_allclose(out, [0.0, 2 / 3, 1.0])


class TestBinnedPdf:
    def test_mass_sums_to_one(self):
        rng = np.random.default_rng(1)
        centers, mass = binned_pdf(rng.uniform(0, 1, 1000), bins=10)
        assert mass.sum() == pytest.approx(1.0)
        assert len(centers) == 10

    def test_range_respected(self):
        centers, mass = binned_pdf(
            np.array([0.1, 0.9]), bins=2, range_=(0.0, 1.0)
        )
        np.testing.assert_allclose(centers, [0.25, 0.75])
        np.testing.assert_allclose(mass, [0.5, 0.5])

    def test_empty_bins_zero_mass(self):
        _, mass = binned_pdf(np.array([0.5]), bins=4, range_=(0.0, 1.0))
        assert np.count_nonzero(mass) == 1


class TestHistogramCounts:
    def test_counts(self):
        values = np.array([1, 2, 2, 3, 3, 3])
        out = histogram_counts(values, np.array([1, 2, 3, 4]))
        np.testing.assert_array_equal(out, [1, 2, 3, 0])
