"""Unit tests for host-load series, max loads, queues, levels, bands."""

import numpy as np
import pytest

from repro.hostload import (
    all_machine_series,
    band_share,
    band_usage,
    duration_stats_by_level,
    idle_fraction_for_band,
    level_snapshot,
    machine_queue_state,
    machine_series,
    max_load_by_capacity,
    max_load_pdf,
    pooled_level_durations,
    running_state_durations,
    task_spans,
    usage_mass_count,
)
from repro.traces.schema import TaskEvent


@pytest.fixture(scope="module")
def sim(tiny_sim_result):
    _, result = tiny_sim_result
    return result


@pytest.fixture(scope="module")
def series(sim):
    return all_machine_series(sim.machine_usage, sim.machines)


class TestMachineSeries:
    def test_all_machines_present(self, sim, series):
        assert len(series) == sim.machines.num_rows

    def test_single_machine_matches_bulk(self, sim, series):
        single = machine_series(sim.machine_usage, sim.machines, 0)
        np.testing.assert_array_equal(single.times, series[0].times)
        np.testing.assert_array_equal(single.cpu, series[0].cpu)

    def test_relative_bounded(self, series):
        for s in series.values():
            for attr in ("cpu", "mem", "mem_assigned", "page_cache"):
                rel = s.relative(attr)
                assert np.all((rel >= 0) & (rel <= 1))

    def test_relative_unknown_attr(self, series):
        with pytest.raises(ValueError, match="unknown attribute"):
            series[0].relative("bogus")

    def test_max_load(self, series):
        s = series[0]
        assert s.max_load("cpu") == pytest.approx(float(s.cpu.max()))
        with pytest.raises(ValueError):
            s.max_load("bogus")

    def test_unknown_machine_rejected(self, sim):
        with pytest.raises(KeyError):
            machine_series(sim.machine_usage, sim.machines, 999)

    def test_times_sorted(self, series):
        for s in series.values():
            assert np.all(np.diff(s.times) > 0)


class TestMaxLoad:
    def test_grouped_by_capacity(self, series):
        groups = max_load_by_capacity(series, "cpu")
        total = sum(d.num_machines for d in groups.values())
        assert total == len(series)
        for cap, dist in groups.items():
            assert np.all(dist.max_loads <= cap + 1e-9)

    def test_fraction_at_capacity_bounds(self, series):
        groups = max_load_by_capacity(series, "mem")
        for dist in groups.values():
            assert 0 <= dist.fraction_at_capacity() <= 1
            assert 0 <= dist.mean_relative() <= 1 + 1e-9

    def test_pdf_mass(self, series):
        groups = max_load_by_capacity(series, "cpu")
        dist = next(iter(groups.values()))
        centers, mass = max_load_pdf(dist)
        assert mass.sum() == pytest.approx(1.0)
        assert len(centers) == len(mass)

    def test_unknown_attribute(self, series):
        with pytest.raises(ValueError):
            max_load_by_capacity(series, "bogus")


class TestQueueState:
    def test_running_never_negative(self, sim):
        qs = machine_queue_state(sim.task_events, 0)
        assert qs.running.min() >= 0
        assert np.all(np.diff(qs.finished) >= 0)
        assert np.all(qs.abnormal <= qs.finished)

    def test_sample_piecewise(self, sim):
        qs = machine_queue_state(sim.task_events, 0)
        out = qs.sample(np.array([-5.0]), "running")
        assert out[0] == 0
        mid = qs.times[len(qs.times) // 2]
        out = qs.sample(np.array([mid]), "running")
        assert out[0] >= 0

    def test_unknown_machine(self, sim):
        with pytest.raises(KeyError):
            machine_queue_state(sim.task_events, 12345)

    def test_task_spans_within_horizon(self, sim):
        spans = task_spans(sim.task_events, 0)
        assert np.all(spans["end"] >= spans["start"])
        assert len(spans) > 0

    def test_span_outcomes_terminal_or_open(self, sim):
        spans = task_spans(sim.task_events, 0)
        valid = {
            -1,
            int(TaskEvent.EVICT),
            int(TaskEvent.FAIL),
            int(TaskEvent.FINISH),
            int(TaskEvent.KILL),
            int(TaskEvent.LOST),
        }
        assert set(np.unique(spans["outcome"]).tolist()) <= valid

    def test_running_durations(self, series):
        s = series[0]
        durations = running_state_durations(s.n_running, s.times)
        total = sum(d.sum() for d in durations.values())
        span = s.times[-1] - s.times[0]
        assert total == pytest.approx(span, rel=0.05)


class TestLevels:
    def test_snapshot_shape(self, series):
        snap = level_snapshot(series, "cpu", num_machines=4, seed=0)
        assert snap.levels.shape[0] == 4
        assert snap.levels.shape[1] == len(snap.times)
        occ = snap.level_occupancy()
        assert occ.sum() == pytest.approx(1.0)

    def test_snapshot_all_machines_when_fewer(self, series):
        snap = level_snapshot(series, "cpu", num_machines=10_000)
        assert snap.num_machines == len(series)

    def test_snapshot_empty_rejected(self):
        with pytest.raises(ValueError):
            level_snapshot({}, "cpu")

    def test_pooled_durations(self, series):
        pooled = pooled_level_durations(series, "cpu")
        assert set(pooled) == {0, 1, 2, 3, 4}
        stats = duration_stats_by_level(pooled)
        assert len(stats) == 5
        for s in stats:
            if s.count:
                assert s.avg_minutes > 0
                assert s.joint_ratio[0] + s.joint_ratio[1] == pytest.approx(100)

    def test_usage_mass_count(self, series):
        mc = usage_mass_count(series, "cpu")
        assert 0 < mc.joint_ratio[0] <= 50


class TestPriorityBands:
    def test_band_usage_ordering(self, series):
        for s in series.values():
            all_u = band_usage(s, "cpu", "all")
            mid_high = band_usage(s, "cpu", "mid_high")
            high = band_usage(s, "cpu", "high")
            assert np.all(high <= mid_high + 1e-9)
            assert np.all(mid_high <= all_u + 1e-6)

    def test_band_usage_unknown(self, series):
        with pytest.raises(ValueError):
            band_usage(series[0], "cpu", "bogus")

    def test_idle_fraction_monotone_in_band(self, series):
        s = series[0]
        idle_all = idle_fraction_for_band(s, "cpu", "all", threshold=0.5)
        idle_high = idle_fraction_for_band(s, "cpu", "high", threshold=0.5)
        assert idle_high >= idle_all

    def test_band_share_sums(self, series):
        shares = band_share(series, "cpu")
        total = shares["low"] + shares["middle"] + shares["high"]
        assert total == pytest.approx(shares["total"], rel=0.01)
