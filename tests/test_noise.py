"""Unit tests for noise and autocorrelation measures."""

import numpy as np
import pytest

from repro.core.noise import (
    autocorrelation,
    mean_filter,
    noise_series,
    noise_stats,
)


class TestMeanFilter:
    def test_constant_signal_unchanged(self):
        x = np.full(50, 0.7)
        np.testing.assert_allclose(mean_filter(x), x)

    def test_output_length_preserved(self):
        x = np.arange(20, dtype=float)
        assert mean_filter(x, window=5).shape == x.shape

    def test_smooths_alternation(self):
        x = np.tile([0.0, 1.0], 50)
        smooth = mean_filter(x, window=10)
        assert np.abs(smooth[20:-20] - 0.5).max() < 0.11

    def test_window_one_identity(self):
        x = np.array([1.0, 5.0, 2.0])
        np.testing.assert_allclose(mean_filter(x, window=1), x)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            mean_filter(np.zeros(5), window=0)

    def test_empty_signal(self):
        assert mean_filter(np.empty(0)).size == 0

    def test_linear_trend_preserved_in_interior(self):
        x = np.arange(100, dtype=float)
        smooth = mean_filter(x, window=5)
        np.testing.assert_allclose(smooth[10:-10], x[10:-10])


class TestNoise:
    def test_constant_signal_zero_noise(self):
        stats = noise_stats(np.full(100, 0.5))
        assert stats["mean"] == pytest.approx(0.0)
        assert stats["max"] == pytest.approx(0.0)

    def test_noisier_signal_more_noise(self):
        rng = np.random.default_rng(0)
        base = np.full(2000, 0.5)
        quiet = base + 0.001 * rng.standard_normal(2000)
        loud = base + 0.05 * rng.standard_normal(2000)
        assert noise_stats(loud)["mean"] > 10 * noise_stats(quiet)["mean"]

    def test_noise_series_nonnegative(self):
        rng = np.random.default_rng(1)
        resid = noise_series(rng.uniform(0, 1, 100))
        assert np.all(resid >= 0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            noise_stats(np.array([]))

    def test_paper_noise_ratio_regime(self):
        """The Google/Grid ~20x noise gap is measurable by this metric."""
        rng = np.random.default_rng(2)
        grid = 0.9 + 0.0015 * rng.standard_normal(5000)
        google = 0.35 * (1 + 0.1 * rng.standard_normal(5000))
        ratio = noise_stats(google)["mean"] / noise_stats(grid)["mean"]
        assert ratio > 10


class TestAutocorrelation:
    def test_constant_is_zero(self):
        assert autocorrelation(np.full(50, 3.0)) == 0.0

    def test_white_noise_near_zero(self):
        rng = np.random.default_rng(3)
        assert abs(autocorrelation(rng.standard_normal(20000))) < 0.03

    def test_persistent_signal_near_one(self):
        x = np.repeat(np.random.default_rng(4).uniform(0, 1, 20), 50)
        assert autocorrelation(x) > 0.9

    def test_alternating_negative(self):
        x = np.tile([0.0, 1.0], 100)
        assert autocorrelation(x) < -0.9

    def test_lag_validation(self):
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(10), lag=0)
        with pytest.raises(ValueError):
            autocorrelation(np.zeros(3), lag=5)
