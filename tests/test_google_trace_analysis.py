"""Unit tests for GoogleTrace accessors and derived quantities."""

import numpy as np
import pytest

from repro.synth import GoogleConfig, generate_google_trace
from repro.traces import (
    GoogleTrace,
    Table,
    TaskEvent,
    completion_mix,
    job_lengths,
    task_lengths,
)

HOUR = 3600.0


@pytest.fixture(scope="module")
def trace():
    return generate_google_trace(
        horizon=8 * HOUR,
        num_machines=8,
        seed=0,
        tasks_per_hour=150.0,
        config=GoogleConfig(busy_window=None),
    )


class TestAccessors:
    def test_counts(self, trace):
        assert trace.num_jobs == len(trace.jobs)
        assert trace.num_machines == 8
        assert trace.num_tasks > 0
        assert trace.num_tasks <= trace.num_jobs * 1  # single-task stream

    def test_events_of_type(self, trace):
        submits = trace.events_of_type(TaskEvent.SUBMIT)
        assert len(submits) > 0
        assert np.all(submits["event_type"] == int(TaskEvent.SUBMIT))

    def test_machine_events_ordered(self, trace):
        ev = trace.machine_events(0)
        assert np.all(np.diff(ev["time"]) >= 0)
        assert np.all(ev["machine_id"] == 0)

    def test_bad_horizon_rejected(self, trace):
        import dataclasses

        with pytest.raises(ValueError):
            dataclasses.replace(trace, horizon=-1.0)

    def test_wrong_schema_rejected(self, trace):
        import dataclasses

        with pytest.raises(ValueError, match="jobs"):
            dataclasses.replace(trace, jobs=Table({"a": np.zeros(1)}))


class TestDerived:
    def test_task_lengths_positive(self, trace):
        lengths = task_lengths(trace)
        assert lengths.size > 0
        assert np.all(lengths >= 0)

    def test_task_lengths_match_schedule_terminal_gap(self, trace):
        """Cross-check one task's length against its raw events."""
        lengths = task_lengths(trace)
        ev = trace.task_events.sort_by("time")
        etype = np.asarray(ev["event_type"])
        terminal = np.isin(
            etype,
            [
                int(TaskEvent.EVICT),
                int(TaskEvent.FAIL),
                int(TaskEvent.FINISH),
                int(TaskEvent.KILL),
                int(TaskEvent.LOST),
            ],
        )
        # Number of (schedule, terminal) pairs equals the length count.
        n_pairs = int(terminal.sum())
        assert lengths.size == n_pairs

    def test_job_lengths(self, trace):
        lengths = job_lengths(trace)
        assert lengths.size == trace.num_jobs
        assert np.all(lengths >= 0)

    def test_completion_mix_sums(self, trace):
        mix = completion_mix(trace)
        total = sum(
            mix[k] for k in ("finish", "fail", "kill", "evict", "lost")
        )
        assert total == pytest.approx(1.0)
        assert mix["abnormal"] == pytest.approx(1.0 - mix["finish"])

    def test_completion_mix_empty_events(self, trace):
        import dataclasses

        from repro.traces.schema import TASK_EVENT_SCHEMA

        empty = Table(
            {k: np.empty(0, dtype=v) for k, v in TASK_EVENT_SCHEMA.items()},
            schema=TASK_EVENT_SCHEMA,
        )
        silent = dataclasses.replace(trace, task_events=empty)
        mix = completion_mix(silent)
        assert all(v == 0.0 for v in mix.values())
