"""Unit tests for the seasonal predictor and multi-step evaluation."""

import numpy as np
import pytest

from repro.prediction import (
    LastValue,
    SeasonalNaive,
    compare_predictors,
    evaluate_predictor,
)

DAY_SAMPLES = 288  # one day of 5-minute samples


def _diurnal(days=6, noise=0.01, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(days * DAY_SAMPLES)
    return (
        0.5
        + 0.3 * np.sin(2 * np.pi * t / DAY_SAMPLES)
        + noise * rng.standard_normal(t.size)
    )


class TestSeasonalNaive:
    def test_exact_on_pure_period(self):
        signal = np.tile(np.arange(4, dtype=float), 10)
        pred = SeasonalNaive(season=4).predict_series(signal)
        np.testing.assert_allclose(pred[4:], signal[4:])

    def test_fallback_before_full_season(self):
        signal = np.array([1.0, 2.0, 3.0])
        pred = SeasonalNaive(season=10).predict_series(signal)
        np.testing.assert_allclose(pred[1:], [1.0, 2.0])

    def test_scalar_matches_series(self):
        signal = _diurnal(days=3)
        model = SeasonalNaive(season=DAY_SAMPLES)
        series_pred = model.predict_series(signal)
        for i in (50, 300, 700):
            assert series_pred[i] == pytest.approx(
                model.predict(signal[:i])
            )

    def test_beats_last_value_on_diurnal_signal(self):
        signal = _diurnal()
        scores = compare_predictors(
            {"seasonal": SeasonalNaive(season=DAY_SAMPLES), "last": LastValue()},
            signal,
            horizon=12,  # one hour ahead: persistence lags the sine
        )
        by_name = {s.predictor: s.mse for s in scores}
        assert by_name["seasonal"] < by_name["last"]

    def test_useless_on_white_noise(self):
        rng = np.random.default_rng(1)
        signal = 0.5 + 0.1 * rng.standard_normal(2000)
        scores = compare_predictors(
            {"seasonal": SeasonalNaive(season=DAY_SAMPLES), "last": LastValue()},
            signal,
        )
        by_name = {s.predictor: s.mse for s in scores}
        # On structureless load the seasonal trick buys nothing.
        assert by_name["seasonal"] == pytest.approx(
            by_name["last"], rel=0.25
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaive(season=0)


class TestMultiStep:
    def test_horizon_one_matches_default(self):
        signal = _diurnal(days=2)
        a = evaluate_predictor(LastValue(), signal)
        b = evaluate_predictor(LastValue(), signal, horizon=1)
        assert a.mse == b.mse

    def test_error_grows_with_horizon_on_drifting_signal(self):
        signal = _diurnal(days=4, noise=0.0)
        errors = [
            evaluate_predictor(LastValue(), signal, horizon=h).mse
            for h in (1, 6, 24)
        ]
        assert errors[0] < errors[1] < errors[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            evaluate_predictor(LastValue(), np.zeros(100), horizon=0)
        with pytest.raises(ValueError):
            evaluate_predictor(LastValue(), np.zeros(3), horizon=10)

    def test_cloud_harder_at_short_horizon(self):
        """Paper conclusion: noisy Cloud load predicts far worse than
        stable Grid load at the native 5-minute horizon."""
        from repro.synth import generate_grid_host_series

        rng = np.random.default_rng(2)
        cloud = 0.35 * (1 + 0.1 * rng.standard_normal(2000))
        _, grid, _ = generate_grid_host_series(2000 * 300.0, seed=3)
        c = evaluate_predictor(LastValue(), cloud, horizon=1)
        g = evaluate_predictor(LastValue(), grid[:2000], horizon=1)
        assert c.mse > 3 * g.mse

    def test_grid_degrades_with_horizon(self):
        """Step-function Grid load: persistence errors grow as the
        horizon crosses level changes."""
        from repro.synth import generate_grid_host_series

        _, grid, _ = generate_grid_host_series(2000 * 300.0, seed=3)
        short = evaluate_predictor(LastValue(), grid[:2000], horizon=1)
        long = evaluate_predictor(LastValue(), grid[:2000], horizon=12)
        assert long.mse > short.mse
