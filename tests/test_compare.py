"""Unit tests for the high-level Cloud-vs-Grid comparison API."""

import numpy as np
import pytest

from repro.core.compare import compare_systems
from repro.synth.presets import DAY


@pytest.fixture(scope="module")
def comparison(small_workload_module):
    data = small_workload_module
    return compare_systems(
        data.google_jobs,
        {"AuverGrid": data.grid_jobs["AuverGrid"],
         "SHARCNET": data.grid_jobs["SHARCNET"]},
        horizon=data.horizon,
    )


@pytest.fixture(scope="module")
def small_workload_module():
    from repro.experiments.datasets import workload_dataset

    return workload_dataset("small", seed=0)


class TestCompareSystems:
    def test_headline_findings(self, comparison):
        headline = comparison.headline()
        assert headline["cloud_submits_faster"] is True
        assert headline["cloud_more_stable_submission"] is True
        assert headline["cloud_jobs_shorter"] is True

    def test_system_workload_fields(self, comparison):
        cloud = comparison.cloud
        assert cloud.name == "Google"
        assert cloud.submission.avg_per_hour > 100
        assert cloud.mean_job_length > 0
        assert cloud.mean_tasks_per_job >= 1
        assert 0 <= cloud.job_length_cdf(1000.0) <= 1

    def test_grid_names_preserved(self, comparison):
        assert set(comparison.grids) == {"AuverGrid", "SHARCNET"}

    def test_requires_grid(self, small_workload_module):
        with pytest.raises(ValueError):
            compare_systems(small_workload_module.google_jobs, {})

    def test_headline_numbers_consistent(self, comparison):
        headline = comparison.headline()
        low, high = headline["grid_fairness_range"]
        assert low <= high
        assert headline["cloud_fairness"] > high
