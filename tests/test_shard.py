"""Unit tests for the out-of-core sharded table store."""

import numpy as np
import pytest

from repro.core.shard import ShardedTable, ShardWriter, write_table
from repro.core.table import Table


def _table(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "x": rng.standard_normal(n),
            "k": rng.integers(0, 10, n, dtype=np.int64),
        }
    )


def _split(table, sizes):
    """Cut a table into chunk dicts of the given sizes."""
    chunks = []
    start = 0
    for size in sizes:
        chunks.append(
            {name: table[name][start : start + size] for name in table.column_names}
        )
        start += size
    assert start == len(table)
    return chunks


class TestRoundTrip:
    def test_bit_identical(self, tmp_path):
        table = _table(100)
        sharded = write_table(table, tmp_path / "t", shard_rows=7)
        back = sharded.to_table()
        for name in table.column_names:
            np.testing.assert_array_equal(back[name], table[name])
            assert back[name].dtype == table[name].dtype

    def test_shard_sizes(self, tmp_path):
        sharded = write_table(_table(10), tmp_path / "t", shard_rows=3)
        assert sharded.num_shards == 4
        assert sharded.shard_counts == (3, 3, 3, 1)
        assert sharded.num_rows == 10

    def test_single_row_shards(self, tmp_path):
        table = _table(5)
        sharded = write_table(table, tmp_path / "t", shard_rows=1)
        assert sharded.num_shards == 5
        np.testing.assert_array_equal(sharded.to_table()["x"], table["x"])

    def test_empty_table(self, tmp_path):
        table = _table(0)
        sharded = write_table(table, tmp_path / "t", shard_rows=4)
        assert sharded.num_shards == 0
        assert sharded.num_rows == 0
        back = sharded.to_table()
        assert len(back) == 0
        assert back["x"].dtype == np.float64
        assert back["k"].dtype == np.int64

    def test_column_subset(self, tmp_path):
        table = _table(20)
        sharded = write_table(table, tmp_path / "t", shard_rows=8)
        shard = sharded.shard(0, columns=("x",))
        assert shard.column_names == ("x",)
        with pytest.raises(KeyError):
            sharded.shard(0, columns=("nope",))


class TestChunkInvariance:
    def test_construction_invariant_to_chunking(self, tmp_path):
        table = _table(50)
        splits = [(50,), (1,) * 50, (3, 17, 30), (49, 1), (10, 0, 40)]
        references = None
        for i, sizes in enumerate(splits):
            schema = {n: table[n].dtype for n in table.column_names}
            with ShardWriter(tmp_path / f"t{i}", schema, shard_rows=7) as w:
                for chunk in _split(table, sizes):
                    w.append(chunk)
            sharded = ShardedTable.open(tmp_path / f"t{i}")
            per_shard = [
                {n: np.array(s[n]) for n in s.column_names}
                for s in sharded.iter_shards()
            ]
            if references is None:
                references = per_shard
            else:
                assert len(per_shard) == len(references)
                for got, want in zip(per_shard, references):
                    for name in want:
                        np.testing.assert_array_equal(got[name], want[name])


class TestGroupAligned:
    def test_groups_never_split(self, tmp_path):
        ids = np.repeat(np.arange(6, dtype=np.int64), [4, 2, 5, 1, 3, 5])
        table = Table({"machine_id": ids, "v": np.arange(ids.size) * 0.5})
        sharded = write_table(
            table, tmp_path / "t", shard_rows=6, group_by="machine_id"
        )
        seen = {}
        for i, shard in enumerate(sharded.iter_shards()):
            for mid in np.unique(np.asarray(shard["machine_id"])):
                assert int(mid) not in seen, "group split across shards"
                seen[int(mid)] = i
        back = sharded.to_table()
        np.testing.assert_array_equal(back["machine_id"], ids)
        np.testing.assert_array_equal(back["v"], table["v"])

    def test_oversized_group_gets_own_shard(self, tmp_path):
        ids = np.repeat([0, 1, 2], [2, 9, 2]).astype(np.int64)
        table = Table({"machine_id": ids, "v": np.ones(ids.size)})
        sharded = write_table(
            table, tmp_path / "t", shard_rows=4, group_by="machine_id"
        )
        counts = [
            np.unique(np.asarray(s["machine_id"])).size
            for s in sharded.iter_shards()
        ]
        assert all(c >= 1 for c in counts)
        np.testing.assert_array_equal(sharded.to_table()["machine_id"], ids)


class TestValidation:
    def test_schema_mismatch_rejected(self, tmp_path):
        schema = {"x": np.dtype(np.float64)}
        with ShardWriter(tmp_path / "t", schema, shard_rows=4) as w:
            with pytest.raises(ValueError):
                w.append({"y": np.ones(3)})
            w.append({"x": np.ones(3)})

    def test_abort_leaves_no_destination(self, tmp_path):
        schema = {"x": np.dtype(np.float64)}
        try:
            with ShardWriter(tmp_path / "t", schema, shard_rows=4) as w:
                w.append({"x": np.ones(10)})
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not (tmp_path / "t").exists()

    def test_open_rejects_bad_version(self, tmp_path):
        sharded = write_table(_table(4), tmp_path / "t", shard_rows=2)
        manifest = sharded.root / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"version": 1', '"version": 99'))
        with pytest.raises(ValueError, match="version"):
            ShardedTable.open(sharded.root)

    def test_map_columns_streams_lazily(self, tmp_path):
        table = _table(30)
        sharded = write_table(table, tmp_path / "t", shard_rows=10)
        gen = sharded.map_columns(lambda s: float(np.sum(s["x"])))
        sums = list(gen)
        assert sums == pytest.approx(
            [float(np.sum(c["x"])) for c in _split(table, (10, 10, 10))]
        )
