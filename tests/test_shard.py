"""Unit tests for the out-of-core sharded table store."""

import json

import numpy as np
import pytest

from repro.core.shard import (
    ShardedTable,
    ShardIntegrityError,
    ShardWriter,
    write_table,
)
from repro.core.table import Table


def _table(n=100, seed=0):
    rng = np.random.default_rng(seed)
    return Table(
        {
            "x": rng.standard_normal(n),
            "k": rng.integers(0, 10, n, dtype=np.int64),
        }
    )


def _split(table, sizes):
    """Cut a table into chunk dicts of the given sizes."""
    chunks = []
    start = 0
    for size in sizes:
        chunks.append(
            {name: table[name][start : start + size] for name in table.column_names}
        )
        start += size
    assert start == len(table)
    return chunks


class TestRoundTrip:
    def test_bit_identical(self, tmp_path):
        table = _table(100)
        sharded = write_table(table, tmp_path / "t", shard_rows=7)
        back = sharded.to_table()
        for name in table.column_names:
            np.testing.assert_array_equal(back[name], table[name])
            assert back[name].dtype == table[name].dtype

    def test_shard_sizes(self, tmp_path):
        sharded = write_table(_table(10), tmp_path / "t", shard_rows=3)
        assert sharded.num_shards == 4
        assert sharded.shard_counts == (3, 3, 3, 1)
        assert sharded.num_rows == 10

    def test_single_row_shards(self, tmp_path):
        table = _table(5)
        sharded = write_table(table, tmp_path / "t", shard_rows=1)
        assert sharded.num_shards == 5
        np.testing.assert_array_equal(sharded.to_table()["x"], table["x"])

    def test_empty_table(self, tmp_path):
        table = _table(0)
        sharded = write_table(table, tmp_path / "t", shard_rows=4)
        assert sharded.num_shards == 0
        assert sharded.num_rows == 0
        back = sharded.to_table()
        assert len(back) == 0
        assert back["x"].dtype == np.float64
        assert back["k"].dtype == np.int64

    def test_column_subset(self, tmp_path):
        table = _table(20)
        sharded = write_table(table, tmp_path / "t", shard_rows=8)
        shard = sharded.shard(0, columns=("x",))
        assert shard.column_names == ("x",)
        with pytest.raises(KeyError):
            sharded.shard(0, columns=("nope",))


class TestChunkInvariance:
    def test_construction_invariant_to_chunking(self, tmp_path):
        table = _table(50)
        splits = [(50,), (1,) * 50, (3, 17, 30), (49, 1), (10, 0, 40)]
        references = None
        for i, sizes in enumerate(splits):
            schema = {n: table[n].dtype for n in table.column_names}
            with ShardWriter(tmp_path / f"t{i}", schema, shard_rows=7) as w:
                for chunk in _split(table, sizes):
                    w.append(chunk)
            sharded = ShardedTable.open(tmp_path / f"t{i}")
            per_shard = [
                {n: np.array(s[n]) for n in s.column_names}
                for s in sharded.iter_shards()
            ]
            if references is None:
                references = per_shard
            else:
                assert len(per_shard) == len(references)
                for got, want in zip(per_shard, references):
                    for name in want:
                        np.testing.assert_array_equal(got[name], want[name])


class TestGroupAligned:
    def test_groups_never_split(self, tmp_path):
        ids = np.repeat(np.arange(6, dtype=np.int64), [4, 2, 5, 1, 3, 5])
        table = Table({"machine_id": ids, "v": np.arange(ids.size) * 0.5})
        sharded = write_table(
            table, tmp_path / "t", shard_rows=6, group_by="machine_id"
        )
        seen = {}
        for i, shard in enumerate(sharded.iter_shards()):
            for mid in np.unique(np.asarray(shard["machine_id"])):
                assert int(mid) not in seen, "group split across shards"
                seen[int(mid)] = i
        back = sharded.to_table()
        np.testing.assert_array_equal(back["machine_id"], ids)
        np.testing.assert_array_equal(back["v"], table["v"])

    def test_oversized_group_gets_own_shard(self, tmp_path):
        ids = np.repeat([0, 1, 2], [2, 9, 2]).astype(np.int64)
        table = Table({"machine_id": ids, "v": np.ones(ids.size)})
        sharded = write_table(
            table, tmp_path / "t", shard_rows=4, group_by="machine_id"
        )
        counts = [
            np.unique(np.asarray(s["machine_id"])).size
            for s in sharded.iter_shards()
        ]
        assert all(c >= 1 for c in counts)
        np.testing.assert_array_equal(sharded.to_table()["machine_id"], ids)


class TestValidation:
    def test_schema_mismatch_rejected(self, tmp_path):
        schema = {"x": np.dtype(np.float64)}
        with ShardWriter(tmp_path / "t", schema, shard_rows=4) as w:
            with pytest.raises(ValueError):
                w.append({"y": np.ones(3)})
            w.append({"x": np.ones(3)})

    def test_abort_leaves_no_destination(self, tmp_path):
        schema = {"x": np.dtype(np.float64)}
        try:
            with ShardWriter(tmp_path / "t", schema, shard_rows=4) as w:
                w.append({"x": np.ones(10)})
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not (tmp_path / "t").exists()

    def test_open_rejects_bad_version(self, tmp_path):
        sharded = write_table(_table(4), tmp_path / "t", shard_rows=2)
        manifest = sharded.root / "manifest.json"
        manifest.write_text(manifest.read_text().replace('"version": 2', '"version": 99'))
        with pytest.raises(ValueError, match="version"):
            ShardedTable.open(sharded.root)

    def test_map_columns_streams_lazily(self, tmp_path):
        table = _table(30)
        sharded = write_table(table, tmp_path / "t", shard_rows=10)
        gen = sharded.map_columns(lambda s: float(np.sum(s["x"])))
        sums = list(gen)
        assert sums == pytest.approx(
            [float(np.sum(c["x"])) for c in _split(table, (10, 10, 10))]
        )


def _flip_last_byte(path):
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF
    path.write_bytes(bytes(data))


class TestIntegrity:
    """Manifest digests and the none/lazy/full verification modes."""

    def test_manifest_records_per_column_digests(self, tmp_path):
        sharded = write_table(_table(10), tmp_path / "t", shard_rows=3)
        manifest = json.loads((sharded.root / "manifest.json").read_text())
        assert manifest["version"] == 2
        assert len(manifest["digests"]) == sharded.num_shards
        for entry in manifest["digests"]:
            assert set(entry) == {"x", "k"}
            assert all(len(d) == 64 for d in entry.values())

    def test_unknown_verify_mode_rejected(self, tmp_path):
        sharded = write_table(_table(4), tmp_path / "t", shard_rows=2)
        with pytest.raises(ValueError, match="verify mode"):
            ShardedTable.open(sharded.root, verify="paranoid")

    def test_corrupt_shard_detected_lazily(self, tmp_path):
        # A last-byte flip keeps the .npy header intact, so it slips past
        # the structural open-time check and must be caught by digests.
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        _flip_last_byte(sharded.root / "shard-00001" / "x.npy")
        reopened = ShardedTable.open(sharded.root, verify="lazy")
        reopened.shard(0)  # clean shard reads fine
        with pytest.raises(ShardIntegrityError, match="digest mismatch") as e:
            reopened.shard(1)
        assert e.value.shard == 1
        assert e.value.column == "x"
        assert e.value.root == str(sharded.root)

    def test_full_verify_fails_at_open(self, tmp_path):
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        _flip_last_byte(sharded.root / "shard-00002" / "k.npy")
        with pytest.raises(ShardIntegrityError, match="digest mismatch"):
            ShardedTable.open(sharded.root, verify="full")

    def test_verify_none_skips_digest_checks(self, tmp_path):
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        _flip_last_byte(sharded.root / "shard-00001" / "x.npy")
        reopened = ShardedTable.open(sharded.root, verify="none")
        assert len(reopened.shard(1)["x"]) == 4  # reads the corrupt bytes

    def test_verified_shard_checked_once(self, tmp_path):
        sharded = write_table(_table(8), tmp_path / "t", shard_rows=4)
        reopened = ShardedTable.open(sharded.root, verify="lazy")
        reopened.shard(0)
        # Corruption after the first verified read goes unnoticed by the
        # same instance (digests memoized) but is caught by a fresh open.
        _flip_last_byte(sharded.root / "shard-00000" / "x.npy")
        reopened.shard(0)
        with pytest.raises(ShardIntegrityError):
            ShardedTable.open(sharded.root, verify="full")

    def test_v1_manifest_still_opens(self, tmp_path):
        # Old tables (no digests) keep working; digest checks degrade to
        # no-ops while structural validation still applies.
        sharded = write_table(_table(10), tmp_path / "t", shard_rows=3)
        manifest_path = sharded.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["version"] = 1
        del manifest["digests"]
        manifest_path.write_text(json.dumps(manifest))
        reopened = ShardedTable.open(sharded.root, verify="full")
        np.testing.assert_array_equal(
            reopened.to_table()["x"], sharded.to_table()["x"]
        )

    def test_digest_shard_count_mismatch_rejected(self, tmp_path):
        sharded = write_table(_table(10), tmp_path / "t", shard_rows=3)
        manifest_path = sharded.root / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["digests"] = manifest["digests"][:-1]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ShardIntegrityError, match="digest entries"):
            ShardedTable.open(sharded.root)


class TestStructuralValidation:
    """Open must not trust manifest.json blindly (regression tests)."""

    def test_hand_truncated_table_rejected(self, tmp_path):
        # Deleting the tail shard leaves a manifest promising more rows
        # than the tree holds; open must refuse rather than serve a
        # silently shorter table.
        import shutil

        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        shutil.rmtree(sharded.root / "shard-00002")
        with pytest.raises(ShardIntegrityError, match="directory missing"):
            ShardedTable.open(sharded.root)

    def test_missing_column_file_rejected(self, tmp_path):
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        (sharded.root / "shard-00001" / "k.npy").unlink()
        with pytest.raises(ShardIntegrityError, match="column file missing"):
            ShardedTable.open(sharded.root)

    def test_row_count_mismatch_rejected(self, tmp_path):
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        path = sharded.root / "shard-00001" / "x.npy"
        np.save(path.with_suffix(""), np.zeros(2))  # np.save appends .npy
        with pytest.raises(ShardIntegrityError, match="row-count mismatch"):
            ShardedTable.open(sharded.root)

    def test_torn_header_rejected(self, tmp_path):
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        path = sharded.root / "shard-00000" / "x.npy"
        path.write_bytes(path.read_bytes()[:10])
        with pytest.raises(ShardIntegrityError, match="unreadable column"):
            ShardedTable.open(sharded.root)

    def test_structural_check_applies_in_verify_none(self, tmp_path):
        sharded = write_table(_table(12), tmp_path / "t", shard_rows=4)
        (sharded.root / "shard-00000" / "x.npy").unlink()
        with pytest.raises(ShardIntegrityError):
            ShardedTable.open(sharded.root, verify="none")
