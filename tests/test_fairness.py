"""Unit tests for Jain fairness and submission-rate statistics."""

import numpy as np
import pytest

from repro.core.fairness import (
    hourly_counts,
    jain_fairness,
    submission_rate_stats,
)


class TestJainFairness:
    def test_equal_allocation_is_one(self):
        assert jain_fairness(np.full(10, 7.0)) == pytest.approx(1.0)

    def test_single_user_hoard(self):
        # One nonzero of n -> fairness = 1/n.
        x = np.zeros(10)
        x[0] = 5.0
        assert jain_fairness(x) == pytest.approx(0.1)

    def test_all_zero_is_one(self):
        assert jain_fairness(np.zeros(4)) == 1.0

    def test_bounds(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 10, 50)
        f = jain_fairness(x)
        assert 1 / 50 <= f <= 1.0

    def test_scale_invariant(self):
        x = np.array([1.0, 2.0, 3.0])
        assert jain_fairness(x) == pytest.approx(jain_fairness(10 * x))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness(np.array([-1.0, 1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            jain_fairness(np.array([]))


class TestHourlyCounts:
    def test_binning(self):
        times = np.array([0.0, 10.0, 3600.0, 7100.0, 7200.0])
        counts = hourly_counts(times, horizon=3 * 3600.0)
        np.testing.assert_array_equal(counts, [2, 2, 1])

    def test_total_preserved(self):
        rng = np.random.default_rng(1)
        times = rng.uniform(0, 86400, 500)
        counts = hourly_counts(times, horizon=86400.0)
        assert counts.sum() == 500
        assert len(counts) == 24

    def test_negative_times_rejected(self):
        with pytest.raises(ValueError):
            hourly_counts(np.array([-1.0]))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            hourly_counts(np.array([]))

    def test_submit_at_horizon_clamped(self):
        counts = hourly_counts(np.array([3600.0]), horizon=3600.0)
        assert counts.sum() == 1


class TestSubmissionRateStats:
    def test_poisson_stream_near_one_fairness(self):
        rng = np.random.default_rng(2)
        # 500/hour Poisson for 3 days.
        times = np.sort(rng.uniform(0, 3 * 86400, 500 * 72))
        stats = submission_rate_stats(times, horizon=3 * 86400.0)
        assert stats.avg_per_hour == pytest.approx(500, rel=0.05)
        assert stats.fairness > 0.95

    def test_bursty_stream_low_fairness(self):
        # Everything in one hour of a week.
        times = np.linspace(0, 3000, 1000)
        stats = submission_rate_stats(times, horizon=7 * 86400.0)
        assert stats.fairness < 0.02
        assert stats.min_per_hour == 0

    def test_fields(self):
        stats = submission_rate_stats(np.array([0.0, 1.0]), horizon=7200.0)
        assert stats.max_per_hour == 2
        assert stats.min_per_hour == 0
        assert stats.avg_per_hour == 1.0
