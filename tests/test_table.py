"""Unit tests for the columnar Table container."""

import numpy as np
import pytest

from repro.core.table import Table, concat_tables


def _table() -> Table:
    return Table(
        {
            "a": np.array([3, 1, 2]),
            "b": np.array([30.0, 10.0, 20.0]),
        }
    )


class TestConstruction:
    def test_basic(self):
        t = _table()
        assert len(t) == 3
        assert t.num_rows == 3
        assert set(t.column_names) == {"a", "b"}

    def test_unequal_lengths_rejected(self):
        with pytest.raises(ValueError, match="unequal"):
            Table({"a": [1, 2], "b": [1.0]})

    def test_non_1d_rejected(self):
        with pytest.raises(ValueError, match="1-D"):
            Table({"a": np.zeros((2, 2))})

    def test_schema_enforced(self):
        schema = {"a": np.dtype(np.int64)}
        t = Table({"a": [1.0, 2.0]}, schema=schema)
        assert t["a"].dtype == np.int64

    def test_schema_mismatch_rejected(self):
        schema = {"a": np.dtype(np.int64), "missing": np.dtype(np.int64)}
        with pytest.raises(ValueError, match="missing"):
            Table({"a": [1]}, schema=schema)

    def test_extra_column_rejected_by_schema(self):
        schema = {"a": np.dtype(np.int64)}
        with pytest.raises(ValueError, match="extra"):
            Table({"a": [1], "b": [2]}, schema=schema)

    def test_empty_table(self):
        t = Table({"a": np.empty(0)})
        assert len(t) == 0


class TestAccess:
    def test_getitem(self):
        t = _table()
        np.testing.assert_array_equal(t["a"], [3, 1, 2])

    def test_contains_and_iter(self):
        t = _table()
        assert "a" in t
        assert "zzz" not in t
        assert sorted(t) == ["a", "b"]

    def test_row(self):
        t = _table()
        assert t.row(1) == {"a": 1, "b": 10.0}

    def test_columns_returns_copy_of_mapping(self):
        t = _table()
        cols = t.columns()
        cols["c"] = np.zeros(3)
        assert "c" not in t

    def test_repr_mentions_rows(self):
        assert "rows=3" in repr(_table())

    def test_equality(self):
        assert _table() == _table()
        assert _table() != _table().select(np.array([0, 1]))
        assert _table().__eq__(42) is NotImplemented


class TestTransforms:
    def test_select_mask(self):
        t = _table()
        sub = t.select(t["a"] > 1)
        assert len(sub) == 2
        np.testing.assert_array_equal(sub["a"], [3, 2])

    def test_select_indices(self):
        sub = _table().select(np.array([2, 0]))
        np.testing.assert_array_equal(sub["a"], [2, 3])

    def test_sort_by(self):
        t = _table().sort_by("a")
        np.testing.assert_array_equal(t["a"], [1, 2, 3])
        np.testing.assert_array_equal(t["b"], [10.0, 20.0, 30.0])

    def test_sort_by_requires_column(self):
        with pytest.raises(ValueError):
            _table().sort_by()

    def test_sort_by_multiple_keys_stable(self):
        t = Table({"k": [1, 1, 0], "v": [5, 4, 3]})
        s = t.sort_by("k", "v")
        np.testing.assert_array_equal(s["v"], [3, 4, 5])

    def test_with_columns(self):
        t = _table().with_columns(c=np.array([1, 1, 1]))
        assert "c" in t
        assert len(t) == 3

    def test_with_columns_replaces(self):
        t = _table().with_columns(a=np.array([9, 9, 9]))
        np.testing.assert_array_equal(t["a"], [9, 9, 9])

    def test_drop(self):
        t = _table().drop("b")
        assert t.column_names == ("a",)

    def test_drop_unknown_raises(self):
        with pytest.raises(KeyError):
            _table().drop("zzz")

    def test_head(self):
        assert len(_table().head(2)) == 2
        assert len(_table().head(100)) == 3


class TestGrouping:
    def test_group_indices(self):
        t = Table({"k": np.array([2, 1, 2, 1, 3])})
        groups = t.group_indices("k")
        assert set(groups) == {1, 2, 3}
        np.testing.assert_array_equal(sorted(groups[1]), [1, 3])
        np.testing.assert_array_equal(sorted(groups[2]), [0, 2])

    def test_group_indices_empty(self):
        t = Table({"k": np.empty(0, dtype=np.int64)})
        assert t.group_indices("k") == {}

    def test_groups_partition_all_rows(self):
        t = Table({"k": np.array([5, 5, 5, 7])})
        groups = t.group_indices("k")
        total = sum(len(v) for v in groups.values())
        assert total == len(t)


class TestConcat:
    def test_concat(self):
        t = concat_tables([_table(), _table()])
        assert len(t) == 6

    def test_concat_empty_list_rejected(self):
        with pytest.raises(ValueError):
            concat_tables([])

    def test_concat_mismatched_columns_rejected(self):
        with pytest.raises(ValueError, match="same columns"):
            concat_tables([_table(), _table().drop("b")])
