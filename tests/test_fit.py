"""Unit tests for distribution fitting and model selection."""

import numpy as np
import pytest

from repro.core.fit import (
    CANDIDATE_FAMILIES,
    fit_best,
    fit_bounded_pareto,
    fit_exponential,
    fit_lognormal,
    fit_weibull,
    ks_statistic,
)


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestKsStatistic:
    def test_perfect_fit_small_ks(self, rng):
        sample = rng.uniform(0, 1, 5000)
        ks = ks_statistic(sample, lambda x: np.clip(x, 0, 1))
        assert ks < 0.03

    def test_wrong_model_large_ks(self, rng):
        sample = rng.uniform(0, 1, 5000)
        ks = ks_statistic(sample, lambda x: np.clip(x, 0, 1) ** 4)
        assert ks > 0.3


class TestExponentialFit:
    def test_recovers_mean(self, rng):
        sample = rng.exponential(50.0, 20000)
        fit = fit_exponential(sample)
        assert fit.params["mean"] == pytest.approx(50.0, rel=0.05)
        assert fit.ks < 0.02
        assert fit.distribution is not None

    def test_rejects_bad_sample(self):
        with pytest.raises(ValueError):
            fit_exponential(np.array([1.0]))
        with pytest.raises(ValueError):
            fit_exponential(np.array([1.0, -1.0]))


class TestLognormalFit:
    def test_recovers_params(self, rng):
        sample = rng.lognormal(np.log(100.0), 1.2, 20000)
        fit = fit_lognormal(sample)
        assert fit.params["median"] == pytest.approx(100.0, rel=0.08)
        assert fit.params["sigma"] == pytest.approx(1.2, abs=0.05)
        assert fit.ks < 0.02


class TestWeibullFit:
    def test_recovers_shape(self, rng):
        from scipy import stats

        sample = stats.weibull_min(c=1.5, scale=10.0).rvs(
            20000, random_state=rng
        )
        fit = fit_weibull(sample)
        assert fit.params["shape"] == pytest.approx(1.5, abs=0.1)
        assert fit.ks < 0.02


class TestBoundedParetoFit:
    def test_recovers_alpha(self, rng):
        from repro.core.distributions import BoundedPareto

        true = BoundedPareto(alpha=0.6, low=1.0, high=1e5)
        sample = true.sample(rng, 50000)
        fit = fit_bounded_pareto(sample)
        assert fit.params["alpha"] == pytest.approx(0.6, abs=0.05)
        assert fit.ks < 0.02

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            fit_bounded_pareto(np.full(10, 5.0))


class TestModelSelection:
    def test_selects_true_family(self, rng):
        cases = {
            "exponential": rng.exponential(10.0, 8000),
            "lognormal": rng.lognormal(2.0, 1.5, 8000),
        }
        for family, sample in cases.items():
            fits = fit_best(sample)
            assert fits[0].family == family, (
                f"expected {family}, got {[f.family for f in fits]}"
            )

    def test_results_sorted_by_aic(self, rng):
        fits = fit_best(rng.lognormal(0, 1, 2000))
        aics = [f.aic for f in fits]
        assert aics == sorted(aics)

    def test_unknown_family_rejected(self, rng):
        with pytest.raises(KeyError):
            fit_best(rng.exponential(1.0, 100), families=("bogus",))

    def test_families_registry_complete(self):
        assert set(CANDIDATE_FAMILIES) == {
            "exponential",
            "lognormal",
            "weibull",
            "bounded_pareto",
        }

    def test_closes_loop_with_synthesis(self, rng):
        """Fitted models are sampleable and reproduce the shape."""
        sample = rng.lognormal(np.log(300.0), 1.0, 10000)
        best = fit_best(sample)[0]
        assert best.distribution is not None
        resampled = best.distribution.sample(rng, 10000)
        assert np.median(resampled) == pytest.approx(
            np.median(sample), rel=0.1
        )

    def test_google_task_lengths_are_not_exponential(self, rng):
        """The paper's heavy-tailed task lengths reject the memoryless fit."""
        from repro.synth.presets import GOOGLE_TASK_LENGTH

        sample = GOOGLE_TASK_LENGTH.sample(rng, 20000)
        fits = {f.family: f for f in fit_best(sample)}
        assert fits["exponential"].ks > 3 * fits["lognormal"].ks
