"""Unit tests for the machine-fleet generator."""

import numpy as np
import pytest

from repro.synth.machines import DEFAULT_FLEET, FleetConfig, generate_machines
from repro.traces.schema import MACHINE_TABLE_SCHEMA


class TestFleetConfig:
    def test_default_valid(self):
        assert abs(sum(DEFAULT_FLEET.cpu_weights) - 1) < 1e-9

    def test_bad_weights_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(cpu_levels=(0.5, 1.0), cpu_weights=(0.5, 0.6))

    def test_level_above_one_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(cpu_levels=(0.5, 1.5), cpu_weights=(0.5, 0.5))

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(cpu_levels=(1.0,), cpu_weights=(0.5, 0.5))


class TestGenerateMachines:
    def test_schema(self, rng):
        machines = generate_machines(20, rng)
        assert set(machines.column_names) == set(MACHINE_TABLE_SCHEMA)
        assert len(machines) == 20

    def test_ids_unique(self, rng):
        machines = generate_machines(50, rng)
        assert len(np.unique(machines["machine_id"])) == 50

    def test_capacities_from_levels(self, rng):
        machines = generate_machines(200, rng)
        assert set(np.unique(machines["cpu_capacity"])) <= {0.25, 0.5, 1.0}
        assert set(np.unique(machines["mem_capacity"])) <= {
            0.25,
            0.5,
            0.75,
            1.0,
        }
        assert set(np.unique(machines["page_cache_capacity"])) == {1.0}

    def test_weights_approximated(self, rng):
        machines = generate_machines(5000, rng)
        frac_half = np.count_nonzero(machines["cpu_capacity"] == 0.5) / 5000
        assert frac_half == pytest.approx(0.62, abs=0.04)

    def test_correlation_tilts_memory(self):
        rng = np.random.default_rng(0)
        machines = generate_machines(5000, rng, FleetConfig())
        big = machines.select(machines["cpu_capacity"] == 1.0)
        small = machines.select(machines["cpu_capacity"] == 0.25)
        assert big["mem_capacity"].mean() > small["mem_capacity"].mean()

    def test_uncorrelated_mode(self):
        rng = np.random.default_rng(1)
        config = FleetConfig(correlate_cpu_mem=False)
        machines = generate_machines(100, rng, config)
        assert len(machines) == 100

    def test_zero_machines_rejected(self, rng):
        with pytest.raises(ValueError):
            generate_machines(0, rng)

    def test_deterministic_given_seed(self):
        a = generate_machines(30, np.random.default_rng(5))
        b = generate_machines(30, np.random.default_rng(5))
        assert a == b
