"""Unit tests for the distribution toolkit."""

import numpy as np
import pytest

from repro.core.distributions import (
    BoundedPareto,
    Deterministic,
    Exponential,
    HyperExponential,
    LogNormal,
    Mixture,
    Uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestDeterministic:
    def test_sample(self, rng):
        d = Deterministic(5.0)
        assert np.all(d.sample(rng, 10) == 5.0)
        assert d.mean() == 5.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Deterministic(-1.0)


class TestExponential:
    def test_mean(self, rng):
        d = Exponential(100.0)
        sample = d.sample(rng, 100_000)
        assert sample.mean() == pytest.approx(100.0, rel=0.02)
        assert d.mean() == 100.0

    def test_positive(self, rng):
        assert np.all(Exponential(1.0).sample(rng, 1000) >= 0)

    def test_bad_mean(self):
        with pytest.raises(ValueError):
            Exponential(0.0)


class TestUniform:
    def test_bounds(self, rng):
        d = Uniform(2.0, 4.0)
        sample = d.sample(rng, 1000)
        assert sample.min() >= 2.0 and sample.max() < 4.0
        assert d.mean() == 3.0

    def test_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(4.0, 2.0)


class TestLogNormal:
    def test_median(self, rng):
        d = LogNormal(median=100.0, sigma=1.0)
        sample = d.sample(rng, 100_000)
        assert np.median(sample) == pytest.approx(100.0, rel=0.03)

    def test_analytic_mean(self, rng):
        d = LogNormal(median=10.0, sigma=0.5)
        sample = d.sample(rng, 200_000)
        assert sample.mean() == pytest.approx(d.mean(), rel=0.02)

    def test_truncation(self, rng):
        d = LogNormal(median=100.0, sigma=2.0, low=10.0, high=1000.0)
        sample = d.sample(rng, 5000)
        assert sample.min() >= 10.0
        assert sample.max() <= 1000.0

    def test_bad_params(self):
        with pytest.raises(ValueError):
            LogNormal(median=0.0, sigma=1.0)
        with pytest.raises(ValueError):
            LogNormal(median=1.0, sigma=1.0, low=5.0, high=2.0)


class TestBoundedPareto:
    def test_bounds(self, rng):
        d = BoundedPareto(alpha=0.5, low=1.0, high=100.0)
        sample = d.sample(rng, 10_000)
        assert sample.min() >= 1.0
        assert sample.max() <= 100.0

    def test_analytic_mean(self, rng):
        d = BoundedPareto(alpha=0.35, low=1.0, high=1e5)
        sample = d.sample(rng, 400_000)
        assert sample.mean() == pytest.approx(d.mean(), rel=0.02)

    def test_alpha_one_mean(self, rng):
        d = BoundedPareto(alpha=1.0, low=1.0, high=100.0)
        sample = d.sample(rng, 400_000)
        assert sample.mean() == pytest.approx(d.mean(), rel=0.02)

    def test_heavy_tail(self, rng):
        # Smaller alpha -> larger mean for the same bounds.
        heavy = BoundedPareto(alpha=0.3, low=1.0, high=1e6)
        light = BoundedPareto(alpha=1.5, low=1.0, high=1e6)
        assert heavy.mean() > light.mean()

    def test_bad_params(self):
        with pytest.raises(ValueError):
            BoundedPareto(alpha=0.0, low=1.0, high=2.0)
        with pytest.raises(ValueError):
            BoundedPareto(alpha=1.0, low=2.0, high=1.0)


class TestHyperExponential:
    def test_mean(self, rng):
        d = HyperExponential(means=(1.0, 100.0), weights=(0.9, 0.1))
        sample = d.sample(rng, 300_000)
        assert d.mean() == pytest.approx(10.9)
        assert sample.mean() == pytest.approx(10.9, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            HyperExponential(means=(1.0,), weights=(0.5,))
        with pytest.raises(ValueError):
            HyperExponential(means=(), weights=())
        with pytest.raises(ValueError):
            HyperExponential(means=(1.0, -2.0), weights=(0.5, 0.5))


class TestMixture:
    def test_mean(self, rng):
        m = Mixture(
            [Deterministic(1.0), Deterministic(10.0)], [0.5, 0.5]
        )
        sample = m.sample(rng, 100_000)
        assert sample.mean() == pytest.approx(5.5, rel=0.02)
        assert m.mean() == pytest.approx(5.5)

    def test_components_respected(self, rng):
        m = Mixture([Uniform(0.0, 1.0), Uniform(10.0, 11.0)], [0.3, 0.7])
        sample = m.sample(rng, 10_000)
        in_low = np.count_nonzero(sample < 1.0) / sample.size
        assert in_low == pytest.approx(0.3, abs=0.02)

    def test_validation(self):
        with pytest.raises(ValueError):
            Mixture([Deterministic(1.0)], [0.5])
        with pytest.raises(ValueError):
            Mixture([], [])

    def test_reproducible(self):
        m = Mixture([Exponential(5.0), Exponential(50.0)], [0.5, 0.5])
        a = m.sample(np.random.default_rng(3), 100)
        b = m.sample(np.random.default_rng(3), 100)
        np.testing.assert_array_equal(a, b)
