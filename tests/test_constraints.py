"""Unit and integration tests for placement constraints."""

import numpy as np
import pytest

from repro.sim import ClusterSimulator, SimConfig
from repro.sim.constraints import (
    Constraint,
    ConstraintModel,
    generate_attribute_matrix,
)
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

HOUR = 3600.0


class TestConstraint:
    def test_eq(self):
        attrs = np.array([[0.0], [1.0], [2.0]])
        mask = Constraint(0, "eq", 1.0).satisfied_by(attrs)
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_ne(self):
        attrs = np.array([[0.0], [1.0]])
        mask = Constraint(0, "ne", 0.0).satisfied_by(attrs)
        np.testing.assert_array_equal(mask, [False, True])

    def test_ge_le(self):
        attrs = np.array([[0.0], [1.0], [2.0]])
        np.testing.assert_array_equal(
            Constraint(0, "ge", 1.0).satisfied_by(attrs), [False, True, True]
        )
        np.testing.assert_array_equal(
            Constraint(0, "le", 1.0).satisfied_by(attrs), [True, True, False]
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            Constraint(0, "bogus", 1.0)
        with pytest.raises(ValueError):
            Constraint(-1, "eq", 1.0)


class TestGenerateAttributes:
    def test_shape_and_range(self, rng):
        attrs = generate_attribute_matrix(10, rng, 4, 3)
        assert attrs.shape == (10, 4)
        assert attrs.min() >= 0 and attrs.max() <= 2

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            generate_attribute_matrix(0, rng)
        with pytest.raises(ValueError):
            generate_attribute_matrix(5, rng, values_per_attribute=1)


class TestConstraintModel:
    def test_mask_all_true_for_empty(self, rng):
        model = ConstraintModel(generate_attribute_matrix(6, rng))
        assert model.satisfying_mask(()).all()

    def test_mask_intersects(self, rng):
        attrs = np.array([[0.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        model = ConstraintModel(attrs)
        mask = model.satisfying_mask(
            (Constraint(0, "eq", 0.0), Constraint(1, "eq", 1.0))
        )
        np.testing.assert_array_equal(mask, [False, True, False])

    def test_sampled_constraints_satisfiable(self, rng):
        model = ConstraintModel(
            generate_attribute_matrix(20, rng), constraint_prob=1.0
        )
        for _ in range(50):
            constraints = model.sample_constraints(rng)
            assert constraints  # prob 1 -> always at least one
            mask = model.satisfying_mask(constraints)
            # eq constraints draw present values, so eq-only tuples are
            # always satisfiable; mixed tuples may be empty but mask math
            # must still work.
            assert mask.dtype == bool

    def test_zero_prob_never_constrains(self, rng):
        model = ConstraintModel(
            generate_attribute_matrix(5, rng), constraint_prob=0.0
        )
        assert model.sample_constraints(rng) == ()

    def test_out_of_range_attribute_rejected(self, rng):
        model = ConstraintModel(generate_attribute_matrix(5, rng, 2))
        with pytest.raises(ValueError, match="attribute"):
            model.satisfying_mask((Constraint(7, "eq", 0.0),))

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            ConstraintModel(np.zeros(5))  # 1-D
        with pytest.raises(ValueError):
            ConstraintModel(np.zeros((3, 2)), constraint_prob=2.0)
        with pytest.raises(ValueError):
            ConstraintModel(np.zeros((3, 2)), max_constraints=0)


class TestConstrainedSimulation:
    def _run(self, constraint_prob):
        rng = np.random.default_rng(9)
        machines = generate_machines(8, rng)
        model = ConstraintModel(
            generate_attribute_matrix(8, rng),
            constraint_prob=constraint_prob,
        )
        requests = generate_task_requests(
            6 * HOUR,
            seed=10,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=14.0 * 8,
        )
        sim = ClusterSimulator(
            machines, SimConfig(constraints=model), seed=11
        )
        return sim.run(requests, 6 * HOUR)

    def test_runs_and_schedules(self):
        result = self._run(0.5)
        assert result.counts["scheduled"] > 0

    def test_scheduled_machines_satisfy_constraints(self):
        """Every placement must respect the task's machine mask."""
        rng = np.random.default_rng(12)
        machines = generate_machines(4, rng)
        attrs = generate_attribute_matrix(4, rng)
        model = ConstraintModel(attrs, constraint_prob=1.0)
        requests = generate_task_requests(
            2 * HOUR,
            seed=13,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=40.0,
        )
        from repro.sim.cluster import _build_tasks
        from repro.sim.scheduler import choose_machine
        from repro.sim.machine import FleetState

        fleet = FleetState(machines)
        sim_rng = np.random.default_rng(14)
        for task in _build_tasks(requests)[:100]:
            task.constraints = model.sample_constraints(sim_rng)
            if task.constraints:
                task.allowed_mask = model.satisfying_mask(task.constraints)
            m = choose_machine(fleet, task, "balance", sim_rng)
            if m >= 0 and task.allowed_mask is not None:
                assert task.allowed_mask[m]

    def test_constraints_raise_pending(self):
        """Heavier constraints shrink candidate sets -> more queueing."""
        free = self._run(0.0)
        constrained = self._run(0.95)
        pending_free = int(np.asarray(free.cluster_series["n_pending"]).sum())
        pending_con = int(
            np.asarray(constrained.cluster_series["n_pending"]).sum()
        )
        assert pending_con >= pending_free

    def test_mismatched_fleet_rejected(self):
        rng = np.random.default_rng(15)
        machines = generate_machines(4, rng)
        model = ConstraintModel(generate_attribute_matrix(9, rng))
        requests = generate_task_requests(
            HOUR,
            seed=16,
            config=GoogleConfig(busy_window=None),
            tasks_per_hour=10.0,
        )
        sim = ClusterSimulator(machines, SimConfig(constraints=model), seed=17)
        with pytest.raises(ValueError, match="machine count"):
            sim.run(requests, HOUR)
