"""Unit tests for the usage monitor."""

import numpy as np
import pytest

from repro.sim.machine import FleetState
from repro.sim.monitor import (
    CLUSTER_SERIES_SCHEMA,
    MACHINE_USAGE_SCHEMA,
    MonitorConfig,
    UsageMonitor,
)
from repro.sim.task import SimTask
from repro.core.table import Table


def _fleet(n=3):
    return FleetState(
        Table(
            {
                "machine_id": np.arange(n, dtype=np.int64),
                "cpu_capacity": np.ones(n),
                "mem_capacity": np.ones(n),
                "page_cache_capacity": np.ones(n),
            }
        )
    )


def _task(job=0, band=1, cpu=0.2, mem=0.3):
    return SimTask(
        job_id=job,
        task_index=0,
        priority=6 if band == 1 else (10 if band == 2 else 2),
        band=band,
        cpu_request=cpu,
        mem_request=mem,
        duration=100.0,
        cpu_eff=cpu * 0.5,
        mem_eff=mem * 0.9,
        page_cache=0.01,
        fate=4,
        submit_time=0.0,
    )


class TestUsageMonitor:
    def test_empty_tables(self):
        fleet = _fleet()
        monitor = UsageMonitor(fleet, MonitorConfig(), np.random.default_rng(0))
        mu = monitor.machine_usage_table()
        cs = monitor.cluster_series_table()
        assert len(mu) == 0
        assert len(cs) == 0
        assert set(mu.column_names) == set(MACHINE_USAGE_SCHEMA)
        assert set(cs.column_names) == set(CLUSTER_SERIES_SCHEMA)

    def test_sample_records_all_machines(self):
        fleet = _fleet(4)
        monitor = UsageMonitor(fleet, MonitorConfig(), np.random.default_rng(1))
        monitor.sample(0.0, n_pending=2, n_finished=1, n_abnormal=0)
        monitor.sample(300.0, n_pending=0, n_finished=3, n_abnormal=1)
        mu = monitor.machine_usage_table()
        assert len(mu) == 8
        cs = monitor.cluster_series_table()
        assert len(cs) == 2
        np.testing.assert_array_equal(cs["n_pending"], [2, 0])

    def test_zero_noise_matches_base(self):
        fleet = _fleet(1)
        task = _task()
        fleet.start(0, task)
        config = MonitorConfig(
            cpu_noise=0.0, mem_noise=0.0, page_noise=0.0, cpu_spike_prob=0.0
        )
        monitor = UsageMonitor(fleet, config, np.random.default_rng(2))
        monitor.sample(0.0, 0, 0, 0)
        mu = monitor.machine_usage_table()
        assert mu["cpu_usage"][0] == pytest.approx(task.cpu_eff)
        assert mu["mem_usage"][0] == pytest.approx(task.mem_eff)
        assert mu["mem_assigned"][0] == pytest.approx(task.mem_request)

    def test_band_columns_consistent(self):
        fleet = _fleet(1)
        fleet.start(0, _task(job=1, band=0, cpu=0.1))
        fleet.start(0, _task(job=2, band=1, cpu=0.1))
        fleet.start(0, _task(job=3, band=2, cpu=0.1))
        config = MonitorConfig(
            cpu_noise=0.0, mem_noise=0.0, page_noise=0.0, cpu_spike_prob=0.0
        )
        monitor = UsageMonitor(fleet, config, np.random.default_rng(3))
        monitor.sample(0.0, 0, 0, 0)
        mu = monitor.machine_usage_table()
        # Three equal tasks, one per band: mid_high = 2/3, high = 1/3.
        assert mu["cpu_mid_high"][0] == pytest.approx(
            mu["cpu_usage"][0] * 2 / 3
        )
        assert mu["cpu_high"][0] == pytest.approx(mu["cpu_usage"][0] / 3)

    def test_spike_bounded_by_allocation(self):
        fleet = _fleet(1)
        task = _task(cpu=0.5)
        fleet.start(0, task)
        config = MonitorConfig(
            cpu_noise=0.0, mem_noise=0.0, page_noise=0.0, cpu_spike_prob=1.0
        )
        monitor = UsageMonitor(fleet, config, np.random.default_rng(4))
        for t in range(20):
            monitor.sample(float(t) * 300, 0, 0, 0)
        mu = monitor.machine_usage_table()
        # Spikes reach toward the 0.5 allocation, never beyond it.
        assert mu["cpu_usage"].max() <= 0.5 + 1e-9
        assert mu["cpu_usage"].max() > task.cpu_eff

    def test_usage_never_negative_or_above_capacity(self):
        fleet = _fleet(2)
        fleet.start(0, _task(job=1, cpu=0.9, mem=0.9))
        monitor = UsageMonitor(
            fleet, MonitorConfig(cpu_noise=5.0), np.random.default_rng(5)
        )
        for t in range(200):
            monitor.sample(float(t), 0, 0, 0)
        mu = monitor.machine_usage_table()
        assert mu["cpu_usage"].min() >= 0
        assert mu["cpu_usage"].max() <= 1.0 + 1e-9


class TestMonitorConfigValidation:
    def test_spike_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(cpu_spike_prob=1.5)
        with pytest.raises(ValueError):
            MonitorConfig(cpu_spike_range=(0.9, 0.1))


def _reference_noisy(rng, base, cap, coeff, n_run):
    """Pre-batching scalar draw: one standard_normal call per attribute."""
    if coeff == 0.0:
        return np.clip(base, 0.0, cap)
    draw = rng.standard_normal(base.size)
    scale = coeff / np.sqrt(np.maximum(n_run, 1))
    return np.clip(base * np.clip(1.0 + scale * draw, 0.0, None), 0.0, cap)


def _reference_sample(fleet, cfg, rng):
    """Golden draw order of the unbatched monitor: cpu, spikes, mem, page."""
    n_run = fleet.n_running
    cpu = _reference_noisy(
        rng, fleet.cpu_base, fleet.cpu_capacity, cfg.cpu_noise, n_run
    )
    if cfg.cpu_spike_prob > 0:
        spiking = rng.uniform(size=cpu.size) < cfg.cpu_spike_prob
        if spiking.any():
            allocated = fleet.cpu_capacity - fleet.free_cpu
            lo, hi = cfg.cpu_spike_range
            burst = np.clip(allocated[spiking], 0.0, None) * rng.uniform(
                lo, hi, int(spiking.sum())
            )
            cpu[spiking] = np.maximum(cpu[spiking], burst)
    mem = _reference_noisy(
        rng, fleet.mem_base, fleet.mem_capacity, cfg.mem_noise, n_run
    )
    page = _reference_noisy(
        rng, fleet.page_base, fleet.page_capacity, cfg.page_noise, n_run
    )
    return cpu, mem, page


class TestBatchedDrawEquivalence:
    """Fused block draws must preserve the exact PCG64 stream.

    ``standard_normal(k * n)`` consumes the bit stream identically to
    ``k`` sequential ``n``-draws, so the batched monitor must match the
    sequential reference bit for bit — samples and final RNG state.
    """

    CONFIGS = [
        MonitorConfig(cpu_spike_prob=0.0),  # fully fused 3n block
        MonitorConfig(cpu_spike_prob=0.5),  # spikes split cpu from mem/page
        MonitorConfig(cpu_spike_prob=0.0, mem_noise=0.0),
        MonitorConfig(cpu_spike_prob=0.0, page_noise=0.0),
        MonitorConfig(cpu_spike_prob=0.5, cpu_noise=0.0),
        MonitorConfig(
            cpu_spike_prob=0.0, cpu_noise=0.0, mem_noise=0.0, page_noise=0.0
        ),
        MonitorConfig(cpu_spike_prob=0.5, mem_noise=0.0, page_noise=0.0),
    ]

    def _loaded_fleet(self, n=8):
        fleet = _fleet(n)
        for slot in range(n):
            for j in range(slot % 3 + 1):
                fleet.start(slot, _task(job=slot * 10 + j, band=j % 3))
        return fleet

    @pytest.mark.parametrize("config", CONFIGS)
    def test_bit_identical_to_sequential_draws(self, config):
        fleet_a = self._loaded_fleet()
        fleet_b = self._loaded_fleet()
        seed = 1234
        monitor = UsageMonitor(fleet_a, config, np.random.default_rng(seed))
        reference = np.random.default_rng(seed)
        ref_samples = []
        for t in range(10):
            monitor.sample(t * 300.0, 0, 0, 0)
            ref_samples.append(_reference_sample(fleet_b, config, reference))
        assert (
            monitor.rng.bit_generator.state == reference.bit_generator.state
        )
        mu = monitor.machine_usage_table()
        n = fleet_a.num_machines
        for i, (cpu, mem, page) in enumerate(ref_samples):
            sl = slice(i * n, (i + 1) * n)
            np.testing.assert_array_equal(mu["cpu_usage"][sl], cpu)
            np.testing.assert_array_equal(mu["mem_usage"][sl], mem)
            np.testing.assert_array_equal(mu["page_cache"][sl], page)
