"""Unit tests for the usage monitor."""

import numpy as np
import pytest

from repro.sim.machine import FleetState
from repro.sim.monitor import (
    CLUSTER_SERIES_SCHEMA,
    MACHINE_USAGE_SCHEMA,
    MonitorConfig,
    UsageMonitor,
)
from repro.sim.task import SimTask
from repro.core.table import Table


def _fleet(n=3):
    return FleetState(
        Table(
            {
                "machine_id": np.arange(n, dtype=np.int64),
                "cpu_capacity": np.ones(n),
                "mem_capacity": np.ones(n),
                "page_cache_capacity": np.ones(n),
            }
        )
    )


def _task(job=0, band=1, cpu=0.2, mem=0.3):
    return SimTask(
        job_id=job,
        task_index=0,
        priority=6 if band == 1 else (10 if band == 2 else 2),
        band=band,
        cpu_request=cpu,
        mem_request=mem,
        duration=100.0,
        cpu_eff=cpu * 0.5,
        mem_eff=mem * 0.9,
        page_cache=0.01,
        fate=4,
        submit_time=0.0,
    )


class TestUsageMonitor:
    def test_empty_tables(self):
        fleet = _fleet()
        monitor = UsageMonitor(fleet, MonitorConfig(), np.random.default_rng(0))
        mu = monitor.machine_usage_table()
        cs = monitor.cluster_series_table()
        assert len(mu) == 0
        assert len(cs) == 0
        assert set(mu.column_names) == set(MACHINE_USAGE_SCHEMA)
        assert set(cs.column_names) == set(CLUSTER_SERIES_SCHEMA)

    def test_sample_records_all_machines(self):
        fleet = _fleet(4)
        monitor = UsageMonitor(fleet, MonitorConfig(), np.random.default_rng(1))
        monitor.sample(0.0, n_pending=2, n_finished=1, n_abnormal=0)
        monitor.sample(300.0, n_pending=0, n_finished=3, n_abnormal=1)
        mu = monitor.machine_usage_table()
        assert len(mu) == 8
        cs = monitor.cluster_series_table()
        assert len(cs) == 2
        np.testing.assert_array_equal(cs["n_pending"], [2, 0])

    def test_zero_noise_matches_base(self):
        fleet = _fleet(1)
        task = _task()
        fleet.start(0, task)
        config = MonitorConfig(
            cpu_noise=0.0, mem_noise=0.0, page_noise=0.0, cpu_spike_prob=0.0
        )
        monitor = UsageMonitor(fleet, config, np.random.default_rng(2))
        monitor.sample(0.0, 0, 0, 0)
        mu = monitor.machine_usage_table()
        assert mu["cpu_usage"][0] == pytest.approx(task.cpu_eff)
        assert mu["mem_usage"][0] == pytest.approx(task.mem_eff)
        assert mu["mem_assigned"][0] == pytest.approx(task.mem_request)

    def test_band_columns_consistent(self):
        fleet = _fleet(1)
        fleet.start(0, _task(job=1, band=0, cpu=0.1))
        fleet.start(0, _task(job=2, band=1, cpu=0.1))
        fleet.start(0, _task(job=3, band=2, cpu=0.1))
        config = MonitorConfig(
            cpu_noise=0.0, mem_noise=0.0, page_noise=0.0, cpu_spike_prob=0.0
        )
        monitor = UsageMonitor(fleet, config, np.random.default_rng(3))
        monitor.sample(0.0, 0, 0, 0)
        mu = monitor.machine_usage_table()
        # Three equal tasks, one per band: mid_high = 2/3, high = 1/3.
        assert mu["cpu_mid_high"][0] == pytest.approx(
            mu["cpu_usage"][0] * 2 / 3
        )
        assert mu["cpu_high"][0] == pytest.approx(mu["cpu_usage"][0] / 3)

    def test_spike_bounded_by_allocation(self):
        fleet = _fleet(1)
        task = _task(cpu=0.5)
        fleet.start(0, task)
        config = MonitorConfig(
            cpu_noise=0.0, mem_noise=0.0, page_noise=0.0, cpu_spike_prob=1.0
        )
        monitor = UsageMonitor(fleet, config, np.random.default_rng(4))
        for t in range(20):
            monitor.sample(float(t) * 300, 0, 0, 0)
        mu = monitor.machine_usage_table()
        # Spikes reach toward the 0.5 allocation, never beyond it.
        assert mu["cpu_usage"].max() <= 0.5 + 1e-9
        assert mu["cpu_usage"].max() > task.cpu_eff

    def test_usage_never_negative_or_above_capacity(self):
        fleet = _fleet(2)
        fleet.start(0, _task(job=1, cpu=0.9, mem=0.9))
        monitor = UsageMonitor(
            fleet, MonitorConfig(cpu_noise=5.0), np.random.default_rng(5)
        )
        for t in range(200):
            monitor.sample(float(t), 0, 0, 0)
        mu = monitor.machine_usage_table()
        assert mu["cpu_usage"].min() >= 0
        assert mu["cpu_usage"].max() <= 1.0 + 1e-9


class TestMonitorConfigValidation:
    def test_spike_validation(self):
        with pytest.raises(ValueError):
            MonitorConfig(cpu_spike_prob=1.5)
        with pytest.raises(ValueError):
            MonitorConfig(cpu_spike_range=(0.9, 0.1))
