#!/usr/bin/env python
"""Run the tracked benchmark harness without installing the package.

Equivalent to the ``repro-bench`` entry point::

    python scripts/bench.py --scale small --scale medium --check
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments.bench import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
