"""Bench: regenerate Fig. 7 (max host load per capacity group)."""

from repro.experiments import fig7_max_load

from .conftest import SCALE, SEED


def test_bench_fig7(benchmark, paper_simulation, save_result):
    result = benchmark(fig7_max_load.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper shape: CPU maxima press against capacity on the small
    # machines, consumed memory maxima sit below assigned memory.
    assert m["assigned_exceeds_consumed"]
    assert m["mem_mean_relative_max"] > 0.5
    assert m["mem_assigned_mean_relative_max"] > 0.6
