"""Bench: regenerate Fig. 10 (usage-level snapshot, 50 machines)."""

from repro.experiments import fig10_usage_snapshot

from .conftest import SCALE, SEED


def test_bench_fig10(benchmark, paper_simulation, save_result):
    result = benchmark(fig10_usage_snapshot.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: CPUs mostly idle relative to capacity; memory runs high;
    # high-priority-only load looks light; busy window days 21-25.
    assert m["high_priority_cpu_mostly_idle"]
    assert m["mem_high_levels_frac"] > 0.3
    assert m["cpu_share_low_band"] > 0.4
    assert m["busy_window_cpu_uplift"] > 1.1
