"""Bench: the full reproduction scorecard at paper scale.

Re-derives every Section VI conclusion bullet from the paper-scale
synthetic month and requires all of them to hold — the single
end-to-end acceptance check of the reproduction.
"""

from repro.experiments import scorecard

from .conftest import SCALE, SEED


def test_bench_scorecard(benchmark, paper_workload, paper_simulation, save_result):
    result = benchmark.pedantic(
        scorecard.run, kwargs=dict(scale=SCALE, seed=SEED), rounds=1, iterations=1
    )
    save_result(result)
    print(result.render())
    failing = [row for row in result.tables[0].rows if row[3] == "FAIL"]
    assert result.metrics["all_pass"], f"failing claims: {failing}"
