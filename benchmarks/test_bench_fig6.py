"""Bench: regenerate Fig. 6 (per-job CPU/memory usage) at paper scale."""

from repro.experiments import fig6_job_resources

from .conftest import SCALE, SEED


def test_bench_fig6(benchmark, paper_workload, save_result):
    result = benchmark(fig6_job_resources.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: the large majority of Google jobs need <= 1 processor and
    # far less memory than Grid jobs.
    assert m["google_frac_under_1_cpu"] > 0.85
    assert m["google_lower_cpu"]
    assert m["google_mem_median_mb_32gb"] < m["min_grid_mem_median_mb"]
