"""Bench: regenerate Fig. 2 (jobs/tasks per priority) at paper scale."""

from repro.experiments import fig2_priority

from .conftest import SCALE, SEED


def test_bench_fig2(benchmark, paper_workload, save_result):
    result = benchmark(fig2_priority.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: ~670k jobs over the month, low priorities dominate, and
    # the task count is in the tens of millions (fan-out ~37x).
    assert m["total_jobs"] > 300_000
    assert m["job_frac_low(1-4)"] > 0.7
    assert m["total_tasks"] > 10 * m["total_jobs"]
    assert m["modal_priority"] <= 4
