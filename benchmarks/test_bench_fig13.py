"""Bench: regenerate Fig. 13 (host-load dynamics, Cloud vs Grid)."""

from repro.experiments import fig13_hostload_compare

from .conftest import SCALE, SEED


def test_bench_fig13(benchmark, paper_simulation, save_result):
    result = benchmark(fig13_hostload_compare.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: Google memory > CPU, Grid CPU > memory, and Google's CPU
    # noise ~20x AuverGrid's (we require the same decade).
    assert m["google_mem_above_cpu"]
    assert m["grid_cpu_above_mem"]
    assert m["google_noisier"]
    assert m["noise_ratio_google_over_auvergrid"] > 5
