"""Bench: regenerate Table I (submission rates + fairness) at paper scale."""

import pytest

from repro.experiments import tab1_submission_rate

from .conftest import SCALE, SEED


def test_bench_tab1(benchmark, paper_workload, save_result):
    result = benchmark(tab1_submission_rate.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper row: Google 552 avg/hour at fairness 0.94; Grid fairness
    # 0.04-0.51 — Google leads on both axes.
    assert m["google_avg_per_hour"] == pytest.approx(552, rel=0.05)
    assert m["google_fairness"] == pytest.approx(0.94, abs=0.04)
    assert m["google_rate_highest"]
    assert m["google_fairness_highest"]
    lo, hi = m["grid_fairness_range"]
    assert hi < 0.75
