"""Bench: regenerate Fig. 9 (mass-count of unchanged queue states)."""

from repro.experiments import fig9_queue_durations

from .conftest import SCALE, SEED


def test_bench_fig9(benchmark, paper_simulation, save_result):
    result = benchmark(fig9_queue_durations.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: joint ratios 11/89 .. 16/84 — heavily skewed everywhere.
    assert m["intervals_with_data"] >= 3
    assert m["skewed_everywhere"]
    lo, hi = m["joint_small_side_range"]
    assert hi < 40
