"""Bench: regenerate Fig. 8 (task events + queue state on one host)."""

import pytest

from repro.experiments import fig8_queue_state

from .conftest import SCALE, SEED


def test_bench_fig8(benchmark, paper_simulation, save_result):
    result = benchmark(fig8_queue_state.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: running queue plateaus (~40 on the sample machine),
    # completions grow monotonically, and most completions are abnormal.
    assert m["steady_running_mean"] > 10
    assert m["finished_grows_linearly"]
    assert m["final_abnormal_fraction"] == pytest.approx(0.59, abs=0.12)
    assert m["num_task_executions"] > 1000
