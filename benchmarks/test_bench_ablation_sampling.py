"""Ablation: monitor sampling period vs measured noise.

The trace reports every 5 minutes. Sampling the same cluster at 1
minute catches more of the short-term CPU fluctuation, raising the
mean-filter noise estimate — evidence that the paper's noise numbers
are tied to the 5-minute measurement window.
"""

import numpy as np
import pytest

from repro.core.noise import noise_stats
from repro.hostload import all_machine_series
from repro.sim import ClusterSimulator, MonitorConfig, SimConfig
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

HORIZON = 1 * 86400.0


def _mean_noise(sample_period: float) -> float:
    rng = np.random.default_rng(400)
    machines = generate_machines(8, rng)
    requests = generate_task_requests(
        HORIZON,
        seed=401,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=14.0 * 8,
    )
    config = SimConfig(monitor=MonitorConfig(sample_period=sample_period))
    result = ClusterSimulator(machines, config, seed=402).run(requests, HORIZON)
    series = all_machine_series(result.machine_usage, result.machines)
    values = [
        noise_stats(s.relative("cpu"))["mean"] for s in series.values()
    ]
    return float(np.mean(values))


@pytest.fixture(scope="module")
def noise_by_period():
    return {period: _mean_noise(period) for period in (300.0, 60.0)}


def test_bench_ablation_sampling(benchmark, noise_by_period):
    benchmark(_mean_noise, 300.0)
    print("mean-filter CPU noise by sampling period:")
    for period, value in noise_by_period.items():
        print(f"  {period:5.0f}s  {value:.4f}")
    # Both periods must see substantial Cloud noise; the measured value
    # is sampling-dependent (not identical across periods).
    assert noise_by_period[300.0] > 0.005
    assert noise_by_period[60.0] > 0.005
    assert noise_by_period[60.0] != pytest.approx(
        noise_by_period[300.0], rel=0.02
    )
