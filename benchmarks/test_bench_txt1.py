"""Bench: regenerate Sec. IV.B.1's completion-event mix."""

import pytest

from repro.experiments import txt1_completion_mix

from .conftest import SCALE, SEED


def test_bench_txt1(benchmark, paper_simulation, save_result):
    result = benchmark(txt1_completion_mix.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: 59.2% abnormal; of the abnormal, 50% fail and 30.7% kill.
    assert m["abnormal_fraction"] == pytest.approx(0.592, abs=0.08)
    assert m["fail_share_of_abnormal"] == pytest.approx(0.50, abs=0.12)
    assert m["kill_share_of_abnormal"] == pytest.approx(0.307, abs=0.1)
    assert m["fail_dominates_abnormal"]
