"""Bench: regenerate Fig. 11 (mass-count of CPU usage)."""

import pytest

from repro.experiments import fig11_cpu_usage_mc

from .conftest import SCALE, SEED


def test_bench_fig11(benchmark, paper_simulation, save_result):
    result = benchmark(fig11_cpu_usage_mc.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: CPU usage ~35% overall, ~20% for high-priority tasks;
    # near-uniform distribution (joint ratio ~40/60).
    assert m["mean_cpu_usage_pct"] == pytest.approx(35, abs=12)
    assert m["high_band_uses_less"]
    assert m["near_uniform"]
    assert m["all_joint_small_side"] == pytest.approx(40, abs=10)
