"""Ablation: preemption on/off.

With preemption, arriving high-priority tasks displace low-priority
work instead of queueing — the paper's Fig. 8(b) shows an empty pending
queue. Disabling preemption must increase the scheduling delay of
high-priority tasks on a saturated cluster.
"""

import numpy as np
import pytest

from repro.sim import ClusterSimulator, SimConfig
from repro.synth import GoogleConfig, generate_machines, generate_task_requests
from repro.traces.schema import TaskEvent, priority_band_array

HORIZON = 2 * 86400.0


def _high_priority_wait(preemption: bool) -> tuple[float, int]:
    """(mean wait of high-priority tasks, evict count) on a hot cluster."""
    rng = np.random.default_rng(200)
    machines = generate_machines(8, rng)
    requests = generate_task_requests(
        HORIZON,
        seed=201,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=22.0 * 8,  # deliberately oversubscribed
    )
    sim = ClusterSimulator(
        machines, SimConfig(preemption=preemption), seed=202
    )
    result = sim.run(requests, HORIZON)
    ev = result.task_events.sort_by("time")
    etype = np.asarray(ev["event_type"])
    times = np.asarray(ev["time"])
    prio = np.asarray(ev["priority"])
    width = int(ev["task_index"].max()) + 1
    key = np.asarray(ev["job_id"]) * width + np.asarray(ev["task_index"])

    waits = []
    pending_since: dict[int, float] = {}
    high = priority_band_array(np.maximum(prio, 1)) == 2
    for t, e, k, is_high in zip(times, etype, key, high):
        if not is_high:
            continue
        if e == int(TaskEvent.SUBMIT):
            pending_since[int(k)] = float(t)
        elif e == int(TaskEvent.SCHEDULE) and int(k) in pending_since:
            waits.append(float(t) - pending_since.pop(int(k)))
    mean_wait = float(np.mean(waits)) if waits else 0.0
    return mean_wait, result.counts["evict"]


@pytest.fixture(scope="module")
def waits():
    return {flag: _high_priority_wait(flag) for flag in (True, False)}


def test_bench_ablation_preemption(benchmark, waits):
    benchmark(_high_priority_wait, True)
    for flag, (wait, evicts) in waits.items():
        print(
            f"preemption={flag}: high-priority mean wait {wait:.1f}s, "
            f"{evicts} evictions"
        )
    wait_on, _ = waits[True]
    wait_off, _ = waits[False]
    # Preemption must cut high-priority waiting on a saturated cluster.
    assert wait_on < wait_off
