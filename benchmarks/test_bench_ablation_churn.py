"""Ablation: machine availability churn.

The trace's eviction events partly come from machines leaving for
maintenance. This ablation toggles the churn model and measures its
contribution to the eviction mix — with churn on, evictions must rise
while the rest of the completion mix stays calibrated.
"""

import pytest

from repro.sim import ChurnModel, ClusterSimulator, SimConfig
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

import numpy as np

HORIZON = 2 * 86400.0


def _mix(churn: ChurnModel | None) -> dict[str, float]:
    rng = np.random.default_rng(600)
    machines = generate_machines(10, rng)
    requests = generate_task_requests(
        HORIZON,
        seed=601,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=10.0 * 10,
    )
    sim = ClusterSimulator(machines, SimConfig(churn=churn), seed=602)
    return sim.run(requests, HORIZON).completion_mix()


@pytest.fixture(scope="module")
def mixes():
    return {
        "off": _mix(None),
        "on": _mix(ChurnModel(mean_uptime=8 * 3600.0, mean_downtime=1800.0)),
    }


def test_bench_ablation_churn(benchmark, mixes):
    benchmark(_mix, None)
    print("completion mix with/without machine churn:")
    for name, mix in mixes.items():
        print(f"  churn={name}: " + ", ".join(
            f"{k}={v:.3f}" for k, v in mix.items()
        ))
    assert mixes["on"]["evict"] > mixes["off"]["evict"]
    # The calibrated fail/kill ordering survives churn.
    assert mixes["on"]["fail"] > mixes["on"]["kill"]
