"""Benchmark fixtures: pre-built paper-scale datasets + result capture.

Each benchmark regenerates one table/figure of the paper at the
``paper`` scale (30 simulated days). The expensive dataset builds are
memoized, so pytest-benchmark's repeated rounds time the analysis
pipeline itself; every bench also writes its rendered result to
``benchmarks/results/<experiment>.txt`` so the reproduction artifacts
survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.experiments.datasets import simulation_dataset, workload_dataset

RESULTS_DIR = Path(__file__).parent / "results"

SCALE = "paper"
SEED = 0


@pytest.fixture(scope="session")
def paper_workload():
    """Pre-warmed workload dataset shared by the workload benches."""
    return workload_dataset(SCALE, SEED)


@pytest.fixture(scope="session")
def paper_simulation():
    """Pre-warmed simulated month shared by the host-load benches."""
    return simulation_dataset(SCALE, SEED)


@pytest.fixture(scope="session")
def save_result():
    """Persist a rendered ExperimentResult under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(result) -> None:
        path = RESULTS_DIR / f"{result.experiment_id}.txt"
        path.write_text(result.render() + "\n")

    return _save
