"""Bench: regenerate Table III (unchanged memory usage-level durations)."""

from repro.experiments import tab23_level_durations
from repro.experiments.datasets import simulation_dataset
from repro.experiments.tab23_level_durations import matched_level_comparison

from .conftest import SCALE, SEED


def test_bench_tab3(benchmark, paper_simulation, save_result):
    result = benchmark(tab23_level_durations.run_mem, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: memory levels persist longer than CPU levels and are more
    # skewed (18/82-26/74).
    assert m["mem_weighted_avg_duration_min"] > 0
    assert all(side < 50 for side in m["mem_joint_small_sides"])
    data = simulation_dataset(SCALE, SEED)
    assert matched_level_comparison(data)
