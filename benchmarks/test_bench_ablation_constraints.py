"""Ablation: placement constraints vs scheduling quality.

Sec. IV.B cites task placement constraints as a Cloud-specific factor
that "may further impact the resource utilization significantly". This
ablation sweeps the fraction of constrained tasks and measures the
queueing it induces: constraints shrink each task's candidate machine
set, so pending time must grow monotonically-ish with constraint load.
"""

import numpy as np
import pytest

from repro.sim import ClusterSimulator, ConstraintModel, SimConfig
from repro.sim.constraints import generate_attribute_matrix
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

HORIZON = 1 * 86400.0
PROBS = (0.0, 0.5, 0.95)


def _pending_load(constraint_prob: float) -> int:
    rng = np.random.default_rng(500)
    machines = generate_machines(8, rng)
    model = ConstraintModel(
        generate_attribute_matrix(8, rng, num_attributes=3),
        constraint_prob=constraint_prob,
    )
    requests = generate_task_requests(
        HORIZON,
        seed=501,
        config=GoogleConfig(busy_window=None),
        tasks_per_hour=18.0 * 8,
    )
    sim = ClusterSimulator(
        machines, SimConfig(constraints=model), seed=502
    )
    result = sim.run(requests, HORIZON)
    return int(np.asarray(result.cluster_series["n_pending"]).sum())


@pytest.fixture(scope="module")
def pending_by_prob():
    return {p: _pending_load(p) for p in PROBS}


def test_bench_ablation_constraints(benchmark, pending_by_prob):
    benchmark(_pending_load, 0.5)
    print("cumulative pending-queue samples by constrained-task fraction:")
    for prob, pending in pending_by_prob.items():
        print(f"  constraint_prob={prob:4.2f}  pending-sum={pending}")
    # Heavier constraints must hurt schedulability.
    assert pending_by_prob[0.95] > pending_by_prob[0.0]
