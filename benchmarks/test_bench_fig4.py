"""Bench: regenerate Fig. 4 (task-length mass-count) at paper scale."""

from repro.experiments import fig4_masscount_length

from .conftest import SCALE, SEED


def test_bench_fig4(benchmark, paper_workload, save_result):
    result = benchmark(fig4_masscount_length.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: Google joint ratio 6/94, AuverGrid 24/76; Google mm-distance
    # (days) far larger than AuverGrid's ~0.82.
    assert abs(m["google_joint_small_side"] - 6) <= 2.5
    assert abs(m["auvergrid_joint_small_side"] - 24) <= 4
    assert m["google_more_pareto"]
    assert m["google_mmdist_days"] > 5 * m["auvergrid_mmdist_days"]
