"""Bench: regenerate Table II (unchanged CPU usage-level durations)."""

from repro.experiments import tab23_level_durations

from .conftest import SCALE, SEED


def test_bench_tab2(benchmark, paper_simulation, save_result):
    result = benchmark(tab23_level_durations.run_cpu, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: CPU levels flip within minutes (avg ~6 min); durations are
    # right-skewed (joint ratios around 26/74-30/70).
    assert m["cpu_weighted_avg_duration_min"] < 60
    assert all(side < 50 for side in m["cpu_joint_small_sides"])
