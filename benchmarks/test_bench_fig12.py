"""Bench: regenerate Fig. 12 (mass-count of memory usage)."""

import pytest

from repro.experiments import fig12_mem_usage_mc

from .conftest import SCALE, SEED


def test_bench_fig12(benchmark, paper_simulation, save_result):
    result = benchmark(fig12_mem_usage_mc.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: memory usage ~60% overall, above CPU usage; joint ratio
    # ~43/57 (close to uniform).
    assert m["mean_mem_usage_pct"] == pytest.approx(60, abs=15)
    assert m["mem_above_cpu"]
    assert m["all_joint_small_side"] == pytest.approx(43, abs=10)
