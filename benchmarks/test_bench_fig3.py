"""Bench: regenerate Fig. 3 (job-length CDFs) at paper scale."""

from repro.experiments import fig3_job_length

from .conftest import SCALE, SEED


def test_bench_fig3(benchmark, paper_workload, save_result):
    result = benchmark(fig3_job_length.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: >80% of Google jobs under 1000 s; most Grid jobs > 2000 s.
    assert m["google_frac_under_1000s"] > 0.75
    assert m["grids_mostly_over_2000s"]
    assert m["min_grid_frac_over_2000s"] > 0.5
