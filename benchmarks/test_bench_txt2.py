"""Bench: regenerate Sec. VI's task-length statistics."""

import pytest

from repro.experiments import txt2_task_length_stats

from .conftest import SCALE, SEED


def test_bench_txt2(benchmark, paper_workload, save_result):
    result = benchmark(txt2_task_length_stats.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: 55% of tasks <10 min, 90% <1 h, ~94% <3 h; mean 5.6 h with
    # a 29-day max; AuverGrid mean 7.2 h with an 18-day max.
    assert m["google_frac_under_10min"] == pytest.approx(0.55, abs=0.05)
    assert m["google_frac_under_1h"] == pytest.approx(0.90, abs=0.04)
    assert m["google_frac_under_3h"] == pytest.approx(0.94, abs=0.04)
    assert m["google_mean_hours"] == pytest.approx(5.6, abs=2.0)
    assert m["google_max_days"] > 20
    assert m["auvergrid_mean_hours"] == pytest.approx(7.2, abs=1.5)
    assert m["cloud_tasks_mostly_shorter"]
    assert m["cloud_max_longer"]
