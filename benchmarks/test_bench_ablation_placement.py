"""Ablation: placement policy vs load balance.

The paper describes Google's scheduler as using the "best" resources
first to balance demand across machines. This ablation compares the
``balance`` policy against bin-packing (``best_fit``), ``first_fit``
and ``random``: balance should spread load most evenly (lowest
across-machine dispersion of mean relative CPU load).
"""

import numpy as np
import pytest

from repro.hostload import all_machine_series
from repro.sim import ClusterSimulator, SimConfig
from repro.synth import GoogleConfig, generate_machines, generate_task_requests

HORIZON = 2 * 86400.0
POLICIES = ("balance", "best_fit", "first_fit", "random")


def _imbalance(policy: str) -> float:
    """Std-dev across machines of the mean relative CPU load."""
    rng = np.random.default_rng(100)
    machines = generate_machines(16, rng)
    requests = generate_task_requests(
        HORIZON,
        seed=101,
        config=GoogleConfig(busy_window=None, cpu_utilization_range=(0.25, 0.7)),
        tasks_per_hour=14.0 * 16,
    )
    sim = ClusterSimulator(machines, SimConfig(placement=policy), seed=102)
    result = sim.run(requests, HORIZON)
    series = all_machine_series(result.machine_usage, result.machines)
    means = np.array([s.relative("cpu").mean() for s in series.values()])
    return float(means.std())


@pytest.fixture(scope="module")
def imbalances():
    return {policy: _imbalance(policy) for policy in POLICIES}


def test_bench_ablation_placement(benchmark, imbalances):
    benchmark(_imbalance, "balance")
    print("across-machine load imbalance (std of mean relative CPU):")
    for policy, value in sorted(imbalances.items(), key=lambda kv: kv[1]):
        print(f"  {policy:10s} {value:.4f}")
    # Balance must beat bin-packing and first-fit, which concentrate load.
    assert imbalances["balance"] < imbalances["best_fit"]
    assert imbalances["balance"] < imbalances["first_fit"]
