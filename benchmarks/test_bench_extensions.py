"""Benches: the five extension experiments at paper scale.

These cover the paper's motivating applications (scheduling modes,
consolidation) and announced future work (prediction, best-fit
modeling), plus the diurnal contrast behind Table I.
"""

from repro.experiments import (
    ext1_diurnal,
    ext2_prediction,
    ext3_consolidation,
    ext4_fitting,
    ext5_modes,
)

from .conftest import SCALE, SEED


def test_bench_ext1_diurnal(benchmark, paper_workload, save_result):
    result = benchmark(ext1_diurnal.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())
    m = result.metrics
    assert m["grids_all_more_diurnal"]
    assert m["min_grid_amplitude"] > 2 * m["google_amplitude"]


def test_bench_ext2_prediction(benchmark, paper_simulation, save_result):
    result = benchmark(ext2_prediction.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())
    m = result.metrics
    assert m["cloud_harder_to_predict"]
    assert m["cloud_over_grid_error_ratio"] > 2


def test_bench_ext3_consolidation(benchmark, paper_simulation, save_result):
    result = benchmark(ext3_consolidation.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())
    m = result.metrics
    assert m["consolidation_worthwhile"]
    assert m["mean_shutoff_fraction"] > 0.05


def test_bench_ext4_fitting(benchmark, paper_workload, save_result):
    result = benchmark(ext4_fitting.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())
    m = result.metrics
    assert m["auvergrid_single_family_adequate"]
    assert m["google_needs_mixture"]
    assert m["auvergrid_best_family"] == "lognormal"


def test_bench_ext5_modes(benchmark, paper_simulation, save_result):
    result = benchmark(ext5_modes.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())
    m = result.metrics
    assert m["distinct_modes_found"]
    assert m["largest_mode_share"] < 0.95
