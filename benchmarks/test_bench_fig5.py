"""Bench: regenerate Fig. 5 (submission-interval CDFs) at paper scale."""

from repro.experiments import fig5_interarrival

from .conftest import SCALE, SEED


def test_bench_fig5(benchmark, paper_workload, save_result):
    result = benchmark(fig5_interarrival.run, scale=SCALE, seed=SEED)
    save_result(result)
    print(result.render())

    m = result.metrics
    # Paper: Google submits far more frequently than any Grid system.
    assert m["google_shortest_intervals"]
    assert m["google_mean_interval_s"] < 10
    assert m["min_grid_mean_interval_s"] > m["google_mean_interval_s"]
