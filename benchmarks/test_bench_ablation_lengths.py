"""Ablation: service-tail task-length mixture vs pure lognormal.

The paper's Fig. 4(a) joint ratio of 6/94 needs the mixture of a short
interactive body with a bounded-Pareto service tail; a pure lognormal
body with the same median cannot reach that disparity. This ablation
quantifies the design choice.
"""

import numpy as np
import pytest

from repro.core.masscount import mass_count
from repro.core.distributions import LogNormal
from repro.synth.presets import GOOGLE_TASK_LENGTH

N = 200_000


def _joint_small_side(dist) -> float:
    rng = np.random.default_rng(300)
    return mass_count(dist.sample(rng, N)).joint_ratio[0]


@pytest.fixture(scope="module")
def joint_ratios():
    return {
        "mixture(body+pareto tail)": _joint_small_side(GOOGLE_TASK_LENGTH),
        "pure lognormal": _joint_small_side(LogNormal(median=420.0, sigma=1.3)),
    }


def test_bench_ablation_lengths(benchmark, joint_ratios):
    benchmark(_joint_small_side, GOOGLE_TASK_LENGTH)
    print("joint-ratio small side per task-length model:")
    for name, value in joint_ratios.items():
        print(f"  {name:28s} {value:.1f}")
    # The mixture reproduces the paper's 6/94; the pure body cannot
    # (a lognormal with sigma 1.3 sits near 26/74).
    assert joint_ratios["mixture(body+pareto tail)"] == pytest.approx(6, abs=2.5)
    assert joint_ratios["pure lognormal"] > 20
