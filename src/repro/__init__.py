"""repro — reproduction of "Characterization and Comparison of Cloud
versus Grid Workloads" (Di, Kondo, Cirne — CLUSTER 2012).

Subpackages
-----------
``repro.traces``
    Trace data model: schemas, columnar tables, Google/GWA/SWF formats,
    I/O and validation.
``repro.synth``
    Synthetic workload generation calibrated to the paper's statistics.
``repro.sim``
    Event-driven cluster simulator (12 priorities, FCFS per priority,
    preemptive balance placement, 5-minute usage monitor).
``repro.core``
    The statistical methodology: ECDFs, mass-count disparity, Jain
    fairness, run-length segmentation, noise and autocorrelation.
``repro.hostload``
    Host-load reconstruction: per-machine series, max loads, queue
    states, usage levels, priority-band views.
``repro.prediction``
    Host-load prediction baselines (the paper's future work).
``repro.apps``
    Downstream applications: consolidation/capacity planning, per-user
    workload analysis.
``repro.experiments``
    One module per table/figure of the paper's evaluation; see
    ``repro-experiments --list``.
"""

from . import apps, core, hostload, prediction, sim, synth, traces

__version__ = "1.0.0"

__all__ = [
    "apps",
    "core",
    "hostload",
    "prediction",
    "sim",
    "synth",
    "traces",
    "__version__",
]
