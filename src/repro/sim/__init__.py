"""Event-driven cluster simulator (the paper's Section II model)."""

from .churn import ChurnModel, MachineOutage, sample_outages
from .cluster import ENGINES, ClusterSimulator, SimConfig, SimResult
from .constraints import Constraint, ConstraintModel, generate_attribute_matrix
from .engine import CalendarQueue, EventQueue
from .failures import FailureModel
from .job import jobs_from_events
from .machine import FleetState
from .monitor import (
    CLUSTER_SERIES_SCHEMA,
    MACHINE_USAGE_SCHEMA,
    MonitorConfig,
    UsageMonitor,
)
from .scheduler import (
    PLACEMENT_POLICIES,
    PendingQueue,
    choose_machine,
    choose_machine_columns,
)
from .soa import run_soa
from .task import SimTask, TaskColumns

__all__ = [
    "CLUSTER_SERIES_SCHEMA",
    "CalendarQueue",
    "ChurnModel",
    "ClusterSimulator",
    "Constraint",
    "ConstraintModel",
    "ENGINES",
    "EventQueue",
    "FailureModel",
    "FleetState",
    "MACHINE_USAGE_SCHEMA",
    "MachineOutage",
    "MonitorConfig",
    "PLACEMENT_POLICIES",
    "PendingQueue",
    "SimConfig",
    "SimResult",
    "SimTask",
    "TaskColumns",
    "UsageMonitor",
    "choose_machine",
    "choose_machine_columns",
    "generate_attribute_matrix",
    "jobs_from_events",
    "run_soa",
    "sample_outages",
]
