"""Event-driven cluster simulator (the paper's Section II model)."""

from .churn import ChurnModel, MachineOutage, sample_outages
from .cluster import ClusterSimulator, SimConfig, SimResult
from .constraints import Constraint, ConstraintModel, generate_attribute_matrix
from .engine import EventQueue
from .failures import FailureModel
from .job import jobs_from_events
from .machine import FleetState
from .monitor import (
    CLUSTER_SERIES_SCHEMA,
    MACHINE_USAGE_SCHEMA,
    MonitorConfig,
    UsageMonitor,
)
from .scheduler import PLACEMENT_POLICIES, PendingQueue, choose_machine
from .task import SimTask

__all__ = [
    "CLUSTER_SERIES_SCHEMA",
    "ChurnModel",
    "ClusterSimulator",
    "Constraint",
    "ConstraintModel",
    "EventQueue",
    "FailureModel",
    "FleetState",
    "MACHINE_USAGE_SCHEMA",
    "MachineOutage",
    "MonitorConfig",
    "PLACEMENT_POLICIES",
    "PendingQueue",
    "SimConfig",
    "SimResult",
    "SimTask",
    "UsageMonitor",
    "choose_machine",
    "generate_attribute_matrix",
    "jobs_from_events",
    "sample_outages",
]
