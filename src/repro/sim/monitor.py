"""Periodic usage monitor — the trace's 5-minute measurement loop.

At every sampling tick the monitor snapshots each machine's aggregate
usage with short-term measurement noise layered on top of the running
tasks' base demand. CPU fluctuates strongly sample to sample while
memory is sticky — the asymmetry behind the paper's Tables II vs III
and the 20x noise gap of Fig. 13.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.table import Table
from .machine import FleetState

__all__ = ["MonitorConfig", "UsageMonitor", "MACHINE_USAGE_SCHEMA", "CLUSTER_SERIES_SCHEMA"]

#: Machine-level usage samples (one row per machine per tick). All
#: usage columns are in largest-machine units, like the real trace.
MACHINE_USAGE_SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.float64),
    "machine_id": np.dtype(np.int64),
    "cpu_usage": np.dtype(np.float64),
    "mem_usage": np.dtype(np.float64),
    "mem_assigned": np.dtype(np.float64),
    "page_cache": np.dtype(np.float64),
    "cpu_mid_high": np.dtype(np.float64),  # usage by priority >= 5
    "cpu_high": np.dtype(np.float64),  # usage by priority >= 9
    "mem_mid_high": np.dtype(np.float64),
    "mem_high": np.dtype(np.float64),
    "n_running": np.dtype(np.int64),
}

#: Cluster-level queue-state series (one row per tick).
CLUSTER_SERIES_SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.float64),
    "n_pending": np.dtype(np.int64),
    "n_running": np.dtype(np.int64),
    "n_finished": np.dtype(np.int64),
    "n_abnormal": np.dtype(np.int64),
}


@dataclass(frozen=True)
class MonitorConfig:
    """Sampling period and measurement-noise amplitudes.

    ``cpu_noise``/``mem_noise``/``page_noise`` are relative per-task
    standard deviations; machine-level noise scales as base divided by
    the square root of the running-task count (independent per-task
    fluctuations partially cancel).
    """

    sample_period: float = 300.0
    cpu_noise: float = 0.45
    mem_noise: float = 0.12
    page_noise: float = 0.25
    #: Rare bursts where tasks momentarily use their full reservation:
    #: per machine-sample probability and the burst's fraction of the
    #: allocated CPU. Drives Fig. 7(a)'s maxima-at-capacity shape.
    cpu_spike_prob: float = 0.002
    cpu_spike_range: tuple[float, float] = (0.9, 1.0)

    def __post_init__(self) -> None:
        if self.sample_period <= 0:
            raise ValueError("sample_period must be positive")
        for name in ("cpu_noise", "mem_noise", "page_noise"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if not 0 <= self.cpu_spike_prob <= 1:
            raise ValueError("cpu_spike_prob must be a probability")
        lo, hi = self.cpu_spike_range
        if not 0 <= lo <= hi <= 1:
            raise ValueError("cpu_spike_range must satisfy 0 <= lo <= hi <= 1")


#: Per-machine sample columns buffered tick-major by the monitor.
_USAGE_COLUMNS: tuple[tuple[str, np.dtype], ...] = tuple(
    (name, dtype)
    for name, dtype in MACHINE_USAGE_SCHEMA.items()
    if name not in ("time", "machine_id")
)


class UsageMonitor:
    """Collects per-tick machine samples and cluster queue states.

    Samples land in preallocated ``(capacity, num_machines)`` column
    buffers (grown geometrically), so a month-long paper-scale run does
    one bulk row-write per tick instead of growing a list of per-tick
    dicts, and :meth:`machine_usage_table` hands out reshaped views
    rather than concatenating thousands of small arrays.
    """

    def __init__(
        self,
        fleet: FleetState,
        config: MonitorConfig,
        rng: np.random.Generator,
    ) -> None:
        self.fleet = fleet
        self.config = config
        self.rng = rng
        self._n_ticks = 0
        self._tick_times = np.empty(0)
        self._buffers: dict[str, np.ndarray] = {
            name: np.empty((0, fleet.num_machines), dtype=dtype)
            for name, dtype in _USAGE_COLUMNS
        }
        # Cluster queue-state series, preallocated tick-major like the
        # machine buffers (grown together in _ensure_capacity).
        self._cluster_buffers: dict[str, np.ndarray] = {
            name: np.empty(0, dtype=np.int64)
            for name in ("n_pending", "n_running", "n_finished", "n_abnormal")
        }

    def _ensure_capacity(self) -> None:
        capacity = len(self._tick_times)
        if self._n_ticks < capacity:
            return
        new_capacity = max(64, 2 * capacity)
        grown_times = np.empty(new_capacity)
        grown_times[:capacity] = self._tick_times
        self._tick_times = grown_times
        for name, buf in self._buffers.items():
            grown = np.empty((new_capacity, buf.shape[1]), dtype=buf.dtype)
            grown[:capacity] = buf
            self._buffers[name] = grown
        for name, buf in self._cluster_buffers.items():
            grown_flat = np.empty(new_capacity, dtype=buf.dtype)
            grown_flat[:capacity] = buf
            self._cluster_buffers[name] = grown_flat

    def _noisy(
        self,
        base: np.ndarray,
        cap: np.ndarray,
        coeff: float,
        n_run: np.ndarray,
        draw: np.ndarray | None = None,
    ) -> np.ndarray:
        if coeff == 0.0:
            # Clip float cancellation residue from incremental updates.
            return np.clip(base, 0.0, cap)
        if draw is None:
            draw = self.rng.standard_normal(base.size)
        scale = coeff / np.sqrt(np.maximum(n_run, 1))
        mult = 1.0 + scale * draw
        return np.clip(base * np.clip(mult, 0.0, None), 0.0, cap)

    def sample(
        self, time: float, n_pending: int, n_finished: int, n_abnormal: int
    ) -> None:
        """Record one tick."""
        fleet = self.fleet
        cfg = self.config
        n_run = fleet.n_running
        n = fleet.num_machines
        # Batch the tick's normal draws into one block where the stream
        # allows: ``standard_normal`` fills element by element from the
        # bit stream, so one ``k*n`` draw consumes PCG64 identically to
        # ``k`` consecutive ``n``-draws and the slices match bit for
        # bit. CPU may join the block only when no spike uniforms sit
        # between its draw and mem/page's; zero-coefficient attributes
        # draw nothing (see _noisy) and stay out of the block.
        n_tail = int(cfg.mem_noise != 0.0) + int(cfg.page_noise != 0.0)
        fuse_cpu = cfg.cpu_spike_prob == 0 and cfg.cpu_noise != 0.0
        block: np.ndarray | None = None
        offset = 0
        if fuse_cpu and n_tail:
            block = self.rng.standard_normal((1 + n_tail) * n)
            cpu = self._noisy(
                fleet.cpu_base, fleet.cpu_capacity, cfg.cpu_noise, n_run,
                draw=block[:n],
            )
            offset = n
        else:
            cpu = self._noisy(
                fleet.cpu_base, fleet.cpu_capacity, cfg.cpu_noise, n_run
            )
            if cfg.cpu_spike_prob > 0:
                # Reservation bursts: a machine's tasks transiently
                # consume (nearly) everything they were allocated.
                spiking = self.rng.uniform(size=cpu.size) < cfg.cpu_spike_prob
                if spiking.any():
                    allocated = fleet.cpu_capacity - fleet.free_cpu
                    lo, hi = cfg.cpu_spike_range
                    burst = np.clip(
                        allocated[spiking], 0.0, None
                    ) * self.rng.uniform(lo, hi, int(spiking.sum()))
                    cpu[spiking] = np.maximum(cpu[spiking], burst)
            if n_tail > 1:
                block = self.rng.standard_normal(n_tail * n)
        mem_draw = page_draw = None
        if block is not None:
            if cfg.mem_noise != 0.0:
                mem_draw = block[offset : offset + n]
                offset += n
            if cfg.page_noise != 0.0:
                page_draw = block[offset : offset + n]
        mem = self._noisy(
            fleet.mem_base, fleet.mem_capacity, cfg.mem_noise, n_run,
            draw=mem_draw,
        )
        page = self._noisy(
            fleet.page_base, fleet.page_capacity, cfg.page_noise, n_run,
            draw=page_draw,
        )
        # Scale the per-band splits by the same realized multiplier so
        # bands stay consistent with the machine total.
        with np.errstate(invalid="ignore", divide="ignore"):
            cpu_mult = np.where(fleet.cpu_base > 0, cpu / fleet.cpu_base, 0.0)
            mem_mult = np.where(fleet.mem_base > 0, mem / fleet.mem_base, 0.0)
        cpu_high = fleet.cpu_band[:, 2] * cpu_mult
        cpu_mid_high = (fleet.cpu_band[:, 1] + fleet.cpu_band[:, 2]) * cpu_mult
        mem_high = fleet.mem_band[:, 2] * mem_mult
        mem_mid_high = (fleet.mem_band[:, 1] + fleet.mem_band[:, 2]) * mem_mult

        self._ensure_capacity()
        i = self._n_ticks
        buffers = self._buffers
        self._tick_times[i] = time
        buffers["cpu_usage"][i] = cpu
        buffers["mem_usage"][i] = mem
        np.minimum(
            fleet.mem_assigned, fleet.mem_capacity, out=buffers["mem_assigned"][i]
        )
        buffers["page_cache"][i] = page
        buffers["cpu_mid_high"][i] = cpu_mid_high
        buffers["cpu_high"][i] = cpu_high
        buffers["mem_mid_high"][i] = mem_mid_high
        buffers["mem_high"][i] = mem_high
        buffers["n_running"][i] = n_run
        cluster = self._cluster_buffers
        cluster["n_pending"][i] = n_pending
        cluster["n_running"][i] = int(n_run.sum())
        cluster["n_finished"][i] = n_finished
        cluster["n_abnormal"][i] = n_abnormal
        self._n_ticks += 1

    def machine_usage_table(self) -> Table:
        """All machine samples as one columnar table.

        The usage columns are zero-copy reshaped views of the tick-major
        buffers; time/machine_id expand via ``repeat``/``tile`` exactly
        as the per-tick concatenation used to.
        """
        n_m = self.fleet.num_machines
        n_t = self._n_ticks
        columns: dict[str, np.ndarray] = {
            "time": np.repeat(self._tick_times[:n_t], n_m),
            "machine_id": np.tile(self.fleet.machine_ids, n_t),
        }
        for name, _dtype in _USAGE_COLUMNS:
            columns[name] = self._buffers[name][:n_t].reshape(-1)
        return Table(columns, schema=MACHINE_USAGE_SCHEMA)

    def cluster_series_table(self) -> Table:
        n_t = self._n_ticks
        columns: dict[str, np.ndarray] = {"time": self._tick_times[:n_t].copy()}
        for name, buf in self._cluster_buffers.items():
            columns[name] = buf[:n_t].copy()
        return Table(columns, schema=CLUSTER_SERIES_SCHEMA)
