"""Aggregate a simulated task-event log into per-job summaries.

Lets simulation output feed the same workload analyses (Figs. 2-6)
that the statistical job tables feed, closing the loop between the
mechanistic and statistical generators.
"""

from __future__ import annotations

import numpy as np

from ..traces.schema import JOB_TABLE_SCHEMA, TaskEvent
from ..core.table import Table

__all__ = ["jobs_from_events"]

_TERMINAL = (
    int(TaskEvent.EVICT),
    int(TaskEvent.FAIL),
    int(TaskEvent.FINISH),
    int(TaskEvent.KILL),
    int(TaskEvent.LOST),
)


def jobs_from_events(task_events: Table, horizon: float) -> Table:
    """Build a JOB_TABLE_SCHEMA table from a task-event log.

    Job submit time is its first SUBMIT event; end time is its last
    terminal event (or the horizon for jobs still running). The
    ``cpu_usage``/``mem_usage`` columns hold the mean requested
    resources across the job's events — the closest per-job demand
    proxy available from an event log.
    """
    if len(task_events) == 0:
        raise ValueError("task_events is empty")
    ev = task_events.sort_by("job_id", "time")
    job = ev["job_id"]
    etype = ev["event_type"]
    times = ev["time"]

    bounds = np.flatnonzero(job[1:] != job[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(job)]))
    job_ids = job[starts]

    is_submit = etype == int(TaskEvent.SUBMIT)
    is_terminal = np.isin(etype, _TERMINAL)

    n_jobs = len(job_ids)
    submit = np.empty(n_jobs)
    end = np.empty(n_jobs)
    n_tasks = np.empty(n_jobs, dtype=np.int32)
    cpu = np.empty(n_jobs)
    mem = np.empty(n_jobs)
    prio = np.empty(n_jobs, dtype=np.int16)
    for i, (s, e) in enumerate(zip(starts, ends)):
        seg_sub = times[s:e][is_submit[s:e]]
        submit[i] = seg_sub[0] if seg_sub.size else times[s]
        seg_term = times[s:e][is_terminal[s:e]]
        alive = seg_sub.size > seg_term.size
        end[i] = horizon if alive else (seg_term[-1] if seg_term.size else horizon)
        tasks = ev["task_index"][s:e]
        n_tasks[i] = len(np.unique(tasks))
        cpu[i] = ev["cpu_request"][s:e].mean()
        mem[i] = ev["mem_request"][s:e].mean()
        prio[i] = ev["priority"][s]
    return Table(
        {
            "job_id": job_ids.astype(np.int64),
            "user_id": np.zeros(n_jobs, dtype=np.int64),
            "submit_time": submit,
            "end_time": np.maximum(end, submit),
            "priority": prio,
            "num_tasks": n_tasks,
            "cpu_usage": cpu,
            "mem_usage": mem,
        },
        schema=JOB_TABLE_SCHEMA,
    )
