"""Per-task-instance state for the simulator.

A :class:`SimTask` is one submission lineage of a task: resubmissions
after failure or eviction reuse the same object, bumping its
``incarnation`` so stale completion events can be recognized and
dropped (lazy cancellation).
"""

from __future__ import annotations

from ..traces.schema import TaskState

__all__ = ["SimTask"]


class SimTask:
    """Mutable runtime state of one task lineage."""

    __slots__ = (
        "job_id",
        "task_index",
        "priority",
        "band",
        "cpu_request",
        "mem_request",
        "duration",
        "cpu_eff",
        "mem_eff",
        "page_cache",
        "fate",
        "state",
        "machine",
        "incarnation",
        "resubmits",
        "submit_time",
        "start_time",
        "constraints",
        "allowed_mask",
    )

    def __init__(
        self,
        job_id: int,
        task_index: int,
        priority: int,
        band: int,
        cpu_request: float,
        mem_request: float,
        duration: float,
        cpu_eff: float,
        mem_eff: float,
        page_cache: float,
        fate: int,
        submit_time: float,
    ) -> None:
        self.job_id = job_id
        self.task_index = task_index
        self.priority = priority
        self.band = band
        self.cpu_request = cpu_request
        self.mem_request = mem_request
        self.duration = duration
        # Effective (actual) usage while running, already scaled by the
        # task's utilization factor; in largest-machine units.
        self.cpu_eff = cpu_eff
        self.mem_eff = mem_eff
        self.page_cache = page_cache
        self.fate = fate
        self.state = TaskState.PENDING
        self.machine = -1
        self.incarnation = 0
        self.resubmits = 0
        self.submit_time = submit_time
        self.start_time = -1.0
        # Placement constraints (repro.sim.constraints): the tuple of
        # Constraint objects and the precomputed machine mask, or None
        # when the task is unconstrained.
        self.constraints: tuple = ()
        self.allowed_mask = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimTask(job={self.job_id}, idx={self.task_index}, "
            f"prio={self.priority}, state={self.state.name})"
        )
