"""Per-task-instance state for the simulator.

A :class:`SimTask` is one submission lineage of a task: resubmissions
after failure or eviction reuse the same object, bumping its
``incarnation`` so stale completion events can be recognized and
dropped (lazy cancellation). The scalar golden-reference engine
materializes one ``SimTask`` per request; the fast engine instead keeps
every per-task quantity in :class:`TaskColumns` — one structure-of-
arrays block built once per run — and refers to tasks by row index.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import TaskState, priority_band_array

__all__ = ["SimTask", "TaskColumns"]


@dataclass(frozen=True)
class TaskColumns:
    """Immutable structure-of-arrays view of a request stream.

    One row per submission lineage, in arrival order. The fast engine
    keeps its *mutable* per-task state (state, machine, incarnation,
    resubmit count, fate, start time) in plain per-row sequences of its
    own; these columns carry everything that never changes after
    :meth:`from_requests`, and the final event log is assembled by
    fancy-indexing them with the recorded row indices instead of
    reading attributes task by task.
    """

    submit_time: np.ndarray
    job_id: np.ndarray
    task_index: np.ndarray
    priority: np.ndarray
    band: np.ndarray
    cpu_request: np.ndarray
    mem_request: np.ndarray
    duration: np.ndarray
    cpu_eff: np.ndarray
    mem_eff: np.ndarray
    page_cache: np.ndarray
    fate: np.ndarray

    @classmethod
    def from_requests(cls, requests) -> "TaskColumns":
        """Build the column block from a ``TaskRequests`` stream."""
        return cls(
            submit_time=np.asarray(requests.submit_time, dtype=np.float64),
            job_id=np.asarray(requests.job_id, dtype=np.int64),
            task_index=np.asarray(requests.task_index, dtype=np.int32),
            priority=np.asarray(requests.priority, dtype=np.int16),
            band=priority_band_array(requests.priority),
            cpu_request=np.asarray(requests.cpu_request, dtype=np.float64),
            mem_request=np.asarray(requests.mem_request, dtype=np.float64),
            duration=np.asarray(requests.duration, dtype=np.float64),
            cpu_eff=np.asarray(
                requests.cpu_request * requests.cpu_utilization,
                dtype=np.float64,
            ),
            mem_eff=np.asarray(
                requests.mem_request * requests.mem_utilization,
                dtype=np.float64,
            ),
            page_cache=np.asarray(requests.page_cache, dtype=np.float64),
            fate=np.asarray(requests.fate, dtype=np.int64),
        )

    def __len__(self) -> int:
        return len(self.submit_time)


class SimTask:
    """Mutable runtime state of one task lineage."""

    __slots__ = (
        "job_id",
        "task_index",
        "priority",
        "band",
        "cpu_request",
        "mem_request",
        "duration",
        "cpu_eff",
        "mem_eff",
        "page_cache",
        "fate",
        "state",
        "machine",
        "incarnation",
        "resubmits",
        "submit_time",
        "start_time",
        "constraints",
        "allowed_mask",
    )

    def __init__(
        self,
        job_id: int,
        task_index: int,
        priority: int,
        band: int,
        cpu_request: float,
        mem_request: float,
        duration: float,
        cpu_eff: float,
        mem_eff: float,
        page_cache: float,
        fate: int,
        submit_time: float,
    ) -> None:
        self.job_id = job_id
        self.task_index = task_index
        self.priority = priority
        self.band = band
        self.cpu_request = cpu_request
        self.mem_request = mem_request
        self.duration = duration
        # Effective (actual) usage while running, already scaled by the
        # task's utilization factor; in largest-machine units.
        self.cpu_eff = cpu_eff
        self.mem_eff = mem_eff
        self.page_cache = page_cache
        self.fate = fate
        self.state = TaskState.PENDING
        self.machine = -1
        self.incarnation = 0
        self.resubmits = 0
        self.submit_time = submit_time
        self.start_time = -1.0
        # Placement constraints (repro.sim.constraints): the tuple of
        # Constraint objects and the precomputed machine mask, or None
        # when the task is unconstrained.
        self.constraints: tuple = ()
        self.allowed_mask = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimTask(job={self.job_id}, idx={self.task_index}, "
            f"prio={self.priority}, state={self.state.name})"
        )
