"""Machine availability churn.

The clusterdata trace ships a machine-events table: machines leave for
maintenance/failures and return. Churn is one source of the trace's
eviction events (tasks on a downed machine are evicted and resubmitted)
and contributes to host-load variability. The model is a per-machine
alternating renewal process: exponential uptimes and downtimes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChurnModel", "MachineOutage", "sample_outages"]


@dataclass(frozen=True)
class ChurnModel:
    """Alternating up/down renewal process per machine.

    Defaults give a mean availability of ~99.4% (one ~2-hour outage
    per two-week uptime), in the ballpark of production fleets.
    """

    mean_uptime: float = 14 * 86400.0
    mean_downtime: float = 2 * 3600.0

    def __post_init__(self) -> None:
        if self.mean_uptime <= 0 or self.mean_downtime <= 0:
            raise ValueError("mean uptime/downtime must be positive")

    @property
    def availability(self) -> float:
        """Long-run fraction of time a machine is up."""
        return self.mean_uptime / (self.mean_uptime + self.mean_downtime)


@dataclass(frozen=True)
class MachineOutage:
    """One down interval of one machine."""

    machine: int
    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("outage must have positive length")


def sample_outages(
    model: ChurnModel,
    num_machines: int,
    horizon: float,
    rng: np.random.Generator,
) -> list[MachineOutage]:
    """Draw every machine's outages over ``[0, horizon)``, time-sorted."""
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    outages: list[MachineOutage] = []
    for m in range(num_machines):
        t = float(rng.exponential(model.mean_uptime))
        while t < horizon:
            down = float(rng.exponential(model.mean_downtime))
            end = min(t + down, horizon)
            if end > t:
                outages.append(MachineOutage(machine=m, start=t, end=end))
            t = end + float(rng.exponential(model.mean_uptime))
    outages.sort(key=lambda o: o.start)
    return outages
