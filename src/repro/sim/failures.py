"""Failure semantics: how far a task runs before each terminal fate.

The workload generator assigns every task instance a *fate* (finish,
fail, kill, lost — eviction instead happens mechanistically through
preemption). This module decides the effective run time for each fate
and whether a dead task is resubmitted, reproducing the paper's
Sec. IV.B.1 event mix: ~59% of the 44M completion events are abnormal,
dominated by fail (~50% of abnormal) and kill (~30.7%).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.schema import TaskEvent

__all__ = ["FailureModel"]


@dataclass(frozen=True)
class FailureModel:
    """Run-fraction ranges per fate plus resubmission policy."""

    fail_fraction: tuple[float, float] = (0.02, 0.9)
    kill_fraction: tuple[float, float] = (0.02, 1.0)
    lost_fraction: tuple[float, float] = (0.02, 0.5)
    #: Fate-assigned (system-initiated) evictions, e.g. machine
    #: maintenance — preemption evictions happen mechanistically on top.
    evict_fraction: tuple[float, float] = (0.02, 0.8)
    resubmit_prob: float = 0.65
    max_resubmits: int = 3
    #: Fate distribution for *resubmitted* incarnations. Redrawing i.i.d.
    #: makes the completion-event mix equal this distribution regardless
    #: of retry depth — calibrated to Sec. IV.B.1's 59.2% abnormal.
    refate_probs: tuple[tuple[str, float], ...] = (
        ("finish", 0.408),
        ("fail", 0.296),
        ("kill", 0.182),
        ("evict", 0.104),
        ("lost", 0.010),
    )

    def __post_init__(self) -> None:
        for name in (
            "fail_fraction",
            "kill_fraction",
            "lost_fraction",
            "evict_fraction",
        ):
            lo, hi = getattr(self, name)
            if not 0 < lo <= hi <= 1:
                raise ValueError(f"{name} must satisfy 0 < lo <= hi <= 1")
        if not 0 <= self.resubmit_prob <= 1:
            raise ValueError("resubmit_prob must be a probability")
        if self.max_resubmits < 0:
            raise ValueError("max_resubmits must be non-negative")
        total = sum(p for _, p in self.refate_probs)
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"refate_probs must sum to 1, got {total}")

    def redraw_fate(self, rng: np.random.Generator) -> int:
        """Draw an i.i.d. fate for a resubmitted incarnation."""
        names = [name for name, _ in self.refate_probs]
        probs = [p for _, p in self.refate_probs]
        pick = names[int(rng.choice(len(names), p=probs))]
        return int(TaskEvent[pick.upper()])

    def run_time(
        self, fate: int, duration: float, rng: np.random.Generator
    ) -> float:
        """Wall-clock the task actually runs before its terminal event."""
        if fate == int(TaskEvent.FINISH):
            return duration
        if fate == int(TaskEvent.FAIL):
            lo, hi = self.fail_fraction
        elif fate == int(TaskEvent.KILL):
            lo, hi = self.kill_fraction
        elif fate == int(TaskEvent.LOST):
            lo, hi = self.lost_fraction
        elif fate == int(TaskEvent.EVICT):
            lo, hi = self.evict_fraction
        else:
            raise ValueError(f"fate {fate} has no run-time rule")
        return duration * rng.uniform(lo, hi)

    def resubmits(self, fate: int, resubmits_so_far: int, rng: np.random.Generator) -> bool:
        """Whether a dead task re-enters the pending queue.

        Failed and evicted tasks retry with probability
        ``resubmit_prob`` up to ``max_resubmits`` times; killed and lost
        tasks do not come back (the user gave up / the data is gone).
        """
        if resubmits_so_far >= self.max_resubmits:
            return False
        if fate in (int(TaskEvent.FAIL), int(TaskEvent.EVICT)):
            return bool(rng.uniform() < self.resubmit_prob)
        return False
