"""Event-driven simulation core.

A minimal, allocation-light event queue: entries are ``(time, seq,
kind, payload)`` tuples on a binary heap. Cancellation uses lazy
invalidation — callers attach an incarnation counter to their payloads
and drop stale pops — which keeps the hot loop free of bookkeeping.

The batched drain (:meth:`EventQueue.pop_batch`) pops every event
sharing the earliest timestamp in one call. Because :meth:`push`
rejects past times and the tie-break sequence only grows, any event
pushed *while a batch is being processed* sorts strictly after the
whole batch — so interleaving ``pop_batch`` with pushes preserves the
exact global ``(time, seq)`` processing order of one-at-a-time pops.
"""

from __future__ import annotations

import heapq
import math
from typing import Any

__all__ = ["EventQueue"]


class EventQueue:
    """Time-ordered event queue with a stable tie-break sequence."""

    __slots__ = ("_heap", "_seq", "_time")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._time = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def now(self) -> float:
        """Timestamp of the most recently popped event."""
        return self._time

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event. Events at equal times pop in push order.

        Non-finite times (NaN, +/-inf) are rejected: NaN compares false
        against everything, which would silently corrupt the heap's
        ordering invariant rather than fail loudly.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._time:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._time}"
            )
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, Any]:
        """Pop the earliest event; advances :attr:`now`."""
        time, _seq, kind, payload = heapq.heappop(self._heap)
        self._time = time
        return time, kind, payload

    def pop_batch(self) -> list[tuple[float, int, Any]]:
        """Pop every event sharing the earliest timestamp, in push order.

        Equivalent to calling :meth:`pop` until the head time changes,
        but a single call per timestamp window keeps the simulator's
        hot loop free of per-event peek/compare overhead.
        """
        heap = self._heap
        time, _seq, kind, payload = heapq.heappop(heap)
        self._time = time
        batch = [(time, kind, payload)]
        while heap and heap[0][0] == time:
            _t, _s, kind, payload = heapq.heappop(heap)
            batch.append((time, kind, payload))
        return batch

    def peek_time(self) -> float | None:
        """Time of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None
