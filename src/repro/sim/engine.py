"""Event-driven simulation core.

A minimal, allocation-light event queue: entries are ``(time, seq,
kind, payload)`` tuples on a binary heap. Cancellation uses lazy
invalidation — callers attach an incarnation counter to their payloads
and drop stale pops — which keeps the hot loop free of bookkeeping.

The batched drain (:meth:`EventQueue.pop_batch`) pops every event
sharing the earliest timestamp in one call. Because :meth:`push`
rejects past times and the tie-break sequence only grows, any event
pushed *while a batch is being processed* sorts strictly after the
whole batch — so interleaving ``pop_batch`` with pushes preserves the
exact global ``(time, seq)`` processing order of one-at-a-time pops.

:class:`CalendarQueue` is the fast engine's drop-in replacement: a
calendar (bucketed) queue keyed on the monitor's tick grid. Pushes are
O(1) list appends into the target bucket; a bucket is sorted once, when
the queue first drains into it. Events pushed *behind* the already-
sorted frontier (legal: their time is still >= ``now``) go to a small
overflow heap consulted alongside the snapshot, so the global
``(time, seq)`` pop order is identical to the binary heap's — a
property test pits the two against each other on adversarial schedules.
"""

from __future__ import annotations

import heapq
import math
from typing import Any

__all__ = ["CalendarQueue", "EventQueue"]

#: Event kinds shared by the scalar and SoA engines. ``ARRIVAL`` is
#: reserved (arrivals are merged from the pre-sorted request stream,
#: not queued); the rest appear as ``kind`` values on queue entries.
ARRIVAL, COMPLETE, TICK, MACHINE_DOWN, MACHINE_UP = 0, 1, 2, 3, 4


class EventQueue:
    """Time-ordered event queue with a stable tie-break sequence."""

    __slots__ = ("_heap", "_seq", "_time")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._time = 0.0

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def now(self) -> float:
        """Timestamp of the most recently popped event."""
        return self._time

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event. Events at equal times pop in push order.

        Non-finite times (NaN, +/-inf) are rejected: NaN compares false
        against everything, which would silently corrupt the heap's
        ordering invariant rather than fail loudly.
        """
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._time:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._time}"
            )
        heapq.heappush(self._heap, (time, self._seq, kind, payload))
        self._seq += 1

    def pop(self) -> tuple[float, int, Any]:
        """Pop the earliest event; advances :attr:`now`."""
        time, _seq, kind, payload = heapq.heappop(self._heap)
        self._time = time
        return time, kind, payload

    def pop_batch(self) -> list[tuple[float, int, Any]]:
        """Pop every event sharing the earliest timestamp, in push order.

        Equivalent to calling :meth:`pop` until the head time changes,
        but a single call per timestamp window keeps the simulator's
        hot loop free of per-event peek/compare overhead.
        """
        heap = self._heap
        time, _seq, kind, payload = heapq.heappop(heap)
        self._time = time
        batch = [(time, kind, payload)]
        while heap and heap[0][0] == time:
            _t, _s, kind, payload = heapq.heappop(heap)
            batch.append((time, kind, payload))
        return batch

    def peek_time(self) -> float | None:
        """Time of the next event, or None when empty."""
        return self._heap[0][0] if self._heap else None


class CalendarQueue:
    """Calendar (bucketed) event queue on a fixed time grid.

    Same contract as :class:`EventQueue` — ``push``/``pop``/
    ``pop_batch``/``peek_time``/``now``, past and non-finite times
    rejected, FIFO at equal timestamps — but with O(1) unsorted pushes.
    Buckets are ``width`` seconds wide (the simulator passes the
    monitor's sample period, so one bucket holds one tick plus the
    completions landing inside that tick window); times at or beyond
    ``horizon`` share a single overflow bucket, which stays correct
    because every bucket is sorted before it drains.

    Invariants the property tests pin down:

    * Entries are totally ordered by ``(time, seq)``; ``seq`` is the
      push sequence, so equal-time events pop in push order.
    * A bucket's list is sorted exactly once, when the drain frontier
      reaches it. Later pushes into an already-sorted region (time
      still >= ``now``) land in the ``_late`` heap; its entries always
      carry larger ``seq`` than the sorted snapshot they interleave
      with, so merging snapshot-first at equal times preserves the
      global ``(time, seq)`` order.
    * ``_late`` is empty whenever the frontier advances to a new
      bucket, so no event is ever left behind the frontier.
    """

    __slots__ = (
        "_width",
        "_buckets",
        "_frontier",
        "_snapshot",
        "_si",
        "_late",
        "_seq",
        "_time",
        "_len",
    )

    def __init__(self, width: float, horizon: float) -> None:
        if not math.isfinite(width) or width <= 0:
            raise ValueError(f"bucket width must be positive, got {width!r}")
        if not math.isfinite(horizon) or horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon!r}")
        n_buckets = int(horizon / width) + 2
        self._width = width
        self._buckets: list[list | None] = [None] * n_buckets
        #: Index of the next bucket the drain frontier may sort.
        self._frontier = 0
        #: Sorted snapshot of the bucket currently draining.
        self._snapshot: list[tuple[float, int, int, Any]] = []
        self._si = 0
        #: Heap of entries pushed behind the sorted frontier.
        self._late: list[tuple[float, int, int, Any]] = []
        self._seq = 0
        self._time = 0.0
        self._len = 0

    def __len__(self) -> int:
        return self._len

    @property
    def now(self) -> float:
        """Timestamp of the most recently popped event."""
        return self._time

    def push(self, time: float, kind: int, payload: Any = None) -> None:
        """Schedule an event; equal-time events pop in push order."""
        if not math.isfinite(time):
            raise ValueError(f"event time must be finite, got {time!r}")
        if time < self._time:
            raise ValueError(
                f"cannot schedule into the past: {time} < now={self._time}"
            )
        entry = (time, self._seq, kind, payload)
        self._seq += 1
        self._len += 1
        b = int(time / self._width)
        if b >= len(self._buckets):
            b = len(self._buckets) - 1
        if b < self._frontier:
            heapq.heappush(self._late, entry)
            return
        bucket = self._buckets[b]
        if bucket is None:
            self._buckets[b] = [entry]
        else:
            bucket.append(entry)

    def _advance(self) -> None:
        """Sort the next non-empty bucket into the drain snapshot."""
        buckets = self._buckets
        b = self._frontier
        n = len(buckets)
        while b < n and buckets[b] is None:
            b += 1
        if b == n:  # pragma: no cover - guarded by _len checks
            raise IndexError("pop from an empty CalendarQueue")
        snapshot = buckets[b]
        buckets[b] = None
        snapshot.sort()  # by (time, seq); seq unique so payloads never compare
        self._snapshot = snapshot
        self._si = 0
        self._frontier = b + 1

    def _head(self) -> tuple[float, int, int, Any]:
        """Earliest entry without removing it (queue must be non-empty)."""
        if self._si == len(self._snapshot) and not self._late:
            self._advance()
        snap_head = (
            self._snapshot[self._si]
            if self._si < len(self._snapshot)
            else None
        )
        late_head = self._late[0] if self._late else None
        if snap_head is None:
            return late_head
        if late_head is None or snap_head < late_head:
            return snap_head
        return late_head

    def peek_time(self) -> float | None:
        """Time of the next event, or None when empty."""
        if not self._len:
            return None
        return self._head()[0]

    def _pop_head(self) -> tuple[float, int, int, Any]:
        snap_head = (
            self._snapshot[self._si]
            if self._si < len(self._snapshot)
            else None
        )
        if snap_head is not None and (
            not self._late or snap_head < self._late[0]
        ):
            self._si += 1
        else:
            snap_head = heapq.heappop(self._late)
        self._len -= 1
        return snap_head

    def pop(self) -> tuple[float, int, Any]:
        """Pop the earliest event; advances :attr:`now`."""
        if not self._len:
            raise IndexError("pop from an empty CalendarQueue")
        self._head()  # loads the next bucket snapshot if needed
        time, _seq, kind, payload = self._pop_head()
        self._time = time
        return time, kind, payload

    def pop_batch(self) -> list[tuple[float, int, Any]]:
        """Pop every event sharing the earliest timestamp, in push order.

        Equal-time entries split across the sorted snapshot and the
        late heap merge snapshot-first: snapshot entries were pushed
        before the bucket sorted, so their ``seq`` is always smaller.
        """
        if not self._len:
            raise IndexError("pop from an empty CalendarQueue")
        self._head()  # loads the next bucket snapshot if needed
        time, _seq, kind, payload = self._pop_head()
        self._time = time
        batch = [(time, kind, payload)]
        snapshot, late = self._snapshot, self._late
        si = self._si
        while si < len(snapshot) and snapshot[si][0] == time:
            _t, _s, kind, payload = snapshot[si]
            si += 1
            batch.append((time, kind, payload))
        self._len -= si - self._si
        self._si = si
        while late and late[0][0] == time:
            _t, _s, kind, payload = heapq.heappop(late)
            self._len -= 1
            batch.append((time, kind, payload))
        return batch
