"""Optional compiled hot loop for the SoA engine (cffi + gcc).

The pure-Python SoA engine in :mod:`repro.sim.soa` is the portable
fast path; this module compiles ``_kernel.c`` — a literal C
transcription of the same event loop — when a C compiler and ``cffi``
are available, for another order of magnitude. Everything is gated:

* Build failures, a missing compiler, or a missing ``cffi`` simply
  disable the kernel (``load()`` returns None) and the Python engine
  runs instead. Set ``REPRO_SIM_PURE_PYTHON=1`` to force that off
  switch.
* The kernel reimplements PCG64 (XSL-RR 128/64) for its scalar
  uniform draws. ``load()`` verifies the C stream against
  ``numpy.random.Generator.random`` bit for bit before accepting the
  build — if NumPy ever changed its PCG64, the kernel would refuse
  itself rather than silently diverge.
* :func:`try_run` returns None for configurations the kernel does not
  cover (non-PCG64 bit generators, the ``random`` placement policy,
  ``FailureModel`` subclasses), falling back to the Python engine.

Builds are cached under ``$XDG_CACHE_HOME/repro-ckernel/<hash>`` keyed
by the C source, so the compile cost is paid once per source change.

The monitor stays in Python: the kernel exits at every tick, the PCG64
position is written back into the real bit generator (the scalar draws
consumed exactly one uint64 each, so the position is exact), the
monitor draws its vectorized noise, and the possibly-advanced state is
handed back to C. The fleet arrays are shared buffers — C writes them
in place, the monitor reads them directly, nothing is synced.
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
from pathlib import Path

import numpy as np

from ..core.table import Table
from ..traces.schema import TASK_EVENT_SCHEMA, TaskEvent
from .churn import sample_outages
from .failures import FailureModel
from .machine import FleetState
from .monitor import UsageMonitor
from .task import TaskColumns

__all__ = ["load", "try_run"]

_CDEF = """
typedef struct {
    uint64_t pcg_s_hi, pcg_s_lo, pcg_i_hi, pcg_i_lo;
    double *log_time;
    int64_t *log_row;
    int8_t *log_etype;
    int64_t *log_machine;
    int64_t log_n, log_cap;
    int64_t pend_n;
    int64_t c_finish, c_fail, c_kill, c_evict, c_lost, c_submitted,
        c_scheduled;
    int64_t n_finished, n_abnormal;
    double exit_time;
    int32_t error;
    ...;
} SimState;

SimState *sim_new(int32_t n_tasks, int32_t n_m, int32_t policy,
                  int32_t preemption, double horizon, double period,
                  double resubmit_prob, int32_t max_resubmits,
                  double *submit_time, int16_t *priority, int8_t *band,
                  double *cpu_req, double *mem_req, double *duration,
                  double *cpu_eff, double *mem_eff, double *page_cache,
                  int8_t *fate0, int32_t *mask_idx, uint8_t *mask_pool,
                  double *cap, double *free_cpu, double *free_mem,
                  double *cpu_base, double *mem_base, double *mem_assigned,
                  double *page_base, double *cpu_band, double *mem_band,
                  int64_t *n_running, uint8_t *avail);
void sim_free(SimState *s);
void sim_set_run_rule(SimState *s, int32_t code, double lo, double hi);
void sim_set_refate(SimState *s, int32_t n, double *cdf, int8_t *codes);
void sim_push_tick(SimState *s, double time);
void sim_push_churn(SimState *s, double time, int32_t up, int32_t machine);
int sim_run(SimState *s);
int64_t sim_still_running(SimState *s);
void pcg_fill(uint64_t s_hi, uint64_t s_lo, uint64_t i_hi, uint64_t i_lo,
              double *out, int n);
"""

_MASK64 = (1 << 64) - 1

#: Placement policies the kernel implements (code order matters).
_POLICIES = ("balance", "best_fit", "first_fit")

_cached: tuple | None = None


def _build():
    """Compile (or load from cache) the kernel; raises on any failure."""
    from cffi import FFI

    src_path = Path(__file__).with_name("_kernel.c")
    source = src_path.read_text()
    key = hashlib.sha256((_CDEF + source).encode()).hexdigest()[:16]
    module_name = f"_repro_sim_kernel_{key}"
    cache_root = Path(
        os.environ.get("XDG_CACHE_HOME", os.path.expanduser("~/.cache"))
    )
    build_dir = cache_root / "repro-ckernel" / key
    so_path = next(build_dir.glob(f"{module_name}*.so"), None)
    if so_path is None:
        build_dir.mkdir(parents=True, exist_ok=True)
        ffibuilder = FFI()
        ffibuilder.cdef(_CDEF)
        ffibuilder.set_source(
            module_name, source, extra_compile_args=["-O2"]
        )
        so_path = Path(
            ffibuilder.compile(tmpdir=str(build_dir), verbose=False)
        )
    spec = importlib.util.spec_from_file_location(module_name, so_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.ffi, module.lib


def _selftest(ffi, lib) -> bool:
    """Verify the C PCG64 against NumPy's, bit for bit."""
    # Known-answer test: the seed is deliberately a fixed constant so
    # the C stream is compared against one fixed NumPy reference.
    bitgen = np.random.PCG64(1234567)  # reprolint: disable=REP102
    state = bitgen.state["state"]
    out = ffi.new("double[]", 64)
    lib.pcg_fill(
        state["state"] >> 64,
        state["state"] & _MASK64,
        state["inc"] >> 64,
        state["inc"] & _MASK64,
        out,
        64,
    )
    reference = np.random.Generator(bitgen).random(64)  # reprolint: disable=REP102
    return list(out) == reference.tolist()


def load():
    """The (ffi, lib) pair, or None when the kernel is unavailable."""
    global _cached
    if _cached is not None:
        return _cached[0]
    if os.environ.get("REPRO_SIM_PURE_PYTHON"):
        _cached = (None,)
        return None
    try:
        ffi, lib = _build()
        ok = _selftest(ffi, lib)
    except Exception:
        ok = False
    _cached = ((ffi, lib),) if ok else (None,)
    return _cached[0]


def _f8(arr: np.ndarray, ffi):
    return ffi.cast("double *", arr.ctypes.data)


def try_run(sim, requests, horizon: float):
    """Run on the C kernel, or return None when not eligible/available.

    The caller (:func:`repro.sim.soa.run_soa`) has already validated
    ``horizon`` and the failure model type.
    """
    config = sim.config
    if config.placement not in _POLICIES:
        return None
    if type(config.failures) is not FailureModel:
        return None
    rng = sim.rng
    if type(rng.bit_generator).__name__ != "PCG64":
        return None
    if len(config.failures.refate_probs) > 8:
        return None
    kernel = load()
    if kernel is None:
        return None
    ffi, lib = kernel
    from .cluster import SimResult  # circular at import time

    failures = config.failures
    fleet = FleetState(sim.machines)
    monitor = UsageMonitor(fleet, config.monitor, rng)
    n_m = fleet.num_machines
    cols = TaskColumns.from_requests(requests)
    n_tasks = len(cols)

    submit_time = np.ascontiguousarray(cols.submit_time, dtype=np.float64)
    priority = np.ascontiguousarray(cols.priority, dtype=np.int16)
    band = np.ascontiguousarray(cols.band, dtype=np.int8)
    fate0 = np.ascontiguousarray(cols.fate, dtype=np.int8)
    cpu_request = np.ascontiguousarray(cols.cpu_request, dtype=np.float64)
    mem_request = np.ascontiguousarray(cols.mem_request, dtype=np.float64)
    duration = np.ascontiguousarray(cols.duration, dtype=np.float64)
    cpu_eff = np.ascontiguousarray(cols.cpu_eff, dtype=np.float64)
    mem_eff = np.ascontiguousarray(cols.mem_eff, dtype=np.float64)
    page_cache = np.ascontiguousarray(cols.page_cache, dtype=np.float64)

    # Constraint sampling draws from the Python generator in task order,
    # exactly like the other engines, before any simulation draw.
    mask_idx = np.full(n_tasks, -1, dtype=np.int32)
    mask_rows: list[np.ndarray] = []
    if config.constraints is not None:
        model = config.constraints
        if model.num_machines != n_m:
            raise ValueError(
                "constraint model machine count does not match fleet"
            )
        for i in range(n_tasks):
            constraints = model.sample_constraints(rng)
            if constraints:
                mask_idx[i] = len(mask_rows)
                mask_rows.append(
                    model.satisfying_mask(constraints).astype(np.uint8)
                )
    if mask_rows:
        mask_pool = np.ascontiguousarray(np.stack(mask_rows), dtype=np.uint8)
        mask_pool_ptr = ffi.cast("uint8_t *", mask_pool.ctypes.data)
    else:
        mask_pool = None
        mask_pool_ptr = ffi.NULL

    avail_u8 = fleet.available.view(np.uint8)
    # Keep every buffer the kernel borrows alive for the whole run.
    keepalive = (
        cols, submit_time, priority, band, fate0, cpu_request, mem_request,
        duration, cpu_eff, mem_eff, page_cache, mask_idx, mask_pool,
        fleet, avail_u8,
    )

    state = lib.sim_new(
        n_tasks,
        n_m,
        _POLICIES.index(config.placement),
        1 if config.preemption else 0,
        horizon,
        config.monitor.sample_period,
        failures.resubmit_prob,
        failures.max_resubmits,
        _f8(submit_time, ffi),
        ffi.cast("int16_t *", priority.ctypes.data),
        ffi.cast("int8_t *", band.ctypes.data),
        _f8(cpu_request, ffi),
        _f8(mem_request, ffi),
        _f8(duration, ffi),
        _f8(cpu_eff, ffi),
        _f8(mem_eff, ffi),
        _f8(page_cache, ffi),
        ffi.cast("int8_t *", fate0.ctypes.data),
        ffi.cast("int32_t *", mask_idx.ctypes.data),
        mask_pool_ptr,
        _f8(fleet.cpu_capacity, ffi),
        _f8(fleet.free_cpu, ffi),
        _f8(fleet.free_mem, ffi),
        _f8(fleet.cpu_base, ffi),
        _f8(fleet.mem_base, ffi),
        _f8(fleet.mem_assigned, ffi),
        _f8(fleet.page_base, ffi),
        _f8(fleet.cpu_band, ffi),
        _f8(fleet.mem_band, ffi),
        ffi.cast("int64_t *", fleet.n_running.ctypes.data),
        ffi.cast("uint8_t *", avail_u8.ctypes.data),
    )
    try:
        fractions = {
            int(TaskEvent.FAIL): failures.fail_fraction,
            int(TaskEvent.KILL): failures.kill_fraction,
            int(TaskEvent.LOST): failures.lost_fraction,
            int(TaskEvent.EVICT): failures.evict_fraction,
        }
        for code, (lo, hi) in fractions.items():
            lib.sim_set_run_rule(state, code, lo, hi)
        refate_codes = np.asarray(
            [int(TaskEvent[name.upper()]) for name, _ in failures.refate_probs],
            dtype=np.int8,
        )
        # Generator.choice's internal CDF: cumsum, normalize by the last.
        refate_cdf = np.asarray(
            [p for _, p in failures.refate_probs], dtype=np.float64
        ).cumsum()
        refate_cdf /= refate_cdf[-1]
        lib.sim_set_refate(
            state,
            len(refate_codes),
            _f8(refate_cdf, ffi),
            ffi.cast("int8_t *", refate_codes.ctypes.data),
        )

        lib.sim_push_tick(state, 0.0)
        if config.churn is not None:
            for outage in sample_outages(config.churn, n_m, horizon, rng):
                lib.sim_push_churn(state, outage.start, 0, outage.machine)
                if outage.end < horizon:
                    lib.sim_push_churn(state, outage.end, 1, outage.machine)

        bitgen = rng.bit_generator
        pcg = bitgen.state["state"]
        state.pcg_s_hi = pcg["state"] >> 64
        state.pcg_s_lo = pcg["state"] & _MASK64
        state.pcg_i_hi = pcg["inc"] >> 64
        state.pcg_i_lo = pcg["inc"] & _MASK64

        period = config.monitor.sample_period

        def _give_back_rng() -> None:
            d = bitgen.state
            d["state"]["state"] = (
                (int(state.pcg_s_hi) << 64) | int(state.pcg_s_lo)
            )
            bitgen.state = d

        while True:
            code = lib.sim_run(state)
            if code == 2:  # monitor tick
                time = state.exit_time
                _give_back_rng()
                monitor.sample(
                    time,
                    int(state.pend_n),
                    int(state.n_finished),
                    int(state.n_abnormal),
                )
                advanced = bitgen.state["state"]["state"]
                state.pcg_s_hi = advanced >> 64
                state.pcg_s_lo = advanced & _MASK64
                if time + period <= horizon:
                    lib.sim_push_tick(state, time + period)
                continue
            break
        if code != 0:
            raise RuntimeError(
                f"simulation kernel failed (error {int(state.error)})"
            )
        _give_back_rng()

        n_ev = int(state.log_n)
        ev_time = np.frombuffer(
            ffi.buffer(state.log_time, 8 * n_ev), dtype=np.float64
        ).copy()
        ev_row = np.frombuffer(
            ffi.buffer(state.log_row, 8 * n_ev), dtype=np.int64
        ).copy()
        ev_type = np.frombuffer(
            ffi.buffer(state.log_etype, n_ev), dtype=np.int8
        ).copy()
        ev_machine = np.frombuffer(
            ffi.buffer(state.log_machine, 8 * n_ev), dtype=np.int64
        ).copy()
        counts = {
            "finish": int(state.c_finish),
            "fail": int(state.c_fail),
            "kill": int(state.c_kill),
            "evict": int(state.c_evict),
            "lost": int(state.c_lost),
            "submitted": int(state.c_submitted),
            "scheduled": int(state.c_scheduled),
            "still_running": int(lib.sim_still_running(state)),
            "still_pending": int(state.pend_n),
        }
    finally:
        lib.sim_free(state)
    del keepalive

    task_events = Table(
        {
            "time": ev_time,
            "job_id": cols.job_id[ev_row],
            "task_index": cols.task_index[ev_row],
            "machine_id": ev_machine,
            "event_type": ev_type,
            "priority": cols.priority[ev_row],
            "cpu_request": cols.cpu_request[ev_row],
            "mem_request": cols.mem_request[ev_row],
        },
        schema=TASK_EVENT_SCHEMA,
    )
    return SimResult(
        task_events=task_events,
        machine_usage=monitor.machine_usage_table(),
        cluster_series=monitor.cluster_series_table(),
        machines=sim.machines,
        horizon=horizon,
        counts=counts,
    )
