/* C hot loop for the SoA simulator engine (see soa.py / _ckernel.py).
 *
 * Replicates the pure-Python SoA event loop decision for decision and
 * draw for draw, so the results are byte-identical to both the Python
 * SoA engine and the scalar golden reference:
 *
 *   - All fleet accounting is IEEE-754 double arithmetic transcribed
 *     literally (same expressions, same order, same clamps), and the
 *     fleet arrays are the caller's NumPy buffers written in place.
 *   - Placement is the literal masked first-argmax/argmin: a strict
 *     comparison keeps the first maximum, matching NumPy's argmax
 *     tie-break; scores are computed with the same division.
 *   - Randomness is an exact PCG64 (XSL-RR 128/64) reimplementation:
 *     doubles are (next_uint64 >> 11) * 2^-53, one uint64 per draw,
 *     identical to numpy.random.Generator.random() on a PCG64 bit
 *     generator. The Python glue verifies this bit for bit at load
 *     time and refuses the kernel on any mismatch.
 *   - The event queue is a binary heap ordered by (time, seq) with
 *     seq assigned in push order; any correct priority queue over
 *     that total order pops the exact sequence the Python engines do.
 *   - Per-machine running-task registries are intrusive linked lists
 *     traversed in insertion order, matching dict iteration order in
 *     the Python engines; preemption sorts are stable.
 *
 * The kernel returns to Python at every monitor tick (the monitor
 * draws vectorized noise from the real NumPy generator) and at the
 * end of the run; the PCG64 position is handed back and forth through
 * the SimState fields.
 */

#include <stdint.h>
#include <stdlib.h>
#include <string.h>
#include <math.h>

/* ---- PCG64 (XSL-RR 128/64), exactly numpy's implementation ------------- */

typedef unsigned __int128 u128;

typedef struct {
    u128 state;
    u128 inc;
} pcg64_t;

static inline uint64_t pcg64_next(pcg64_t *r)
{
    r->state = r->state
        * (((u128)2549297995355413924ULL << 64) | 4865540595714422341ULL)
        + r->inc;
    uint64_t xored = (uint64_t)(r->state >> 64) ^ (uint64_t)r->state;
    unsigned rot = (unsigned)(r->state >> 122);
    return (xored >> rot) | (xored << ((-rot) & 63u));
}

static inline double pcg64_double(pcg64_t *r)
{
    return (double)(pcg64_next(r) >> 11) * (1.0 / 9007199254740992.0);
}

/* Self-test hook: fill `out` with doubles from the given 128-bit state. */
void pcg_fill(uint64_t s_hi, uint64_t s_lo, uint64_t i_hi, uint64_t i_lo,
              double *out, int n)
{
    pcg64_t r;
    r.state = ((u128)s_hi << 64) | s_lo;
    r.inc = ((u128)i_hi << 64) | i_lo;
    for (int i = 0; i < n; i++)
        out[i] = pcg64_double(&r);
}

/* ---- event/task constants (mirror repro.traces.schema) ----------------- */

#define EV_SUBMIT 0
#define EV_SCHEDULE 1
#define EV_EVICT 2
#define EV_FAIL 3
#define EV_FINISH 4
#define EV_KILL 5
#define EV_LOST 6

#define ST_PENDING 1
#define ST_RUNNING 2
#define ST_DEAD 3

#define K_COMPLETE 1
#define K_TICK 2
#define K_DOWN 3
#define K_UP 4

#define EXIT_DONE 0
#define EXIT_TICK 2
#define EXIT_ERROR (-1)

/* ---- queues ------------------------------------------------------------ */

typedef struct {
    double time;
    int64_t seq;
    int32_t kind;
    int32_t row; /* task row for COMPLETE, machine for DOWN/UP */
    int32_t inc; /* incarnation for COMPLETE */
} Ev;

typedef struct {
    int32_t negprio;
    int64_t seq;
    int32_t row;
} Pend;

typedef struct {
    /* config */
    int32_t n_tasks, n_m, policy; /* 0=balance 1=best_fit 2=first_fit */
    int32_t preemption;
    double horizon, period;
    double resubmit_prob;
    int32_t max_resubmits;
    int32_t n_refate;
    /* rng position (128-bit state split in halves; inc is constant) */
    uint64_t pcg_s_hi, pcg_s_lo, pcg_i_hi, pcg_i_lo;
    /* immutable task columns (borrowed NumPy buffers) */
    double *submit_time;
    int16_t *priority;
    int8_t *band;
    double *cpu_req, *mem_req, *duration, *cpu_eff, *mem_eff, *page_cache;
    int32_t *mask_idx;  /* -1 or row into mask_pool */
    uint8_t *mask_pool; /* (n_masks, n_m) allowed-machine bitmap */
    /* mutable task state (kernel-owned) */
    int8_t *state;
    int32_t *machine, *incar, *resub;
    int8_t *fate;
    double *start_time;
    int32_t *nxt, *prv; /* registry links */
    /* fleet columns (borrowed NumPy buffers, written in place) */
    double *cap;
    double *free_cpu, *free_mem, *cpu_base, *mem_base, *mem_assigned,
        *page_base;
    double *cpu_band, *mem_band; /* (n_m, 3) row-major */
    int64_t *n_running;
    uint8_t *avail;
    int32_t *head, *tail; /* registry list heads/tails (kernel-owned) */
    /* failure model: per fate code, run-time fraction lo/span */
    double run_lo[8], run_span[8];
    double refate_cdf[8];
    int8_t refate_codes[8];
    /* event log (kernel-owned, reallocated) */
    double *log_time;
    int64_t *log_row;
    int8_t *log_etype;
    int64_t *log_machine;
    int64_t log_n, log_cap;
    /* event heap (kernel-owned) */
    Ev *heap;
    int64_t heap_n, heap_cap, seq;
    /* pending queue (kernel-owned) */
    Pend *pend;
    int64_t pend_n, pend_cap, pend_seq;
    /* cursors / counters */
    int32_t next_arrival;
    int64_t c_finish, c_fail, c_kill, c_evict, c_lost, c_submitted,
        c_scheduled;
    int64_t n_finished, n_abnormal;
    double exit_time;
    int32_t error;
    /* preemption scratch (kernel-owned) */
    int32_t *ord, *ord_tmp; /* n_m */
    double *ordkey;         /* n_m */
    int32_t *lower;         /* n_tasks */
} SimState;

/* ---- event heap, ordered by (time, seq) -------------------------------- */

static inline int ev_lt(const Ev *a, const Ev *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    return a->seq < b->seq;
}

static void heap_push(SimState *s, double time, int32_t kind, int32_t row,
                      int32_t inc)
{
    if (s->heap_n == s->heap_cap) {
        s->heap_cap *= 2;
        s->heap = (Ev *)realloc(s->heap, (size_t)s->heap_cap * sizeof(Ev));
    }
    int64_t i = s->heap_n++;
    Ev *h = s->heap;
    Ev e = {time, s->seq++, kind, row, inc};
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (!ev_lt(&e, &h[p]))
            break;
        h[i] = h[p];
        i = p;
    }
    h[i] = e;
}

static Ev heap_pop(SimState *s)
{
    Ev *h = s->heap;
    Ev top = h[0];
    Ev e = h[--s->heap_n];
    int64_t n = s->heap_n, i = 0;
    while (1) {
        int64_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && ev_lt(&h[c + 1], &h[c]))
            c++;
        if (!ev_lt(&h[c], &e))
            break;
        h[i] = h[c];
        i = c;
    }
    h[i] = e;
    return top;
}

/* ---- pending queue, ordered by (-priority, seq) ------------------------ */

static inline int pend_lt(const Pend *a, const Pend *b)
{
    if (a->negprio != b->negprio)
        return a->negprio < b->negprio;
    return a->seq < b->seq;
}

static void pend_push(SimState *s, int32_t row)
{
    if (s->pend_n == s->pend_cap) {
        s->pend_cap *= 2;
        s->pend = (Pend *)realloc(s->pend, (size_t)s->pend_cap * sizeof(Pend));
    }
    int64_t i = s->pend_n++;
    Pend *h = s->pend;
    Pend e = {-(int32_t)s->priority[row], s->pend_seq++, row};
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        if (!pend_lt(&e, &h[p]))
            break;
        h[i] = h[p];
        i = p;
    }
    h[i] = e;
}

static void pend_pop(SimState *s)
{
    Pend *h = s->pend;
    Pend e = h[--s->pend_n];
    int64_t n = s->pend_n, i = 0;
    if (!n)
        return;
    while (1) {
        int64_t c = 2 * i + 1;
        if (c >= n)
            break;
        if (c + 1 < n && pend_lt(&h[c + 1], &h[c]))
            c++;
        if (!pend_lt(&h[c], &e))
            break;
        h[i] = h[c];
        i = c;
    }
    h[i] = e;
}

/* ---- event log --------------------------------------------------------- */

static void log_append(SimState *s, double time, int64_t row, int8_t etype,
                       int64_t machine)
{
    if (s->log_n == s->log_cap) {
        s->log_cap *= 2;
        s->log_time =
            (double *)realloc(s->log_time, (size_t)s->log_cap * sizeof(double));
        s->log_row = (int64_t *)realloc(s->log_row,
                                        (size_t)s->log_cap * sizeof(int64_t));
        s->log_etype =
            (int8_t *)realloc(s->log_etype, (size_t)s->log_cap * sizeof(int8_t));
        s->log_machine = (int64_t *)realloc(
            s->log_machine, (size_t)s->log_cap * sizeof(int64_t));
    }
    int64_t n = s->log_n++;
    s->log_time[n] = time;
    s->log_row[n] = row;
    s->log_etype[n] = etype;
    s->log_machine[n] = machine;
}

/* ---- registry linked lists (insertion order == dict order) ------------- */

static inline void reg_add(SimState *s, int32_t m, int32_t row)
{
    s->prv[row] = s->tail[m];
    s->nxt[row] = -1;
    if (s->tail[m] >= 0)
        s->nxt[s->tail[m]] = row;
    else
        s->head[m] = row;
    s->tail[m] = row;
}

static inline void reg_remove(SimState *s, int32_t m, int32_t row)
{
    int32_t p = s->prv[row], n = s->nxt[row];
    if (p >= 0)
        s->nxt[p] = n;
    else
        s->head[m] = n;
    if (n >= 0)
        s->prv[n] = p;
    else
        s->tail[m] = p;
}

/* ---- fleet accounting (literal transcription of FleetState) ------------ */

static void fleet_start(SimState *s, int32_t m, int32_t row)
{
    s->free_cpu[m] -= s->cpu_req[row];
    s->free_mem[m] -= s->mem_req[row];
    s->cpu_base[m] += s->cpu_eff[row];
    s->mem_base[m] += s->mem_eff[row];
    s->mem_assigned[m] += s->mem_req[row];
    s->page_base[m] += s->page_cache[row];
    int b = s->band[row];
    s->cpu_band[m * 3 + b] += s->cpu_eff[row];
    s->mem_band[m * 3 + b] += s->mem_eff[row];
    s->n_running[m] += 1;
    reg_add(s, m, row);
}

static inline double clamp_residue(double v)
{
    /* FleetState.stop: `if -1e-12 < v < 0: v = 0.0` */
    return (v < 0.0 && v > -1e-12) ? 0.0 : v;
}

static void fleet_stop(SimState *s, int32_t m, int32_t row)
{
    if (s->machine[row] != m || s->state[row] != ST_RUNNING) {
        s->error = 1;
        return;
    }
    reg_remove(s, m, row);
    s->free_cpu[m] = clamp_residue(s->free_cpu[m] + s->cpu_req[row]);
    s->free_mem[m] = clamp_residue(s->free_mem[m] + s->mem_req[row]);
    s->cpu_base[m] = clamp_residue(s->cpu_base[m] - s->cpu_eff[row]);
    s->mem_base[m] = clamp_residue(s->mem_base[m] - s->mem_eff[row]);
    s->mem_assigned[m] = clamp_residue(s->mem_assigned[m] - s->mem_req[row]);
    s->page_base[m] = clamp_residue(s->page_base[m] - s->page_cache[row]);
    int b = s->band[row];
    s->cpu_band[m * 3 + b] =
        clamp_residue(s->cpu_band[m * 3 + b] - s->cpu_eff[row]);
    s->mem_band[m * 3 + b] =
        clamp_residue(s->mem_band[m * 3 + b] - s->mem_eff[row]);
    s->n_running[m] -= 1;
}

/* ---- placement --------------------------------------------------------- */

static int32_t place(SimState *s, int32_t row)
{
    double cr = s->cpu_req[row], mr = s->mem_req[row];
    int32_t n_m = s->n_m;
    const uint8_t *mask =
        s->mask_idx[row] >= 0 ? s->mask_pool + (size_t)s->mask_idx[row] * n_m
                              : NULL;
    const double *fc = s->free_cpu, *fm = s->free_mem;
    const uint8_t *av = s->avail;
    int32_t best = -1;
    if (s->policy == 0) { /* balance: first argmax of free_cpu/cap */
        double best_s = -1.0;
        for (int32_t m = 0; m < n_m; m++) {
            if (fc[m] >= cr && fm[m] >= mr && av[m] && (!mask || mask[m])) {
                double sc = fc[m] / s->cap[m];
                if (sc > best_s) {
                    best_s = sc;
                    best = m;
                }
            }
        }
    } else if (s->policy == 1) { /* best_fit: first argmin of free_cpu */
        double best_v = INFINITY;
        for (int32_t m = 0; m < n_m; m++) {
            if (fc[m] >= cr && fm[m] >= mr && av[m] && (!mask || mask[m])) {
                if (fc[m] < best_v) {
                    best_v = fc[m];
                    best = m;
                }
            }
        }
    } else { /* first_fit */
        for (int32_t m = 0; m < n_m; m++) {
            if (fc[m] >= cr && fm[m] >= mr && av[m] && (!mask || mask[m])) {
                best = m;
                break;
            }
        }
    }
    return best;
}

/* ---- draws (mirror soa._DoubleStream consumers) ------------------------ */

static inline int8_t refate_draw(SimState *s, pcg64_t *rng)
{
    double u = pcg64_double(rng);
    int n = s->n_refate;
    for (int i = 0; i < n; i++)
        if (s->refate_cdf[i] > u) /* bisect_right */
            return s->refate_codes[i];
    return s->refate_codes[n - 1];
}

static inline int resubmit_decision(SimState *s, pcg64_t *rng, int32_t row,
                                    int f)
{
    if (s->resub[row] >= s->max_resubmits)
        return 0;
    if (f == EV_FAIL || f == EV_EVICT)
        return pcg64_double(rng) < s->resubmit_prob;
    return 0;
}

/* ---- start / evict ----------------------------------------------------- */

static void task_start(SimState *s, pcg64_t *rng, int32_t row, int32_t m,
                       double time)
{
    if (s->machine[row] != -1) {
        s->error = 2;
        return;
    }
    s->state[row] = ST_RUNNING;
    s->machine[row] = m;
    s->start_time[row] = time;
    fleet_start(s, m, row);
    log_append(s, time, row, EV_SCHEDULE, m);
    s->c_scheduled++;
    int f = s->fate[row];
    double run_time;
    if (f == EV_FINISH) {
        run_time = s->duration[row];
    } else {
        if (s->run_span[f] < 0.0) {
            s->error = 3; /* fate without a run-time rule */
            return;
        }
        run_time =
            s->duration[row] * (s->run_lo[f] + s->run_span[f] * pcg64_double(rng));
    }
    double end = time + run_time;
    if (end <= s->horizon)
        heap_push(s, end, K_COMPLETE, row, s->incar[row]);
}

static void task_evict(SimState *s, pcg64_t *rng, int32_t row, double time)
{
    int32_t m = s->machine[row];
    fleet_stop(s, m, row);
    log_append(s, time, row, EV_EVICT, m);
    s->c_evict++;
    s->incar[row]++;
    s->machine[row] = -1;
    if (resubmit_decision(s, rng, row, EV_EVICT)) {
        s->resub[row]++;
        s->fate[row] = refate_draw(s, rng);
        s->state[row] = ST_PENDING;
        log_append(s, time, row, EV_SUBMIT, -1);
        s->c_submitted++;
        pend_push(s, row);
    } else {
        s->state[row] = ST_DEAD;
    }
}

/* ---- preemption -------------------------------------------------------- */

/* Stable merge sort of machine indices by score descending — matches
 * np.argsort(-score, kind="stable"): equal scores keep index order. */
static void msort_desc(const double *key, int32_t *idx, int32_t *tmp,
                       int32_t lo, int32_t hi)
{
    if (hi - lo < 2)
        return;
    int32_t mid = (lo + hi) / 2;
    msort_desc(key, idx, tmp, lo, mid);
    msort_desc(key, idx, tmp, mid, hi);
    int32_t i = lo, j = mid, k = lo;
    while (i < mid && j < hi)
        tmp[k++] = (key[idx[i]] >= key[idx[j]]) ? idx[i++] : idx[j++];
    while (i < mid)
        tmp[k++] = idx[i++];
    while (j < hi)
        tmp[k++] = idx[j++];
    memcpy(idx + lo, tmp + lo, (size_t)(hi - lo) * sizeof(int32_t));
}

/* Find a machine + victim set for `row`; returns the machine (victims
 * appended to s->lower[0..*n_victims)) or -1. Mirrors
 * ClusterSimulator._find_preemption + FleetState.eviction_victims. */
static int32_t find_preemption(SimState *s, int32_t row, int32_t *n_victims)
{
    int32_t n_m = s->n_m;
    for (int32_t m = 0; m < n_m; m++) {
        s->ord[m] = m;
        s->ordkey[m] = s->free_cpu[m] / s->cap[m];
    }
    msort_desc(s->ordkey, s->ord, s->ord_tmp, 0, n_m);
    const uint8_t *mask =
        s->mask_idx[row] >= 0 ? s->mask_pool + (size_t)s->mask_idx[row] * s->n_m
                              : NULL;
    int p = s->priority[row];
    double cr = s->cpu_req[row], mr = s->mem_req[row];
    for (int32_t oi = 0; oi < n_m; oi++) {
        int32_t m = s->ord[oi];
        if (!s->avail[m])
            continue;
        if (mask && !mask[m])
            continue;
        double need_cpu = cr - s->free_cpu[m];
        double need_mem = mr - s->free_mem[m];
        /* Gather lower-priority running tasks in insertion order, then
         * stable-sort by (priority asc, start_time desc) — insertion
         * sort with strict comparisons preserves stability, matching
         * Python's list.sort. */
        int32_t n_lower = 0;
        for (int32_t r = s->head[m]; r >= 0; r = s->nxt[r])
            if (s->priority[r] < p)
                s->lower[n_lower++] = r;
        for (int32_t i = 1; i < n_lower; i++) {
            int32_t r = s->lower[i];
            int pr = s->priority[r];
            double st = s->start_time[r];
            int32_t j = i - 1;
            while (j >= 0) {
                int pj = s->priority[s->lower[j]];
                if (pj < pr ||
                    (pj == pr && !(s->start_time[s->lower[j]] < st)))
                    break;
                s->lower[j + 1] = s->lower[j];
                j--;
            }
            s->lower[j + 1] = r;
        }
        int32_t nv = 0;
        for (int32_t i = 0; i < n_lower; i++) {
            if (need_cpu <= 0 && need_mem <= 0)
                break;
            int32_t victim = s->lower[i];
            s->lower[nv++] = victim; /* victims prefix of the same array */
            need_cpu -= s->cpu_req[victim];
            need_mem -= s->mem_req[victim];
        }
        if (need_cpu > 0 || need_mem > 0)
            continue;
        *n_victims = nv;
        return m;
    }
    *n_victims = 0;
    return -1;
}

/* ---- admission --------------------------------------------------------- */

static int try_place(SimState *s, pcg64_t *rng, int32_t row, double time)
{
    int32_t m = place(s, row);
    if (m >= 0) {
        task_start(s, rng, row, m, time);
        return 1;
    }
    if (s->preemption) {
        int32_t nv = 0;
        int32_t target = find_preemption(s, row, &nv);
        if (target >= 0) {
            for (int32_t i = 0; i < nv; i++)
                task_evict(s, rng, s->lower[i], time);
            task_start(s, rng, row, target, time);
            return 1;
        }
    }
    return 0;
}

static void drain_pending(SimState *s, pcg64_t *rng, double time)
{
    while (s->pend_n) {
        int32_t head = s->pend[0].row;
        int32_t m = place(s, head);
        if (m < 0)
            break;
        pend_pop(s);
        task_start(s, rng, head, m, time);
    }
}

/* ---- lifecycle --------------------------------------------------------- */

SimState *sim_new(int32_t n_tasks, int32_t n_m, int32_t policy,
                  int32_t preemption, double horizon, double period,
                  double resubmit_prob, int32_t max_resubmits,
                  double *submit_time, int16_t *priority, int8_t *band,
                  double *cpu_req, double *mem_req, double *duration,
                  double *cpu_eff, double *mem_eff, double *page_cache,
                  int8_t *fate0, int32_t *mask_idx, uint8_t *mask_pool,
                  double *cap, double *free_cpu, double *free_mem,
                  double *cpu_base, double *mem_base, double *mem_assigned,
                  double *page_base, double *cpu_band, double *mem_band,
                  int64_t *n_running, uint8_t *avail)
{
    SimState *s = (SimState *)calloc(1, sizeof(SimState));
    s->n_tasks = n_tasks;
    s->n_m = n_m;
    s->policy = policy;
    s->preemption = preemption;
    s->horizon = horizon;
    s->period = period;
    s->resubmit_prob = resubmit_prob;
    s->max_resubmits = max_resubmits;
    s->submit_time = submit_time;
    s->priority = priority;
    s->band = band;
    s->cpu_req = cpu_req;
    s->mem_req = mem_req;
    s->duration = duration;
    s->cpu_eff = cpu_eff;
    s->mem_eff = mem_eff;
    s->page_cache = page_cache;
    s->mask_idx = mask_idx;
    s->mask_pool = mask_pool;
    s->cap = cap;
    s->free_cpu = free_cpu;
    s->free_mem = free_mem;
    s->cpu_base = cpu_base;
    s->mem_base = mem_base;
    s->mem_assigned = mem_assigned;
    s->page_base = page_base;
    s->cpu_band = cpu_band;
    s->mem_band = mem_band;
    s->n_running = n_running;
    s->avail = avail;

    s->state = (int8_t *)malloc((size_t)n_tasks * sizeof(int8_t));
    s->machine = (int32_t *)malloc((size_t)n_tasks * sizeof(int32_t));
    s->incar = (int32_t *)calloc((size_t)n_tasks ? n_tasks : 1, sizeof(int32_t));
    s->resub = (int32_t *)calloc((size_t)n_tasks ? n_tasks : 1, sizeof(int32_t));
    s->fate = (int8_t *)malloc((size_t)n_tasks * sizeof(int8_t));
    s->start_time = (double *)malloc((size_t)n_tasks * sizeof(double));
    s->nxt = (int32_t *)malloc((size_t)n_tasks * sizeof(int32_t));
    s->prv = (int32_t *)malloc((size_t)n_tasks * sizeof(int32_t));
    for (int32_t i = 0; i < n_tasks; i++) {
        s->state[i] = ST_PENDING;
        s->machine[i] = -1;
        s->fate[i] = fate0[i];
        s->start_time[i] = -1.0;
    }
    s->head = (int32_t *)malloc((size_t)n_m * sizeof(int32_t));
    s->tail = (int32_t *)malloc((size_t)n_m * sizeof(int32_t));
    for (int32_t m = 0; m < n_m; m++)
        s->head[m] = s->tail[m] = -1;

    for (int i = 0; i < 8; i++) {
        s->run_lo[i] = 0.0;
        s->run_span[i] = -1.0; /* sentinel: no rule for this fate */
    }

    s->log_cap = 4 * (int64_t)(n_tasks > 16 ? n_tasks : 16);
    s->log_time = (double *)malloc((size_t)s->log_cap * sizeof(double));
    s->log_row = (int64_t *)malloc((size_t)s->log_cap * sizeof(int64_t));
    s->log_etype = (int8_t *)malloc((size_t)s->log_cap * sizeof(int8_t));
    s->log_machine = (int64_t *)malloc((size_t)s->log_cap * sizeof(int64_t));

    s->heap_cap = 1024;
    s->heap = (Ev *)malloc((size_t)s->heap_cap * sizeof(Ev));
    s->pend_cap = 256;
    s->pend = (Pend *)malloc((size_t)s->pend_cap * sizeof(Pend));

    s->ord = (int32_t *)malloc((size_t)n_m * sizeof(int32_t));
    s->ord_tmp = (int32_t *)malloc((size_t)n_m * sizeof(int32_t));
    s->ordkey = (double *)malloc((size_t)n_m * sizeof(double));
    s->lower = (int32_t *)malloc((size_t)(n_tasks ? n_tasks : 1) * sizeof(int32_t));
    return s;
}

void sim_set_run_rule(SimState *s, int32_t code, double lo, double hi)
{
    s->run_lo[code] = lo;
    s->run_span[code] = hi - lo;
}

void sim_set_refate(SimState *s, int32_t n, double *cdf, int8_t *codes)
{
    s->n_refate = n;
    for (int i = 0; i < n; i++) {
        s->refate_cdf[i] = cdf[i];
        s->refate_codes[i] = codes[i];
    }
}

void sim_push_tick(SimState *s, double time)
{
    heap_push(s, time, K_TICK, -1, 0);
}

void sim_push_churn(SimState *s, double time, int32_t up, int32_t machine)
{
    heap_push(s, time, up ? K_UP : K_DOWN, machine, 0);
}

void sim_free(SimState *s)
{
    if (!s)
        return;
    free(s->state);
    free(s->machine);
    free(s->incar);
    free(s->resub);
    free(s->fate);
    free(s->start_time);
    free(s->nxt);
    free(s->prv);
    free(s->head);
    free(s->tail);
    free(s->log_time);
    free(s->log_row);
    free(s->log_etype);
    free(s->log_machine);
    free(s->heap);
    free(s->pend);
    free(s->ord);
    free(s->ord_tmp);
    free(s->ordkey);
    free(s->lower);
    free(s);
}

int64_t sim_still_running(SimState *s)
{
    int64_t total = 0;
    for (int32_t m = 0; m < s->n_m; m++)
        total += s->n_running[m];
    return total;
}

/* ---- main loop --------------------------------------------------------- */

int sim_run(SimState *s)
{
    pcg64_t rng;
    rng.state = ((u128)s->pcg_s_hi << 64) | s->pcg_s_lo;
    rng.inc = ((u128)s->pcg_i_hi << 64) | s->pcg_i_lo;
    int result = EXIT_DONE;

    while (1) {
        double qt = s->heap_n ? s->heap[0].time : INFINITY;
        double at = s->next_arrival < s->n_tasks
                        ? s->submit_time[s->next_arrival]
                        : INFINITY;
        if (qt == INFINITY && at == INFINITY)
            break;
        if (at < qt) { /* ties go to the queue, like the Python engines */
            int32_t row = s->next_arrival++;
            if (at > s->horizon)
                break;
            log_append(s, at, row, EV_SUBMIT, -1);
            s->c_submitted++;
            if (!try_place(s, &rng, row, at))
                pend_push(s, row);
        } else {
            Ev ev = heap_pop(s);
            double time = ev.time;
            if (time > s->horizon)
                break;
            if (ev.kind == K_COMPLETE) {
                int32_t row = ev.row;
                if (s->incar[row] != ev.inc || s->state[row] != ST_RUNNING)
                    continue; /* stale completion (task was evicted) */
                int32_t m = s->machine[row];
                fleet_stop(s, m, row);
                int f = s->fate[row];
                log_append(s, time, row, (int8_t)f, m);
                switch (f) {
                case EV_FINISH:
                    s->c_finish++;
                    break;
                case EV_FAIL:
                    s->c_fail++;
                    break;
                case EV_KILL:
                    s->c_kill++;
                    break;
                case EV_EVICT:
                    s->c_evict++;
                    break;
                default:
                    s->c_lost++;
                    break;
                }
                s->n_finished++;
                if (f != EV_FINISH)
                    s->n_abnormal++;
                s->machine[row] = -1;
                s->incar[row]++;
                if (resubmit_decision(s, &rng, row, f)) {
                    s->resub[row]++;
                    s->fate[row] = refate_draw(s, &rng);
                    s->state[row] = ST_PENDING;
                    log_append(s, time, row, EV_SUBMIT, -1);
                    s->c_submitted++;
                    if (!try_place(s, &rng, row, time))
                        pend_push(s, row);
                } else {
                    s->state[row] = ST_DEAD;
                }
                drain_pending(s, &rng, time);
            } else if (ev.kind == K_TICK) {
                s->exit_time = time;
                result = EXIT_TICK;
                break;
            } else if (ev.kind == K_DOWN) {
                int32_t m = ev.row;
                s->avail[m] = 0;
                int32_t r = s->head[m];
                while (r >= 0) {
                    int32_t next = s->nxt[r];
                    task_evict(s, &rng, r, time);
                    r = next;
                }
            } else { /* K_UP */
                s->avail[ev.row] = 1;
                drain_pending(s, &rng, time);
            }
        }
        if (s->error) {
            result = EXIT_ERROR;
            break;
        }
    }

    s->pcg_s_hi = (uint64_t)(rng.state >> 64);
    s->pcg_s_lo = (uint64_t)rng.state;
    return result;
}
