"""Task placement constraints over machine attributes.

Section IV.B of the paper notes (citing Sharma et al.) that Cloud
tasks' placement constraints — machine-attribute requirements tuned by
users — significantly impact resource utilization. This module models
them: machines carry a small numeric attribute vector (architecture,
kernel version, disk type, ...), tasks carry comparison constraints
over those attributes, and the scheduler only places a task on
machines satisfying all of its constraints.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "Constraint",
    "ConstraintModel",
    "generate_attribute_matrix",
    "OPS",
]

#: Supported comparison operators.
OPS = ("eq", "ne", "ge", "le")


@dataclass(frozen=True)
class Constraint:
    """One machine-attribute requirement: ``attr <op> value``."""

    attribute: int
    op: str
    value: float

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise ValueError(f"op must be one of {OPS}, got {self.op!r}")
        if self.attribute < 0:
            raise ValueError("attribute index must be non-negative")

    def satisfied_by(self, attributes: np.ndarray) -> np.ndarray:
        """Boolean mask over machines (rows of the attribute matrix)."""
        column = attributes[:, self.attribute]
        if self.op == "eq":
            return column == self.value
        if self.op == "ne":
            return column != self.value
        if self.op == "ge":
            return column >= self.value
        return column <= self.value


def generate_attribute_matrix(
    num_machines: int,
    rng: np.random.Generator,
    num_attributes: int = 4,
    values_per_attribute: int = 3,
) -> np.ndarray:
    """Random categorical machine attributes (codes ``0..values-1``)."""
    if num_machines < 1 or num_attributes < 1 or values_per_attribute < 2:
        raise ValueError("need >=1 machine, >=1 attribute, >=2 values")
    return rng.integers(
        0, values_per_attribute, size=(num_machines, num_attributes)
    ).astype(np.float64)


class ConstraintModel:
    """Machine attributes + a per-task constraint sampler.

    Parameters
    ----------
    attributes:
        ``(num_machines, num_attributes)`` matrix of attribute values.
    constraint_prob:
        Probability that a task carries at least one constraint; the
        trace analysis of Sharma et al. found a minority of tasks
        constrained, so the default is modest.
    max_constraints:
        Upper bound on constraints per constrained task.
    """

    def __init__(
        self,
        attributes: np.ndarray,
        constraint_prob: float = 0.2,
        max_constraints: int = 2,
    ) -> None:
        attributes = np.asarray(attributes, dtype=np.float64)
        if attributes.ndim != 2 or attributes.shape[0] < 1:
            raise ValueError("attributes must be a (machines, attrs) matrix")
        if not 0 <= constraint_prob <= 1:
            raise ValueError("constraint_prob must be a probability")
        if max_constraints < 1:
            raise ValueError("max_constraints must be >= 1")
        self.attributes = attributes
        self.constraint_prob = constraint_prob
        self.max_constraints = max_constraints

    @property
    def num_machines(self) -> int:
        return self.attributes.shape[0]

    @property
    def num_attributes(self) -> int:
        return self.attributes.shape[1]

    def sample_constraints(
        self, rng: np.random.Generator
    ) -> tuple[Constraint, ...]:
        """Draw one task's constraints (possibly empty).

        Values are drawn from the attribute's actually-present values,
        so equality constraints are always satisfiable by someone.
        """
        if rng.uniform() >= self.constraint_prob:
            return ()
        count = int(rng.integers(1, self.max_constraints + 1))
        constraints = []
        for _ in range(count):
            attr = int(rng.integers(0, self.num_attributes))
            value = float(rng.choice(self.attributes[:, attr]))
            op = str(rng.choice(["eq", "ne", "ge", "le"]))
            constraints.append(Constraint(attr, op, value))
        return tuple(constraints)

    def satisfying_mask(
        self, constraints: tuple[Constraint, ...]
    ) -> np.ndarray:
        """Machines satisfying *all* constraints (all-True when none)."""
        mask = np.ones(self.num_machines, dtype=bool)
        for constraint in constraints:
            if constraint.attribute >= self.num_attributes:
                raise ValueError(
                    f"constraint references attribute {constraint.attribute} "
                    f"but only {self.num_attributes} exist"
                )
            mask &= constraint.satisfied_by(self.attributes)
        return mask
