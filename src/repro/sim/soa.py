"""Structure-of-arrays fast engine for :class:`ClusterSimulator`.

Same model, same decisions, same bits — only faster. The scalar engine
in :mod:`repro.sim.cluster` stays as the golden reference; this module
re-implements its event loop with every per-event cost stripped:

* **SoA task state.** Immutable per-task columns live in one
  :class:`~repro.sim.task.TaskColumns` block; the mutable state
  (``state``, ``machine``, ``incarnation``, ``resubmits``, ``fate``,
  ``start_time``) lives in flat Python lists indexed by task row.
  ``record()`` appends ``(time, row, etype, machine)`` into
  preallocated NumPy buffers (:class:`_EventLog`) and the final event
  table is assembled by fancy-indexing the columns once, instead of
  eight Python lists fed one attribute read at a time.
* **Calendar queue.** The binary heap is replaced by
  :class:`~repro.sim.engine.CalendarQueue` keyed on the monitor tick
  grid — O(1) pushes, one sort per bucket, identical ``(time, seq)``
  pop order.
* **Batch admission.** Placement resolves against maintained fleet
  columns: for the ``balance`` policy a per-machine relative-free-CPU
  ``score`` array is updated on every start/stop and the hot path is a
  single masked-argmax probe (falling back to the literal
  :func:`~repro.sim.scheduler.choose_machine_columns` twin whenever the
  probe machine is ineligible), so a same-timestamp run of arrivals and
  the ``drain_pending`` sweep cost one argmax per admitted task instead
  of one full candidate scan. FCFS-per-priority head-of-line order is
  untouched: tasks are still admitted one at a time in exactly the
  scalar engine's order; only the per-decision cost changes.

Why the results are byte-identical:

* Fleet accounting runs on Python floats. CPython floats and NumPy
  float64 are the same IEEE-754 doubles, and the update expressions
  (including the residue clamps in :meth:`FleetState.stop`) are
  transcribed literally, so every intermediate value matches bit for
  bit. The NumPy ``FleetState`` arrays are re-synced from the lists
  right before each monitor tick, so the monitor draws noise from
  exactly the values the scalar engine would hand it.
* The argmax probe is exact, not approximate: if the globally
  first-argmax machine is eligible (fits, available, allowed), it *is*
  the masked argmax — every eligible machine's score is bounded by the
  global maximum, and NumPy's argmax returns the first index attaining
  it, so no eligible machine with an equal score can precede the probe
  result. Down machines hold score ``-inf`` and can never win the
  probe. Any other case falls back to the literal masked computation.
* RNG draws are positionally exact. Every failure-model draw consumes
  exactly one double (``uniform(lo, hi) == lo + (hi-lo)*random()``,
  ``uniform() == random()``, and ``choice(n, p) ==
  searchsorted(cdf, random(), 'right')`` with ``cdf = p.cumsum();
  cdf /= cdf[-1]`` — all bitwise identities of
  ``numpy.random.Generator``), so :class:`_DoubleStream` can serve
  them from a block draw and re-align the underlying PCG64 stream with
  ``state``-restore + ``advance(consumed)`` before any other consumer
  (the monitor's ``standard_normal``/``uniform`` vectors) touches the
  generator. Non-PCG64 bit generators and the ``random`` placement
  policy (whose ``choice`` consumes raw uint64s) disable buffering and
  fall back to direct scalar draws — still identical, just slower.

The golden-equivalence suite (tests/test_sim_soa.py) pins all of this:
seeds x placement policies x preemption x churn x constraints, all
four ``SimResult`` tables compared for equality, counts and final RNG
state included.
"""

from __future__ import annotations

from bisect import bisect_right
from heapq import heappush, heappop

import numpy as np

from ..core.table import Table
from ..traces.schema import TASK_EVENT_SCHEMA, TaskEvent, TaskState
from .churn import sample_outages
from .engine import COMPLETE, MACHINE_DOWN, MACHINE_UP, TICK, CalendarQueue
from .failures import FailureModel
from .machine import FleetState
from .monitor import UsageMonitor
from .scheduler import choose_machine_columns
from .task import TaskColumns

__all__ = ["run_soa"]

_PENDING = int(TaskState.PENDING)
_RUNNING = int(TaskState.RUNNING)
_DEAD = int(TaskState.DEAD)

_SUBMIT = int(TaskEvent.SUBMIT)
_SCHEDULE = int(TaskEvent.SCHEDULE)
_EVICT = int(TaskEvent.EVICT)
_FAIL = int(TaskEvent.FAIL)
_FINISH = int(TaskEvent.FINISH)

#: Bit generators whose ``state``/``advance`` contract lets
#: :class:`_DoubleStream` buffer block draws (one uint64 per double).
_BUFFERABLE_BITGENS = ("PCG64", "PCG64DXSM")

_NEG_INF = float("-inf")


class _DoubleStream:
    """Scalar uniform doubles, bit-identical to sequential ``random()``.

    Buffered mode (PCG64/PCG64DXSM only): blocks of
    ``rng.random(_BLOCK)`` are drawn at once — NumPy's vectorized fill
    produces the same doubles, in order, as scalar calls — and consumed
    from a Python list at ~20ns per draw. :meth:`sync` re-aligns the
    real generator to "exactly ``consumed`` scalar draws happened" by
    restoring the block's anchor state and ``advance``-ing one step per
    consumed double, so interleaved consumers (the monitor) observe a
    bit-exact stream position. Unbuffered mode simply forwards to
    ``rng.random()``.
    """

    __slots__ = ("_rng", "_bitgen", "_buffered", "_buf", "_pos", "_anchor")

    _BLOCK = 512

    def __init__(self, rng: np.random.Generator, buffered: bool) -> None:
        self._rng = rng
        self._bitgen = rng.bit_generator
        self._buffered = buffered
        self._buf: list[float] = []
        self._pos = 0
        self._anchor = None

    def next(self) -> float:
        if self._pos < len(self._buf):
            value = self._buf[self._pos]
            self._pos += 1
            return value
        if not self._buffered:
            return float(self._rng.random())
        self._anchor = self._bitgen.state
        self._buf = self._rng.random(self._BLOCK).tolist()
        self._pos = 1
        return self._buf[0]

    def sync(self) -> None:
        """Restore the true generator position; drop unread buffer."""
        anchor = self._anchor
        if anchor is None:
            return
        if self._pos != len(self._buf):
            # Partially consumed block: rewind to the anchor and step
            # forward one uint64 per consumed double.
            self._bitgen.state = anchor
            self._bitgen.advance(self._pos)
            if anchor["has_uint32"] or anchor["uinteger"]:
                # advance() zeroes PCG64's cached half-uint64; double
                # draws never touch it, so the scalar engine leaves the
                # (possibly stale) cache in place — restore it for a
                # byte-identical final state.
                state = self._bitgen.state
                state["has_uint32"] = anchor["has_uint32"]
                state["uinteger"] = anchor["uinteger"]
                self._bitgen.state = state
        self._anchor = None
        self._buf = []
        self._pos = 0


class _EventLog:
    """Preallocated columnar event log with a small staging window.

    Appends land in Python staging lists (cheapest possible per-event
    op) and are flushed in 1024-row slices into preallocated NumPy
    buffers grown geometrically — so the log costs one vectorized
    assignment per thousand events instead of eight list appends per
    event, and :meth:`columns` returns ready-made arrays.
    """

    __slots__ = ("_time", "_row", "_etype", "_machine", "_n",
                 "_st", "_sr", "_se", "_sm")

    _STAGE = 1024

    def __init__(self, capacity: int) -> None:
        capacity = max(int(capacity), self._STAGE)
        self._time = np.empty(capacity, dtype=np.float64)
        self._row = np.empty(capacity, dtype=np.int64)
        self._etype = np.empty(capacity, dtype=np.int8)
        self._machine = np.empty(capacity, dtype=np.int64)
        self._n = 0
        self._st: list[float] = []
        self._sr: list[int] = []
        self._se: list[int] = []
        self._sm: list[int] = []

    def append(self, time: float, row: int, etype: int, machine: int) -> None:
        self._st.append(time)
        self._sr.append(row)
        self._se.append(etype)
        self._sm.append(machine)
        if len(self._st) >= self._STAGE:
            self._flush()

    def _flush(self) -> None:
        k = len(self._st)
        if not k:
            return
        end = self._n + k
        if end > len(self._time):
            capacity = len(self._time)
            while capacity < end:
                capacity *= 2
            for name in ("_time", "_row", "_etype", "_machine"):
                old = getattr(self, name)
                grown = np.empty(capacity, dtype=old.dtype)
                grown[: self._n] = old[: self._n]
                setattr(self, name, grown)
        self._time[self._n : end] = self._st
        self._row[self._n : end] = self._sr
        self._etype[self._n : end] = self._se
        self._machine[self._n : end] = self._sm
        self._n = end
        self._st.clear()
        self._sr.clear()
        self._se.clear()
        self._sm.clear()

    def columns(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        self._flush()
        n = self._n
        return (
            self._time[:n].copy(),
            self._row[:n].copy(),
            self._etype[:n].copy(),
            self._machine[:n].copy(),
        )


def run_soa(sim, requests, horizon: float, *, allow_kernel: bool = True):
    """Run the SoA engine; same contract as ``ClusterSimulator.run``.

    ``sim`` is the :class:`~repro.sim.cluster.ClusterSimulator`
    delegating to us (its ``run`` validated ``horizon`` and resolved
    the engine choice already, but validation is repeated so direct
    callers get the same errors). When ``allow_kernel`` is true and the
    compiled hot loop (:mod:`repro.sim._ckernel`) is available and
    covers the configuration, it runs instead of the Python loop —
    same decisions, same bits, another order of magnitude faster.
    """
    from .cluster import SimResult  # circular at import time

    if horizon <= 0:
        raise ValueError("horizon must be positive")
    config = sim.config
    failures = config.failures
    if type(failures) is not FailureModel:
        raise TypeError(
            "run_soa inlines FailureModel's draws and cannot honor a "
            f"subclass override ({type(failures).__name__}); use the "
            "scalar engine"
        )
    if allow_kernel:
        from . import _ckernel

        result = _ckernel.try_run(sim, requests, horizon)
        if result is not None:
            return result
    rng = sim.rng
    policy = config.placement
    fleet = FleetState(sim.machines)
    monitor = UsageMonitor(fleet, config.monitor, rng)
    n_m = fleet.num_machines

    cols = TaskColumns.from_requests(requests)
    n_tasks = len(cols)

    # -- immutable per-task columns as Python lists (20ns row reads) --------
    arr_times = cols.submit_time.tolist()
    job = cols.job_id.tolist()
    tidx = cols.task_index.tolist()
    prio = cols.priority.tolist()
    band = cols.band.tolist()
    cpu_req = cols.cpu_request.tolist()
    mem_req = cols.mem_request.tolist()
    duration = cols.duration.tolist()
    cpu_eff = cols.cpu_eff.tolist()
    mem_eff = cols.mem_eff.tolist()
    page_cache = cols.page_cache.tolist()

    # -- mutable per-task state (the SimTask fields, columnar) --------------
    state = [_PENDING] * n_tasks
    machine = [-1] * n_tasks
    incarnation = [0] * n_tasks
    resubmit_ct = [0] * n_tasks
    fate = cols.fate.tolist()
    start_time = [-1.0] * n_tasks
    allowed: list = [None] * n_tasks

    # The scalar engine samples constraints per task in row order before
    # the loop; replicate that exact draw sequence.
    if config.constraints is not None:
        model = config.constraints
        if model.num_machines != n_m:
            raise ValueError("constraint model machine count does not match fleet")
        for i in range(n_tasks):
            constraints = model.sample_constraints(rng)
            if constraints:
                allowed[i] = model.satisfying_mask(constraints)

    # -- fleet accounting as Python lists -----------------------------------
    cap = fleet.cpu_capacity.tolist()
    free_cpu = fleet.free_cpu.tolist()
    free_mem = fleet.free_mem.tolist()
    cpu_base = [0.0] * n_m
    mem_base = [0.0] * n_m
    mem_assigned = [0.0] * n_m
    page_base = [0.0] * n_m
    cpu_band = [[0.0] * n_m for _ in range(3)]
    mem_band = [[0.0] * n_m for _ in range(3)]
    n_running = [0] * n_m
    available = [True] * n_m
    running: list[dict[tuple[int, int], int]] = [dict() for _ in range(n_m)]
    # Maintained relative-free-CPU score for the balance argmax probe;
    # down machines hold -inf so they can never win.
    score = fleet.free_cpu / fleet.cpu_capacity
    balance = policy == "balance"
    # NumPy mirrors of the hot fleet lists, updated in place on every
    # start/stop (they hold the exact same doubles), so vectorized
    # placement never needs a list->array sync.
    free_cpu_np = fleet.free_cpu.copy()
    free_mem_np = fleet.free_mem.copy()
    avail_np = np.ones(n_m, dtype=bool)
    # Preallocated scratch for the masked-argmax placement kernels.
    _t1 = np.empty(n_m)
    _t2 = np.empty(n_m)
    _fits = np.empty(n_m, dtype=bool)
    _masked = np.empty(n_m)
    _neg_inf_arr = np.full(n_m, _NEG_INF)
    _pos_inf_arr = np.full(n_m, np.inf)

    # -- failure model, inlined (one double per draw) -----------------------
    fractions = {
        int(TaskEvent.FAIL): failures.fail_fraction,
        int(TaskEvent.KILL): failures.kill_fraction,
        int(TaskEvent.LOST): failures.lost_fraction,
        int(TaskEvent.EVICT): failures.evict_fraction,
    }
    run_frac = {
        code: (lo, hi - lo) for code, (lo, hi) in fractions.items()
    }
    resubmit_prob = failures.resubmit_prob
    max_resubmits = failures.max_resubmits
    refate_codes = [
        int(TaskEvent[name.upper()]) for name, _ in failures.refate_probs
    ]
    # Replicates Generator.choice's internal CDF: cumsum then normalize
    # by the last entry; searchsorted(side="right") == bisect_right.
    _cdf = np.asarray(
        [p for _, p in failures.refate_probs], dtype=np.float64
    ).cumsum()
    _cdf /= _cdf[-1]
    refate_cdf = _cdf.tolist()
    fate_key = {
        int(event): event.name.lower()
        for event in (
            TaskEvent.FINISH,
            TaskEvent.FAIL,
            TaskEvent.KILL,
            TaskEvent.EVICT,
            TaskEvent.LOST,
        )
    }

    buffered = (
        type(rng.bit_generator).__name__ in _BUFFERABLE_BITGENS
        and policy != "random"
    )
    stream = _DoubleStream(rng, buffered)
    draw = stream.next

    log = _EventLog(4 * n_tasks)
    log_append = log.append

    counts = {
        "finish": 0,
        "fail": 0,
        "kill": 0,
        "evict": 0,
        "lost": 0,
        "submitted": 0,
        "scheduled": 0,
    }

    period = config.monitor.sample_period
    queue = CalendarQueue(period, horizon)
    queue_push = queue.push
    pending: list[tuple[int, int, int]] = []  # (-priority, seq, row)
    pending_seq = 0

    def _sync_fleet() -> None:
        np.copyto(fleet.free_cpu, free_cpu_np)
        np.copyto(fleet.free_mem, free_mem_np)
        np.copyto(fleet.available, avail_np)
        fleet.cpu_base[:] = cpu_base
        fleet.mem_base[:] = mem_base
        fleet.mem_assigned[:] = mem_assigned
        fleet.page_base[:] = page_base
        fleet.n_running[:] = n_running
        for b in range(3):
            fleet.cpu_band[:, b] = cpu_band[b]
            fleet.mem_band[:, b] = mem_band[b]

    cap_np = fleet.cpu_capacity
    best_fit = policy == "best_fit"
    first_fit = policy == "first_fit"
    score_argmax = score.argmax

    def _place(row: int) -> int:
        cpu_r = cpu_req[row]
        mem_r = mem_req[row]
        mask = allowed[row]
        if balance:
            # Probe: if the global first-argmax machine is eligible it
            # equals the masked argmax (see module docstring).
            m = int(score_argmax())
            if (
                free_cpu[m] >= cpu_r
                and free_mem[m] >= mem_r
                and available[m]
                and (mask is None or mask[m])
            ):
                return m
        elif policy == "random":
            # Generator.choice must see the literal candidate index
            # array, so keep the full twin for this policy.
            return choose_machine_columns(
                free_cpu_np, free_mem_np, avail_np, cap_np,
                cpu_r, mem_r, mask, policy, rng,
            )
        # Exact masked argmax/argmin over the maintained mirrors, into
        # preallocated scratch. min(fc-c, fm-m) >= 0 is IEEE-exact for
        # (fc >= c) & (fm >= m): a floating-point difference is never
        # rounded across zero (Sterbenz), so the candidate mask matches
        # choose_machine's bit for bit.
        np.subtract(free_cpu_np, cpu_r, out=_t1)
        np.subtract(free_mem_np, mem_r, out=_t2)
        np.minimum(_t1, _t2, out=_t1)
        np.greater_equal(_t1, 0.0, out=_fits)
        if mask is not None:
            np.logical_and(_fits, mask, out=_fits)
        if balance:
            # Down machines may pass the fits test (their tasks were
            # evicted, freeing capacity) but carry score -inf, so the
            # where-fill excludes them exactly like the explicit
            # availability mask would.
            np.copyto(_masked, _neg_inf_arr)
            np.copyto(_masked, score, where=_fits)
            m = int(_masked.argmax())
            return m if _masked[m] != _NEG_INF else -1
        np.logical_and(_fits, avail_np, out=_fits)
        if best_fit:
            np.copyto(_masked, _pos_inf_arr)
            np.copyto(_masked, free_cpu_np, where=_fits)
            m = int(_masked.argmin())
            return m if _fits[m] else -1
        if first_fit:
            m = int(_fits.argmax())  # first True index
            return m if _fits[m] else -1
        raise ValueError(f"unknown placement policy {policy!r}")

    def _start(row: int, m: int, time: float) -> None:
        state[row] = _RUNNING
        machine[row] = m
        start_time[row] = time
        key = (job[row], tidx[row])
        reg = running[m]
        if key in reg:
            raise RuntimeError(f"task {key} already running on machine {m}")
        cr = cpu_req[row]
        mr = mem_req[row]
        ce = cpu_eff[row]
        me = mem_eff[row]
        fc = free_cpu[m] - cr
        free_cpu[m] = fc
        free_cpu_np[m] = fc
        fm = free_mem[m] - mr
        free_mem[m] = fm
        free_mem_np[m] = fm
        cpu_base[m] += ce
        mem_base[m] += me
        mem_assigned[m] += mr
        page_base[m] += page_cache[row]
        b = band[row]
        cpu_band[b][m] += ce
        mem_band[b][m] += me
        n_running[m] += 1
        reg[key] = row
        score[m] = fc / cap[m]
        log_append(time, row, _SCHEDULE, m)
        counts["scheduled"] += 1
        f = fate[row]
        if f == _FINISH:
            run_time = duration[row]
        else:
            try:
                lo, span = run_frac[f]
            except KeyError:
                raise ValueError(f"fate {f} has no run-time rule") from None
            run_time = duration[row] * (lo + span * draw())
        end = time + run_time
        if end <= horizon:
            queue_push(end, COMPLETE, (row, incarnation[row]))

    def _fleet_stop(m: int, row: int) -> None:
        key = (job[row], tidx[row])
        if running[m].pop(key, None) is None:
            raise RuntimeError(f"task {key} not running on machine {m}")
        # Clamp float-cancellation residue, exactly like FleetState.stop
        # (each field is independent, so clamping the temp is the same).
        fc = free_cpu[m] + cpu_req[row]
        if fc < 0 and fc > -1e-12:
            fc = 0.0
        free_cpu[m] = fc
        free_cpu_np[m] = fc
        fm = free_mem[m] + mem_req[row]
        if fm < 0 and fm > -1e-12:
            fm = 0.0
        free_mem[m] = fm
        free_mem_np[m] = fm
        v = cpu_base[m] - cpu_eff[row]
        cpu_base[m] = 0.0 if -1e-12 < v < 0 else v
        v = mem_base[m] - mem_eff[row]
        mem_base[m] = 0.0 if -1e-12 < v < 0 else v
        v = mem_assigned[m] - mem_req[row]
        mem_assigned[m] = 0.0 if -1e-12 < v < 0 else v
        v = page_base[m] - page_cache[row]
        page_base[m] = 0.0 if -1e-12 < v < 0 else v
        b = band[row]
        v = cpu_band[b][m] - cpu_eff[row]
        cpu_band[b][m] = 0.0 if -1e-12 < v < 0 else v
        v = mem_band[b][m] - mem_eff[row]
        mem_band[b][m] = 0.0 if -1e-12 < v < 0 else v
        n_running[m] -= 1
        score[m] = fc / cap[m] if available[m] else _NEG_INF

    def _resubmit_decision(row: int, f: int) -> bool:
        # FailureModel.resubmits with the same draw-consumption pattern:
        # at the retry cap nothing is drawn; only FAIL/EVICT draw.
        if resubmit_ct[row] >= max_resubmits:
            return False
        if f == _FAIL or f == _EVICT:
            return draw() < resubmit_prob
        return False

    def _evict(row: int, time: float) -> None:
        nonlocal pending_seq
        m = machine[row]
        _fleet_stop(m, row)
        log_append(time, row, _EVICT, m)
        counts["evict"] += 1
        incarnation[row] += 1
        machine[row] = -1
        if _resubmit_decision(row, _EVICT):
            resubmit_ct[row] += 1
            fate[row] = refate_codes[bisect_right(refate_cdf, draw())]
            state[row] = _PENDING
            log_append(time, row, _SUBMIT, -1)
            counts["submitted"] += 1
            heappush(pending, (-prio[row], pending_seq, row))
            pending_seq += 1
        else:
            state[row] = _DEAD

    def _find_preemption(row: int) -> tuple[int, list[int]]:
        # Mirrors ClusterSimulator._find_preemption +
        # FleetState.eviction_victims on the SoA state (the mirrors hold
        # the exact doubles the scalar engine's FleetState would).
        order = np.argsort(-(free_cpu_np / cap_np), kind="stable")
        mask = allowed[row]
        p = prio[row]
        cpu_r = cpu_req[row]
        mem_r = mem_req[row]
        for m in order:
            m = int(m)
            if not available[m]:
                continue
            if mask is not None and not mask[m]:
                continue
            need_cpu = cpu_r - free_cpu[m]
            need_mem = mem_r - free_mem[m]
            lower = [r for r in running[m].values() if prio[r] < p]
            lower.sort(key=lambda r: (prio[r], -start_time[r]))
            victims: list[int] = []
            feasible = True
            for victim in lower:
                if need_cpu <= 0 and need_mem <= 0:
                    break
                victims.append(victim)
                need_cpu -= cpu_req[victim]
                need_mem -= mem_req[victim]
            if need_cpu > 0 or need_mem > 0:
                feasible = False
            if feasible:
                return m, victims
        return -1, []

    preemption = config.preemption

    def _try_place(row: int, time: float) -> bool:
        m = _place(row)
        if m >= 0:
            _start(row, m, time)
            return True
        if preemption:
            target, victims = _find_preemption(row)
            if target >= 0:
                for victim in victims:
                    _evict(victim, time)
                _start(row, target, time)
                return True
        return False

    def _drain_pending(time: float) -> None:
        # FCFS per priority with head-of-line blocking.
        while pending:
            head = pending[0][2]
            m = _place(head)
            if m < 0:
                break
            heappop(pending)
            _start(head, m, time)

    # -- seed the queue: first tick, churn outages --------------------------
    queue_push(0.0, TICK, None)
    if config.churn is not None:
        for outage in sample_outages(config.churn, n_m, horizon, rng):
            queue_push(outage.start, MACHINE_DOWN, outage.machine)
            if outage.end < horizon:
                queue_push(outage.end, MACHINE_UP, outage.machine)

    n_finished = 0
    n_abnormal = 0
    next_arrival = 0
    peek_time = queue.peek_time
    pop_batch = queue.pop_batch

    while True:
        next_event = peek_time()
        arr_time = arr_times[next_arrival] if next_arrival < n_tasks else None
        if next_event is None and arr_time is None:
            break
        if arr_time is not None and (next_event is None or arr_time < next_event):
            row = next_arrival
            next_arrival += 1
            time = arr_time
            if time > horizon:
                break
            log_append(time, row, _SUBMIT, -1)
            counts["submitted"] += 1
            if not _try_place(row, time):
                heappush(pending, (-prio[row], pending_seq, row))
                pending_seq += 1
            continue

        batch = pop_batch()
        time = batch[0][0]
        if time > horizon:
            break
        for _t, kind, payload in batch:
            if kind == COMPLETE:
                row, inc = payload
                if incarnation[row] != inc or state[row] != _RUNNING:
                    continue  # stale completion (task was evicted)
                m = machine[row]
                _fleet_stop(m, row)
                f = fate[row]
                log_append(time, row, f, m)
                counts[fate_key[f]] += 1
                n_finished += 1
                if f != _FINISH:
                    n_abnormal += 1
                machine[row] = -1
                incarnation[row] += 1
                if _resubmit_decision(row, f):
                    resubmit_ct[row] += 1
                    fate[row] = refate_codes[bisect_right(refate_cdf, draw())]
                    state[row] = _PENDING
                    log_append(time, row, _SUBMIT, -1)
                    counts["submitted"] += 1
                    if not _try_place(row, time):
                        heappush(pending, (-prio[row], pending_seq, row))
                        pending_seq += 1
                else:
                    state[row] = _DEAD
                _drain_pending(time)
            elif kind == TICK:
                stream.sync()
                _sync_fleet()
                monitor.sample(time, len(pending), n_finished, n_abnormal)
                if time + period <= horizon:
                    queue_push(time + period, TICK, None)
            elif kind == MACHINE_DOWN:
                m = int(payload)
                available[m] = False
                avail_np[m] = False
                score[m] = _NEG_INF
                for victim in list(running[m].values()):
                    _evict(victim, time)
            else:  # MACHINE_UP
                m = int(payload)
                available[m] = True
                avail_np[m] = True
                score[m] = free_cpu[m] / cap[m]
                _drain_pending(time)

    # Leave the generator exactly where the scalar engine would.
    stream.sync()

    counts["still_running"] = sum(n_running)
    counts["still_pending"] = len(pending)

    ev_time, ev_row, ev_type, ev_machine = log.columns()
    task_events = Table(
        {
            "time": ev_time,
            "job_id": cols.job_id[ev_row],
            "task_index": cols.task_index[ev_row],
            "machine_id": ev_machine,
            "event_type": ev_type,
            "priority": cols.priority[ev_row],
            "cpu_request": cols.cpu_request[ev_row],
            "mem_request": cols.mem_request[ev_row],
        },
        schema=TASK_EVENT_SCHEMA,
    )
    return SimResult(
        task_events=task_events,
        machine_usage=monitor.machine_usage_table(),
        cluster_series=monitor.cluster_series_table(),
        machines=sim.machines,
        horizon=horizon,
        counts=counts,
    )
