"""Priority scheduler: 12 levels, FCFS within a level, preemption.

Implements the paper's Section II model: higher-priority tasks are
processed first and may preempt lower-priority ones; ties are broken
first-come-first-serve. Placement picks the "best" machine under a
pluggable policy — the default ``balance`` spreads load to minimize
peak demand, matching the paper's description of Google's scheduler;
``best_fit``, ``first_fit`` and ``random`` exist for the ablation
benchmarks.
"""

from __future__ import annotations

import heapq

import numpy as np

from .machine import FleetState
from .task import SimTask

__all__ = [
    "PendingQueue",
    "choose_machine",
    "choose_machine_columns",
    "PLACEMENT_POLICIES",
]

PLACEMENT_POLICIES = ("balance", "best_fit", "first_fit", "random")


class PendingQueue:
    """Pending tasks ordered by (priority desc, arrival asc)."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, SimTask]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, task: SimTask) -> None:
        heapq.heappush(self._heap, (-task.priority, self._seq, task))
        self._seq += 1

    def pop(self) -> SimTask:
        return heapq.heappop(self._heap)[2]

    def peek(self) -> SimTask:
        return self._heap[0][2]


def choose_machine(
    fleet: FleetState,
    task: SimTask,
    policy: str,
    rng: np.random.Generator,
) -> int:
    """Pick a machine for the task, or -1 when nothing fits.

    Tasks carrying placement constraints (``task.allowed_mask``) are
    only offered machines inside their mask.

    Policies
    --------
    balance:
        The paper's model — among fitting machines choose the one with
        the most free CPU relative to capacity, balancing demand across
        the fleet and minimizing peak load.
    best_fit:
        Tightest fit: least free CPU that still fits (bin-packing).
    first_fit:
        Lowest machine index that fits.
    random:
        Uniform among fitting machines.
    """
    mask = fleet.candidates(task)
    if task.allowed_mask is not None:
        mask &= task.allowed_mask
    if not mask.any():
        return -1
    idx = np.flatnonzero(mask)
    if policy == "balance":
        score = fleet.free_cpu[idx] / fleet.cpu_capacity[idx]
        return int(idx[np.argmax(score)])
    if policy == "best_fit":
        return int(idx[np.argmin(fleet.free_cpu[idx])])
    if policy == "first_fit":
        return int(idx[0])
    if policy == "random":
        return int(rng.choice(idx))
    raise ValueError(
        f"unknown placement policy {policy!r}; choose from {PLACEMENT_POLICIES}"
    )


def choose_machine_columns(
    free_cpu: np.ndarray,
    free_mem: np.ndarray,
    available: np.ndarray,
    cpu_capacity: np.ndarray,
    cpu_request: float,
    mem_request: float,
    allowed_mask: np.ndarray | None,
    policy: str,
    rng: np.random.Generator,
) -> int:
    """Column-level twin of :func:`choose_machine` for the SoA engine.

    Same decision, bit for bit, given the same fleet state: the
    candidate mask, the scores, and the tie-break (NumPy's first-index
    argmax/argmin) replicate :func:`choose_machine` exactly — this
    variant just reads raw arrays instead of a ``FleetState``/
    :class:`~repro.sim.task.SimTask` pair, so the batch-admission path
    can call it without materializing per-task objects.
    """
    mask = (free_cpu >= cpu_request) & (free_mem >= mem_request) & available
    if allowed_mask is not None:
        mask &= allowed_mask
    if not mask.any():
        return -1
    idx = np.flatnonzero(mask)
    if policy == "balance":
        score = free_cpu[idx] / cpu_capacity[idx]
        return int(idx[np.argmax(score)])
    if policy == "best_fit":
        return int(idx[np.argmin(free_cpu[idx])])
    if policy == "first_fit":
        return int(idx[0])
    if policy == "random":
        return int(rng.choice(idx))
    raise ValueError(
        f"unknown placement policy {policy!r}; choose from {PLACEMENT_POLICIES}"
    )
