"""Struct-of-arrays machine fleet state.

All per-machine quantities live in flat NumPy arrays indexed by machine
position, so placement decisions and the 5-minute monitor are fully
vectorized; task start/stop update the aggregates in O(1).

Units: capacities and usages are normalized to the *largest* machine in
the cluster, exactly like the released Google trace. Relative (per-
capacity) load is derived by the host-load analyses, not stored.
"""

from __future__ import annotations

import numpy as np

from ..core.table import Table
from .task import SimTask

__all__ = ["FleetState"]

_NUM_BANDS = 3


class FleetState:
    """Aggregate resource accounting for every machine in the cluster."""

    def __init__(self, machines: Table) -> None:
        n = machines.num_rows
        if n == 0:
            raise ValueError("fleet must contain at least one machine")
        self.machine_ids = np.asarray(machines["machine_id"], dtype=np.int64)
        self.cpu_capacity = np.asarray(machines["cpu_capacity"], dtype=np.float64)
        self.mem_capacity = np.asarray(machines["mem_capacity"], dtype=np.float64)
        self.page_capacity = np.asarray(
            machines["page_cache_capacity"], dtype=np.float64
        )
        self.free_cpu = self.cpu_capacity.copy()
        self.free_mem = self.mem_capacity.copy()
        # Actual-usage aggregates (sum over running tasks).
        self.cpu_base = np.zeros(n)
        self.mem_base = np.zeros(n)
        self.mem_assigned = np.zeros(n)
        self.page_base = np.zeros(n)
        # Per-priority-band splits for Figs. 10-12.
        self.cpu_band = np.zeros((n, _NUM_BANDS))
        self.mem_band = np.zeros((n, _NUM_BANDS))
        self.n_running = np.zeros(n, dtype=np.int64)
        # Machine availability (churn): down machines accept no tasks.
        self.available = np.ones(n, dtype=bool)
        # Running-task registries (needed to pick eviction victims).
        self.running: list[dict[tuple[int, int], SimTask]] = [dict() for _ in range(n)]

    @property
    def num_machines(self) -> int:
        return len(self.machine_ids)

    def fits(self, m: int, task: SimTask) -> bool:
        return (
            self.free_cpu[m] >= task.cpu_request
            and self.free_mem[m] >= task.mem_request
        )

    def candidates(self, task: SimTask) -> np.ndarray:
        """Boolean mask of machines that can host the task right now."""
        return (
            (self.free_cpu >= task.cpu_request)
            & (self.free_mem >= task.mem_request)
            & self.available
        )

    def start(self, m: int, task: SimTask) -> None:
        """Account a task starting on machine ``m``."""
        key = (task.job_id, task.task_index)
        if key in self.running[m]:
            raise RuntimeError(f"task {key} already running on machine {m}")
        self.free_cpu[m] -= task.cpu_request
        self.free_mem[m] -= task.mem_request
        self.cpu_base[m] += task.cpu_eff
        self.mem_base[m] += task.mem_eff
        self.mem_assigned[m] += task.mem_request
        self.page_base[m] += task.page_cache
        self.cpu_band[m, task.band] += task.cpu_eff
        self.mem_band[m, task.band] += task.mem_eff
        self.n_running[m] += 1
        self.running[m][key] = task

    def stop(self, m: int, task: SimTask) -> None:
        """Account a task leaving machine ``m`` (completion or eviction)."""
        key = (task.job_id, task.task_index)
        if self.running[m].pop(key, None) is None:
            raise RuntimeError(f"task {key} not running on machine {m}")
        self.free_cpu[m] += task.cpu_request
        self.free_mem[m] += task.mem_request
        self.cpu_base[m] -= task.cpu_eff
        self.mem_base[m] -= task.mem_eff
        self.mem_assigned[m] -= task.mem_request
        self.page_base[m] -= task.page_cache
        self.cpu_band[m, task.band] -= task.cpu_eff
        self.mem_band[m, task.band] -= task.mem_eff
        self.n_running[m] -= 1
        # Clamp tiny negative residue from float cancellation. Every
        # aggregate that is a sum over running tasks must be clamped, not
        # just the free columns: over millions of start/stop pairs the
        # usage aggregates accumulate the same cancellation residue, and
        # the monitor would sample (and record) the negative values.
        for arr in (
            self.free_cpu,
            self.free_mem,
            self.cpu_base,
            self.mem_base,
            self.mem_assigned,
            self.page_base,
        ):
            if -1e-12 < arr[m] < 0:
                arr[m] = 0.0
        band = task.band
        for arr in (self.cpu_band, self.mem_band):
            if -1e-12 < arr[m, band] < 0:
                arr[m, band] = 0.0

    def eviction_victims(
        self, m: int, task: SimTask
    ) -> list[SimTask] | None:
        """Lowest-priority running tasks whose eviction would fit ``task``.

        Returns None when even evicting every lower-priority task would
        not free enough resources.
        """
        need_cpu = task.cpu_request - self.free_cpu[m]
        need_mem = task.mem_request - self.free_mem[m]
        lower = [
            t for t in self.running[m].values() if t.priority < task.priority
        ]
        lower.sort(key=lambda t: (t.priority, -t.start_time))
        victims: list[SimTask] = []
        for victim in lower:
            if need_cpu <= 0 and need_mem <= 0:
                break
            victims.append(victim)
            need_cpu -= victim.cpu_request
            need_mem -= victim.mem_request
        if need_cpu > 0 or need_mem > 0:
            return None
        return victims
