"""Cluster simulator front-end.

Runs a :class:`~repro.synth.google_model.TaskRequests` stream through
the Section-II scheduling model (12 priorities, FCFS per priority,
preemptive, balance placement) over a heterogeneous fleet, producing

* a task-event log in the trace's TASK_EVENT_SCHEMA,
* machine-level 5-minute usage samples (the monitor),
* cluster-level queue-state series,
* completion-event counters.

These are exactly the inputs the host-load analyses (Figs. 7-13,
Tables II-III) consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..synth.google_model import TaskRequests
from ..traces.schema import TASK_EVENT_SCHEMA, TaskEvent, TaskState, priority_band_array
from ..core.table import Table
from .churn import ChurnModel, sample_outages
from .constraints import ConstraintModel
from .engine import COMPLETE, MACHINE_DOWN, MACHINE_UP, TICK, EventQueue
from .failures import FailureModel
from .machine import FleetState
from .monitor import MonitorConfig, UsageMonitor
from .scheduler import PLACEMENT_POLICIES, PendingQueue, choose_machine
from .task import SimTask

__all__ = ["SimConfig", "SimResult", "ClusterSimulator", "ENGINES"]

_COMPLETE, _TICK, _MACHINE_DOWN, _MACHINE_UP = (
    COMPLETE,
    TICK,
    MACHINE_DOWN,
    MACHINE_UP,
)

#: Engines accepted by :meth:`ClusterSimulator.run`. ``auto`` picks the
#: fast SoA engine whenever its inlined failure-model draws are valid —
#: i.e. ``config.failures`` is exactly :class:`FailureModel`, not a
#: subclass with overridden draw logic — and the scalar golden
#: reference otherwise. ``soa`` itself delegates to the compiled C hot
#: loop (:mod:`repro.sim._ckernel`) when a compiler is available and
#: the config is covered; ``soa-py`` forces the pure-Python SoA loop
#: (used by the golden-equivalence tests to pin all three paths).
ENGINES = ("auto", "soa", "soa-py", "scalar")


@dataclass(frozen=True)
class SimConfig:
    """Scheduler and measurement configuration."""

    placement: str = "balance"
    preemption: bool = True
    monitor: MonitorConfig = field(default_factory=MonitorConfig)
    failures: FailureModel = field(default_factory=FailureModel)
    #: Optional placement-constraint model (machine attributes + per-
    #: task constraint sampling). None = unconstrained scheduling.
    constraints: ConstraintModel | None = None
    #: Optional machine availability churn. None = machines never fail.
    churn: ChurnModel | None = None

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENT_POLICIES:
            raise ValueError(
                f"placement must be one of {PLACEMENT_POLICIES}, "
                f"got {self.placement!r}"
            )


@dataclass(frozen=True)
class SimResult:
    """Everything a simulation run produced."""

    task_events: Table
    machine_usage: Table
    cluster_series: Table
    machines: Table
    horizon: float
    counts: dict[str, int]

    def completion_mix(self) -> dict[str, float]:
        """Fractions of completion events per terminal type."""
        total = sum(
            self.counts[k] for k in ("finish", "fail", "kill", "evict", "lost")
        )
        if total == 0:
            return {
                k: 0.0
                for k in ("finish", "fail", "kill", "evict", "lost", "abnormal")
            }
        mix = {
            k: self.counts[k] / total
            for k in ("finish", "fail", "kill", "evict", "lost")
        }
        mix["abnormal"] = 1.0 - mix["finish"]
        return mix


class ClusterSimulator:
    """Event-driven simulation of the Google scheduling model."""

    def __init__(
        self,
        machines: Table,
        config: SimConfig | None = None,
        seed: int | np.random.Generator = 0,
    ) -> None:
        self.machines = machines
        self.config = config or SimConfig()
        self.rng = (
            seed
            if isinstance(seed, np.random.Generator)
            else np.random.default_rng(seed)
        )

    # -- public API ----------------------------------------------------------

    def run(
        self,
        requests: TaskRequests,
        horizon: float,
        *,
        batched_drain: bool = True,
        engine: str = "auto",
    ) -> SimResult:
        """Simulate ``[0, horizon]`` seconds of the request stream.

        ``engine`` selects the implementation: ``"scalar"`` is the
        original per-object golden reference below, ``"soa"`` the
        structure-of-arrays fast engine
        (:func:`~repro.sim.soa.run_soa`, which itself uses the compiled
        C hot loop when available), ``"soa-py"`` the SoA engine with
        the compiled kernel disabled, and ``"auto"`` (default) picks
        the SoA engine whenever the config is compatible (the failure
        model is exactly :class:`FailureModel`, whose draws the fast
        engine inlines). All engines produce byte-identical results —
        same tables, counts, and final RNG state — which the
        golden-equivalence suite enforces.

        ``batched_drain=True`` (the default) pops all events sharing a
        timestamp in one :meth:`~repro.sim.engine.EventQueue.pop_batch`
        call instead of one peek/pop round-trip per event. Scheduler
        decisions are byte-identical either way (the golden equivalence
        test runs both): events pushed while a batch is processed carry
        later ``(time, seq)`` keys, so processing order is unchanged.
        The flag only concerns the scalar engine; the SoA engine always
        drains in batches.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if engine not in ENGINES:
            raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")
        if engine == "auto":
            engine = (
                "soa" if type(self.config.failures) is FailureModel else "scalar"
            )
        if engine in ("soa", "soa-py"):
            from .soa import run_soa

            return run_soa(
                self, requests, horizon, allow_kernel=engine == "soa"
            )
        fleet = FleetState(self.machines)
        monitor = UsageMonitor(fleet, self.config.monitor, self.rng)
        pending = PendingQueue()
        queue = EventQueue()
        failures = self.config.failures

        # Event-log builders (flat Python lists; tables built at the end).
        log_time: list[float] = []
        log_job: list[int] = []
        log_task: list[int] = []
        log_machine: list[int] = []
        log_type: list[int] = []
        log_prio: list[int] = []
        log_cpu: list[float] = []
        log_mem: list[float] = []

        counts = {
            "finish": 0,
            "fail": 0,
            "kill": 0,
            "evict": 0,
            "lost": 0,
            "submitted": 0,
            "scheduled": 0,
        }

        def record(time: float, task: SimTask, etype: int, machine: int) -> None:
            log_time.append(time)
            log_job.append(task.job_id)
            log_task.append(task.task_index)
            log_machine.append(machine)
            log_type.append(etype)
            log_prio.append(task.priority)
            log_cpu.append(task.cpu_request)
            log_mem.append(task.mem_request)

        def start(task: SimTask, m: int, time: float) -> None:
            task.state = TaskState.RUNNING
            task.machine = m
            task.start_time = time
            fleet.start(m, task)
            record(time, task, int(TaskEvent.SCHEDULE), m)
            counts["scheduled"] += 1
            run_time = failures.run_time(task.fate, task.duration, self.rng)
            end = time + run_time
            if end <= horizon:
                queue.push(end, _COMPLETE, (task, task.incarnation))

        def evict(victim: SimTask, time: float) -> None:
            m = victim.machine
            fleet.stop(m, victim)
            record(time, victim, int(TaskEvent.EVICT), m)
            counts["evict"] += 1
            victim.incarnation += 1  # invalidates its COMPLETE event
            victim.machine = -1
            if failures.resubmits(int(TaskEvent.EVICT), victim.resubmits, self.rng):
                victim.resubmits += 1
                victim.fate = failures.redraw_fate(self.rng)
                victim.state = TaskState.PENDING
                record(time, victim, int(TaskEvent.SUBMIT), -1)
                counts["submitted"] += 1
                pending.push(victim)
            else:
                victim.state = TaskState.DEAD

        def try_place(task: SimTask, time: float, allow_preempt: bool) -> bool:
            m = choose_machine(fleet, task, self.config.placement, self.rng)
            if m >= 0:
                start(task, m, time)
                return True
            if allow_preempt and self.config.preemption:
                target, victims = self._find_preemption(fleet, task)
                if target >= 0:
                    for victim in victims:
                        evict(victim, time)
                    start(task, target, time)
                    return True
            return False

        def drain_pending(time: float) -> None:
            # FCFS per priority with head-of-line blocking: stop at the
            # first task that does not fit anywhere.
            while len(pending):
                head = pending.peek()
                m = choose_machine(fleet, head, self.config.placement, self.rng)
                if m < 0:
                    break
                pending.pop()
                start(head, m, time)

        # Seed the event queue: arrivals (pre-sorted), first tick.
        tasks = _build_tasks(requests)
        if self.config.constraints is not None:
            model = self.config.constraints
            if model.num_machines != fleet.num_machines:
                raise ValueError(
                    "constraint model machine count does not match fleet"
                )
            for task in tasks:
                task.constraints = model.sample_constraints(self.rng)
                if task.constraints:
                    task.allowed_mask = model.satisfying_mask(task.constraints)
        arrival_times = requests.submit_time
        next_arrival = 0
        n_tasks = len(tasks)
        period = self.config.monitor.sample_period
        queue.push(0.0, _TICK, None)
        if self.config.churn is not None:
            for outage in sample_outages(
                self.config.churn, fleet.num_machines, horizon, self.rng
            ):
                queue.push(outage.start, _MACHINE_DOWN, outage.machine)
                if outage.end < horizon:
                    queue.push(outage.end, _MACHINE_UP, outage.machine)

        n_finished = 0
        n_abnormal = 0

        while True:
            next_event = queue.peek_time()
            arr_time = (
                arrival_times[next_arrival] if next_arrival < n_tasks else None
            )
            if next_event is None and arr_time is None:
                break
            take_arrival = arr_time is not None and (
                next_event is None or arr_time < next_event
            )
            if take_arrival:
                task = tasks[next_arrival]
                next_arrival += 1
                time = float(arr_time)
                if time > horizon:
                    break
                record(time, task, int(TaskEvent.SUBMIT), -1)
                counts["submitted"] += 1
                if not try_place(task, time, allow_preempt=True):
                    pending.push(task)
                continue

            batch = queue.pop_batch() if batched_drain else [queue.pop()]
            time = batch[0][0]
            if time > horizon:
                break
            for _t, kind, payload in batch:
                if kind == _MACHINE_DOWN:
                    m = int(payload)
                    fleet.available[m] = False
                    # Evict everything running there (machine maintenance).
                    for victim in list(fleet.running[m].values()):
                        evict(victim, time)
                    continue
                if kind == _MACHINE_UP:
                    fleet.available[int(payload)] = True
                    drain_pending(time)
                    continue
                if kind == _TICK:
                    monitor.sample(time, len(pending), n_finished, n_abnormal)
                    if time + period <= horizon:
                        queue.push(time + period, _TICK, None)
                elif kind == _COMPLETE:
                    task, incarnation = payload
                    if (
                        task.incarnation != incarnation
                        or task.state != TaskState.RUNNING
                    ):
                        continue  # stale completion (task was evicted)
                    fleet.stop(task.machine, task)
                    record(time, task, task.fate, task.machine)
                    fate_name = TaskEvent(task.fate).name.lower()
                    counts[fate_name] += 1
                    n_finished += 1
                    if task.fate != int(TaskEvent.FINISH):
                        n_abnormal += 1
                    task.machine = -1
                    task.incarnation += 1
                    if failures.resubmits(task.fate, task.resubmits, self.rng):
                        task.resubmits += 1
                        task.fate = failures.redraw_fate(self.rng)
                        task.state = TaskState.PENDING
                        record(time, task, int(TaskEvent.SUBMIT), -1)
                        counts["submitted"] += 1
                        if not try_place(task, time, allow_preempt=True):
                            pending.push(task)
                    else:
                        task.state = TaskState.DEAD
                    # Either way resources were freed: admit pending work.
                    drain_pending(time)

        # Horizon-edge accounting: tasks still running (their completion
        # would land past the horizon, so no _COMPLETE event was queued)
        # or still pending at the end of the run appear in no terminal
        # counter — count them explicitly so
        # submitted == finish+fail+kill+evict+lost + still_running +
        # still_pending holds for every config.
        counts["still_running"] = int(fleet.n_running.sum())
        counts["still_pending"] = len(pending)

        task_events = Table(
            {
                "time": np.asarray(log_time),
                "job_id": np.asarray(log_job, dtype=np.int64),
                "task_index": np.asarray(log_task, dtype=np.int32),
                "machine_id": np.asarray(log_machine, dtype=np.int64),
                "event_type": np.asarray(log_type, dtype=np.int8),
                "priority": np.asarray(log_prio, dtype=np.int16),
                "cpu_request": np.asarray(log_cpu),
                "mem_request": np.asarray(log_mem),
            },
            schema=TASK_EVENT_SCHEMA,
        )
        return SimResult(
            task_events=task_events,
            machine_usage=monitor.machine_usage_table(),
            cluster_series=monitor.cluster_series_table(),
            machines=self.machines,
            horizon=horizon,
            counts=counts,
        )

    # -- helpers ---------------------------------------------------------------

    @staticmethod
    def _find_preemption(
        fleet: FleetState, task: SimTask
    ) -> tuple[int, list[SimTask]]:
        """Machine + victim set able to host ``task`` after evictions.

        Scans machines in descending free-CPU order so the cheapest
        eviction (fewest victims) is found early; returns (-1, []) when
        preemption cannot help. The stable sort makes the visit order —
        and therefore the victim set under relative-free-CPU ties —
        deterministic across NumPy versions (default quicksort leaves
        tied machines in partition-internal order).
        """
        order = np.argsort(-(fleet.free_cpu / fleet.cpu_capacity), kind="stable")
        for m in order:
            if not fleet.available[int(m)]:
                continue
            if task.allowed_mask is not None and not task.allowed_mask[int(m)]:
                continue
            victims = fleet.eviction_victims(int(m), task)
            if victims is not None:
                return int(m), victims
        return -1, []


def _build_tasks(requests: TaskRequests) -> list[SimTask]:
    """Materialize SimTask objects from the columnar request stream."""
    bands = priority_band_array(requests.priority)
    cpu_eff = requests.cpu_request * requests.cpu_utilization
    mem_eff = requests.mem_request * requests.mem_utilization
    return [
        SimTask(
            job_id=int(requests.job_id[i]),
            task_index=int(requests.task_index[i]),
            priority=int(requests.priority[i]),
            band=int(bands[i]),
            cpu_request=float(requests.cpu_request[i]),
            mem_request=float(requests.mem_request[i]),
            duration=float(requests.duration[i]),
            cpu_eff=float(cpu_eff[i]),
            mem_eff=float(mem_eff[i]),
            page_cache=float(requests.page_cache[i]),
            fate=int(requests.fate[i]),
            submit_time=float(requests.submit_time[i]),
        )
        for i in range(len(requests))
    ]
