"""Spill streamed task requests into an out-of-core sharded table.

Bridges the columnar generator (:func:`iter_task_requests`, bounded
memory per chunk) to :class:`repro.core.shard.ShardedTable` (bounded
memory per analysis pass): the stream is fed through a
:class:`~repro.core.shard.ShardWriter`, so a 10–100x-paper-scale trace
reaches disk without ever materializing more than one generator chunk.
Shard boundaries are fixed multiples of ``shard_rows`` — independent of
the generator's ``chunk_tasks`` — so the spilled table is a pure
function of ``(horizon, seed, config, tasks_per_hour, shard_rows,
columns)``.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from ..core.shard import ShardedTable, ShardWriter
from .google_model import GoogleConfig, TaskRequests, iter_task_requests

__all__ = ["TASK_REQUEST_COLUMNS", "shard_task_requests"]

#: Column order of a spilled task-request table (the dataclass fields).
TASK_REQUEST_COLUMNS: tuple[str, ...] = tuple(
    TaskRequests.__dataclass_fields__
)


def shard_task_requests(
    dest: str | Path,
    horizon: float,
    seed: int = 0,
    config: GoogleConfig | None = None,
    *,
    tasks_per_hour: float,
    shard_rows: int,
    columns: Sequence[str] | None = None,
    chunk_tasks: int = 1_000_000,
    resume: bool = False,
) -> ShardedTable:
    """Generate and spill a task-request stream as one sharded table.

    ``columns`` restricts the spill to the named request columns (e.g.
    only what a characterization pass reads), cutting disk footprint
    proportionally; the kept columns are bit-identical to a full spill.
    With ``resume``, a spill interrupted at the same ``dest`` continues
    from its journaled shard prefix instead of regenerating everything —
    safe because the stream is a pure function of its arguments, so the
    replayed rows match the rows already on disk.
    """
    names = TASK_REQUEST_COLUMNS if columns is None else tuple(columns)
    unknown = set(names) - set(TASK_REQUEST_COLUMNS)
    if unknown:
        raise ValueError(f"unknown task-request columns: {sorted(unknown)}")
    stream = iter_task_requests(
        horizon,
        seed,
        config,
        tasks_per_hour=tasks_per_hour,
        chunk_tasks=chunk_tasks,
    )
    first = next(stream)
    schema = {name: getattr(first, name).dtype for name in names}
    with ShardWriter(dest, schema, shard_rows, resume=resume) as writer:
        writer.append({name: getattr(first, name) for name in names})
        for chunk in stream:
            writer.append({name: getattr(chunk, name) for name in names})
    return ShardedTable.open(dest)
