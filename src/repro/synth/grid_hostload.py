"""Synthetic Grid host-load series (Fig. 13's AuverGrid/SHARCNET hosts).

Grid nodes run a handful of long batch jobs, so their load is a step
function: levels persist for hours, CPU sits high (compute-bound
science codes) and above memory, and measurement noise is tiny — the
paper measures AuverGrid CPU noise at mean 0.0011 versus Google's
0.028, a ~20x gap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["GridHostConfig", "generate_grid_host_series"]


@dataclass(frozen=True)
class GridHostConfig:
    """Step-level dynamics of one Grid host's load."""

    #: Mean sojourn in one load level, seconds (hours-long stability).
    mean_level_duration: float = 12 * 3600.0
    #: CPU level distribution: mostly busy.
    cpu_levels: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 0.95, 1.0)
    cpu_level_weights: tuple[float, ...] = (0.05, 0.05, 0.1, 0.2, 0.35, 0.25)
    #: Memory tracks CPU scaled down: compute-bound jobs use little RAM.
    mem_over_cpu: tuple[float, float] = (0.3, 0.7)
    #: Gaussian measurement noise on each sample (paper: ~0.001).
    noise_std: float = 0.0015
    sample_period: float = 300.0

    def __post_init__(self) -> None:
        if self.mean_level_duration <= 0:
            raise ValueError("mean_level_duration must be positive")
        if len(self.cpu_levels) != len(self.cpu_level_weights):
            raise ValueError("levels/weights length mismatch")
        if abs(sum(self.cpu_level_weights) - 1) > 1e-9:
            raise ValueError("level weights must sum to 1")
        if self.noise_std < 0 or self.sample_period <= 0:
            raise ValueError("invalid noise_std or sample_period")


def generate_grid_host_series(
    horizon: float,
    seed: int | np.random.Generator = 0,
    config: GridHostConfig | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Generate ``(times, cpu, mem)`` for one Grid host.

    Piecewise-constant levels with exponential sojourns, plus small
    sample noise; values clipped to [0, 1].
    """
    config = config or GridHostConfig()
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    times = np.arange(0.0, horizon, config.sample_period)

    # Draw enough level segments to cover the horizon. Transitions walk
    # to an adjacent level (one batch job starting or ending), so steps
    # are small and the mean-filter residual stays tiny, as measured on
    # the real Grid traces.
    levels = np.asarray(config.cpu_levels)
    cpu_segments: list[float] = []
    durations: list[float] = []
    total = 0.0
    idx = int(rng.choice(len(levels), p=config.cpu_level_weights))
    while total < horizon:
        cpu_segments.append(float(levels[idx]))
        d = float(rng.exponential(config.mean_level_duration))
        durations.append(d)
        total += d
        step = int(rng.choice([-1, 1]))
        idx = int(np.clip(idx + step, 0, len(levels) - 1))
    boundaries = np.cumsum(durations)
    seg_of_sample = np.searchsorted(boundaries, times, side="right")
    cpu_base = np.asarray(cpu_segments)[seg_of_sample]

    # Memory tracks CPU through a per-host ratio (the job mix on one
    # node is stable), keeping memory steps as small as CPU steps.
    lo, hi = config.mem_over_cpu
    mem_base = cpu_base * rng.uniform(lo, hi)

    cpu = np.clip(cpu_base + config.noise_std * rng.standard_normal(times.size), 0, 1)
    mem = np.clip(mem_base + config.noise_std * rng.standard_normal(times.size), 0, 1)
    return times, cpu, mem
