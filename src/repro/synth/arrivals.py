"""Arrival processes: steady Cloud streams and bursty diurnal Grid ones.

The fairness index of hourly submission counts (Table I) is a direct
function of the counts' coefficient of variation: ``f = 1/(1 + CV^2 +
1/mu)`` for doubly-stochastic Poisson counts. We therefore generate
arrivals hour by hour — each hour's rate drawn from a gamma mixing
distribution shaped by a diurnal profile — which lets a preset dial in
the exact (mean rate, fairness) pair the paper reports per system.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

import numpy as np

from ..core.fairness import HOUR

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DoublyStochasticArrivals",
    "cv_for_fairness",
    "diurnal_profile",
]


def cv_for_fairness(fairness: float, mean_per_hour: float) -> float:
    """Coefficient of variation of hourly counts that yields a fairness.

    Inverts ``f = 1/(1 + CV^2 + 1/mu)`` (the extra ``1/mu`` is the
    Poisson sampling noise on top of the rate variation). Returns the
    CV of the *rate* process.
    """
    if not 0 < fairness <= 1:
        raise ValueError("fairness must be in (0, 1]")
    if mean_per_hour <= 0:
        raise ValueError("mean_per_hour must be positive")
    cv2 = 1.0 / fairness - 1.0 - 1.0 / mean_per_hour
    return float(np.sqrt(max(cv2, 0.0)))


def diurnal_profile(hours: np.ndarray, amplitude: float, peak_hour: float = 14.0) -> np.ndarray:
    """Mean-1 sinusoidal day/night modulation of hourly rates.

    ``amplitude`` in [0, 1): relative swing around the mean; the peak
    lands at ``peak_hour`` o'clock.
    """
    if not 0 <= amplitude < 1:
        raise ValueError("amplitude must be in [0, 1)")
    hours = np.asarray(hours, dtype=np.float64)
    phase = 2 * np.pi * (hours - peak_hour) / 24.0
    return 1.0 + amplitude * np.cos(phase)


class ArrivalProcess:
    """Interface: generate arrival timestamps over ``[0, horizon)``."""

    def generate(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        raise NotImplementedError


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process with a constant hourly rate."""

    rate_per_hour: float

    def __post_init__(self) -> None:
        if self.rate_per_hour <= 0:
            raise ValueError("rate must be positive")

    def generate(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        expected = self.rate_per_hour * horizon / HOUR
        count = rng.poisson(expected)
        return np.sort(rng.uniform(0.0, horizon, count))


@dataclass(frozen=True)
class DoublyStochasticArrivals(ArrivalProcess):
    """Gamma-modulated Poisson arrivals with optional diurnal shape.

    Per hour ``i``: rate ``lambda_i = mu * D(i) * G_i`` with ``D`` the
    mean-1 diurnal profile and ``G_i`` i.i.d. gamma with mean 1 and the
    CV needed so the *total* hourly-count CV matches ``target_cv``.
    Arrival times are uniform within each hour given its count.

    An optional ``busy_factor`` multiplies the rate inside
    ``busy_window`` (in seconds) — the paper's Fig. 10 shows such a
    busy stretch on days 21-25 of the Google trace.
    """

    mean_per_hour: float
    target_cv: float = 0.0
    diurnal_amplitude: float = 0.0
    peak_hour: float = 14.0
    busy_window: tuple[float, float] | None = None
    busy_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.mean_per_hour <= 0:
            raise ValueError("mean_per_hour must be positive")
        if self.target_cv < 0:
            raise ValueError("target_cv must be non-negative")
        if not 0 <= self.diurnal_amplitude < 1:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.busy_factor <= 0:
            raise ValueError("busy_factor must be positive")

    def hourly_rates(self, rng: np.random.Generator, n_hours: int) -> np.ndarray:
        """Draw the modulated per-hour rates (before Poisson sampling)."""
        hours = np.arange(n_hours, dtype=np.float64)
        profile = diurnal_profile(hours % 24, self.diurnal_amplitude, self.peak_hour)
        cv_d2 = self.diurnal_amplitude**2 / 2.0
        cv_g2 = max((1.0 + self.target_cv**2) / (1.0 + cv_d2) - 1.0, 0.0)
        if cv_g2 > 0:
            shape = 1.0 / cv_g2
            gamma = rng.gamma(shape, 1.0 / shape, n_hours)
        else:
            gamma = np.ones(n_hours)
        rates = self.mean_per_hour * profile * gamma
        if self.busy_window is not None:
            start, end = self.busy_window
            hour_start = hours * HOUR
            in_window = (hour_start >= start) & (hour_start < end)
            rates[in_window] *= self.busy_factor
        return rates

    def generate(self, rng: np.random.Generator, horizon: float) -> np.ndarray:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        n_hours = int(np.ceil(horizon / HOUR))
        rates = self.hourly_rates(rng, n_hours)
        counts = rng.poisson(rates)
        total = int(counts.sum())
        offsets = rng.uniform(0.0, HOUR, total)
        hour_of = np.repeat(np.arange(n_hours, dtype=np.float64), counts)
        times = hour_of * HOUR + offsets
        times = times[times < horizon]
        return np.sort(times)

    def iter_generate(
        self,
        rng: np.random.Generator,
        horizon: float,
        *,
        block_tasks: int = 4_194_304,
    ) -> Iterator[np.ndarray]:
        """Stream :meth:`generate`'s arrivals in bounded hour blocks.

        Concatenating the yielded arrays is bit-identical to the one-shot
        :meth:`generate` call with the same ``rng`` state, for any
        ``block_tasks``:

        * the rate and Poisson-count draws are the same single full-size
          calls, so the stream position entering the offset draws matches;
        * consecutive ``uniform(0, HOUR, k)`` calls fill the PCG64 stream
          sequentially (64 bits per double), so per-block offset draws
          concatenate to the one full-size draw;
        * hour value ranges are disjoint half-open intervals, so sorting
          each consecutive hour block separately equals the global sort.

        Peak memory is one block (roughly ``block_tasks`` arrivals) plus
        the per-hour rate/count vectors, instead of four full-horizon
        arrays.
        """
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if block_tasks <= 0:
            raise ValueError("block_tasks must be positive")
        n_hours = int(np.ceil(horizon / HOUR))
        rates = self.hourly_rates(rng, n_hours)
        counts = rng.poisson(rates)
        block_hours = max(1, int(block_tasks / max(self.mean_per_hour, 1.0)))
        for lo in range(0, n_hours, block_hours):
            hi = min(lo + block_hours, n_hours)
            block_counts = counts[lo:hi]
            total = int(block_counts.sum())
            offsets = rng.uniform(0.0, HOUR, total)
            hour_of = np.repeat(np.arange(lo, hi, dtype=np.float64), block_counts)
            times = hour_of * HOUR + offsets
            times = times[times < horizon]
            yield np.sort(times)
