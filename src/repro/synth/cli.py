"""Command-line trace generator.

Writes calibrated synthetic traces to disk so downstream tools (or the
examples) can consume them without touching the Python API::

    repro-generate google --days 1 --machines 20 --out ./google-trace
    repro-generate grid AuverGrid --days 7 --out ./auvergrid.gwa.gz
    repro-generate --list-systems
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from ..traces.gwa import write_gwa
from ..traces.io import save_trace
from ..traces.swf import write_swf
from .google_model import GoogleConfig, generate_google_trace
from .grid_model import generate_grid_jobs, grid_preset
from .presets import DAY, GRID_PRESETS

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-generate",
        description="Generate calibrated synthetic cluster/grid traces.",
    )
    parser.add_argument(
        "--list-systems", action="store_true", help="list grid systems and exit"
    )
    sub = parser.add_subparsers(dest="command")

    google = sub.add_parser("google", help="Google-style cluster trace")
    google.add_argument("--days", type=float, default=1.0)
    google.add_argument("--machines", type=int, default=20)
    google.add_argument(
        "--tasks-per-hour",
        type=float,
        default=None,
        help="task arrival rate (default: 7 per machine per hour)",
    )
    google.add_argument("--seed", type=int, default=0)
    google.add_argument(
        "--out", type=Path, required=True, help="output directory"
    )

    grid = sub.add_parser("grid", help="Grid/HPC job trace (GWA or SWF)")
    grid.add_argument("system", help="system name (see --list-systems)")
    grid.add_argument("--days", type=float, default=7.0)
    grid.add_argument("--seed", type=int, default=0)
    grid.add_argument(
        "--out",
        type=Path,
        required=True,
        help="output file (.gwa[.gz] or .swf[.gz] as fits the system)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = _parser()
    args = parser.parse_args(argv)

    if args.list_systems:
        for name, preset in sorted(GRID_PRESETS.items()):
            print(
                f"{name:12s} {preset.archive.upper():3s} "
                f"{preset.mean_jobs_per_hour:7.1f} jobs/h "
                f"fairness {preset.fairness:.2f}"
            )
        return 0

    if args.command == "google":
        horizon = args.days * DAY
        rate = (
            args.tasks_per_hour
            if args.tasks_per_hour is not None
            else 7.0 * args.machines
        )
        trace = generate_google_trace(
            horizon=horizon,
            num_machines=args.machines,
            seed=args.seed,
            tasks_per_hour=rate,
            config=GoogleConfig(busy_window=None),
        )
        save_trace(trace, args.out)
        print(
            f"wrote Google trace to {args.out}: {trace.num_jobs} jobs, "
            f"{len(trace.task_events)} events, "
            f"{len(trace.task_usage)} usage rows, "
            f"{trace.num_machines} machines"
        )
        return 0

    if args.command == "grid":
        try:
            preset = grid_preset(args.system)
        except KeyError as exc:
            print(exc, file=sys.stderr)
            return 2
        jobs = generate_grid_jobs(preset, args.days * DAY, seed=args.seed)
        if preset.archive == "gwa":
            write_gwa(jobs, args.out)
        else:
            write_swf(jobs, args.out, header=f"{preset.name} synthetic trace")
        print(
            f"wrote {preset.archive.upper()} trace to {args.out}: "
            f"{jobs.num_rows} jobs"
        )
        return 0

    parser.print_help()
    return 2


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
