"""Calibrated Grid/HPC workload generator.

Produces GWA- or SWF-style job tables from a
:class:`~repro.synth.presets.GridSystemPreset`, reproducing the
per-system submission dynamics (Table I), job-length distributions
(Fig. 3) and resource demands (Fig. 6) the paper measured.
"""

from __future__ import annotations

import numpy as np

from ..core.table import Table
from .arrivals import DoublyStochasticArrivals, cv_for_fairness
from .presets import GRID_PRESETS, GridSystemPreset
from ..traces.gwa import gwa_table
from ..traces.swf import swf_table

__all__ = ["generate_grid_jobs", "generate_all_grids", "grid_preset"]


def grid_preset(name: str) -> GridSystemPreset:
    """Look up a named preset, with a helpful error."""
    try:
        return GRID_PRESETS[name]
    except KeyError:
        raise KeyError(
            f"unknown grid system {name!r}; available: {sorted(GRID_PRESETS)}"
        ) from None


def generate_grid_jobs(
    preset: GridSystemPreset | str,
    horizon: float,
    seed: int | np.random.Generator = 0,
    num_users: int = 50,
) -> Table:
    """Generate one system's job table over ``[0, horizon)`` seconds.

    Returns a table in the preset's native archive schema (GWA or SWF).
    """
    if isinstance(preset, str):
        preset = grid_preset(preset)
    rng = (
        seed
        if isinstance(seed, np.random.Generator)
        else np.random.default_rng(seed)
    )
    process = DoublyStochasticArrivals(
        mean_per_hour=preset.mean_jobs_per_hour,
        target_cv=cv_for_fairness(preset.fairness, preset.mean_jobs_per_hour),
        diurnal_amplitude=preset.diurnal_amplitude,
    )
    submit = process.generate(rng, horizon)
    n = submit.size
    if n == 0:
        raise ValueError(
            "horizon too short: no jobs generated; use a longer horizon"
        )

    run_time = preset.job_length.sample(rng, n)
    procs = rng.choice(
        np.asarray(preset.proc_counts), size=n, p=preset.proc_weights
    ).astype(np.int32)
    lo, hi = preset.utilization_range
    utilization = rng.uniform(lo, hi, n)
    avg_cpu_time = run_time * utilization
    mem_kb = preset.mem_mb.sample(rng, n) * 1024.0
    # Batch queues impose waiting; model it as a small multiple of the
    # system's mean service pressure.
    wait = rng.exponential(0.15 * float(np.mean(run_time)), n)
    users = rng.integers(0, num_users, n)
    status = (rng.uniform(0, 1, n) > 0.05).astype(np.int8)  # ~5% failures

    columns = dict(
        job_id=np.arange(1, n + 1, dtype=np.int64),
        submit_time=submit,
        wait_time=wait,
        run_time=run_time,
        num_procs=procs,
        avg_cpu_time=avg_cpu_time,
        used_memory=mem_kb,
        user_id=users,
        status=status,
    )
    if preset.archive == "gwa":
        return gwa_table(**columns)
    return swf_table(**columns)


def generate_all_grids(
    horizon: float, seed: int = 0, systems: list[str] | None = None
) -> dict[str, Table]:
    """Generate every (or the named) grid systems with decorrelated seeds.

    Each system draws from its own child stream spawned off a single
    :class:`~numpy.random.SeedSequence`, keyed by the system name, so a
    system's trace depends only on ``(seed, name)`` — not on which other
    systems were requested or on their order.
    """
    names = systems if systems is not None else sorted(GRID_PRESETS)
    catalog = sorted(GRID_PRESETS)
    out: dict[str, Table] = {}
    for name in names:
        preset = grid_preset(name)
        # Stable per-name key: the preset's position in the full catalog.
        child_seq = np.random.SeedSequence(
            entropy=seed, spawn_key=(catalog.index(name),)
        )
        out[name] = generate_grid_jobs(
            preset, horizon, np.random.default_rng(child_seq)
        )
    return out
