"""Backward-compatible alias for :mod:`repro.core.distributions`.

The distribution toolkit is shared by synthesis (sampling) and by
:mod:`repro.core.fit` (fitting), so the classes live in layer-0
:mod:`repro.core.distributions`. This shim keeps
``repro.synth.distributions`` imports working.
"""

from __future__ import annotations

from ..core.distributions import (
    BoundedPareto,
    Deterministic,
    Distribution,
    Exponential,
    HyperExponential,
    LogNormal,
    Mixture,
    Uniform,
)

__all__ = [
    "Distribution",
    "Exponential",
    "Uniform",
    "LogNormal",
    "BoundedPareto",
    "HyperExponential",
    "Mixture",
    "Deterministic",
]
