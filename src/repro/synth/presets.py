"""Per-system calibration constants.

Every number the paper reports feeds a preset here: Table I's
submission rates and fairness indices, Fig. 3's job-length CDFs,
Fig. 4's mass-count statistics, Fig. 6's resource-usage distributions
and Fig. 2's priority histogram. The synthetic generators consume these
presets, so regenerating a figure is a pure function of (preset, seed).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.distributions import BoundedPareto, Distribution, LogNormal, Mixture

__all__ = [
    "GridSystemPreset",
    "GRID_PRESETS",
    "GOOGLE_PRIORITY_JOB_WEIGHTS",
    "GOOGLE_TASK_LENGTH",
    "GOOGLE_JOB_LENGTH",
    "AUVERGRID_TASK_LENGTH",
    "DAY",
    "HOUR",
]

HOUR = 3600.0
DAY = 24 * HOUR


# ---------------------------------------------------------------------------
# Google calibration
# ---------------------------------------------------------------------------

#: Fig. 2(a): number of jobs per priority (1..12). The labeled bars are
#: 16, 11.3, 17, 13, 0.9, 4 and 4.7 (x10^4); unlabeled bars are small.
#: Total ~673k jobs, matching the paper's ">670,000 jobs".
GOOGLE_PRIORITY_JOB_WEIGHTS = (
    160_000,  # 1
    113_000,  # 2
    170_000,  # 3
    130_000,  # 4
    9_000,  # 5
    40_000,  # 6
    2_000,  # 7
    1_500,  # 8
    47_000,  # 9
    1_000,  # 10
    500,  # 11
    300,  # 12
)

#: Task execution time: ~55% under 10 min, ~90% under 1 h, ~94% under
#: 3 h (Sec. VI / Fig. 4a), mean in the hours dominated by a ~5.5% service tail
#: reaching the 29-day trace-long maximum; joint ratio ~6/94.
GOOGLE_TASK_LENGTH: Distribution = Mixture(
    [
        LogNormal(median=420.0, sigma=1.3, high=3 * HOUR),
        BoundedPareto(alpha=0.35, low=3 * HOUR, high=29 * DAY),
    ],
    # Base tail weight 4%; together with the high-priority service
    # resampling (7% of tasks at 25% service fraction) the *overall*
    # tail lands at ~5.5%, giving P(<3h) ~ 0.94 as Sec. VI reports.
    [0.96, 0.04],
)

#: Job length: >80% shorter than 1000 s (Fig. 3), plus a service tail.
GOOGLE_JOB_LENGTH: Distribution = Mixture(
    [
        LogNormal(median=300.0, sigma=1.2, high=2 * HOUR),
        BoundedPareto(alpha=0.4, low=2 * HOUR, high=29 * DAY),
    ],
    [0.92, 0.08],
)

#: AuverGrid task/job length: mean ~7.2 h, max 18 days, joint ratio
#: ~24/76, mm-distance ~0.82 days (Fig. 4b). A lognormal with sigma
#: ~1.45 has joint ratio Phi(sigma/2) ~ 76/24 by construction.
AUVERGRID_TASK_LENGTH: Distribution = LogNormal(
    median=9000.0, sigma=1.45, high=18 * DAY
)


# ---------------------------------------------------------------------------
# Grid/HPC presets
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class GridSystemPreset:
    """Calibration of one Grid/HPC system.

    Attributes mirror what the paper's figures need: Table I's rate and
    fairness, the job-length distribution (Fig. 3), the processor-count
    mix and per-processor utilization (Fig. 6a via Eq. 4) and the
    per-job memory footprint in MB (Fig. 6b).
    """

    name: str
    archive: str  # "gwa" or "swf"
    mean_jobs_per_hour: float
    fairness: float
    diurnal_amplitude: float
    job_length: Distribution
    proc_counts: tuple[int, ...]
    proc_weights: tuple[float, ...]
    utilization_range: tuple[float, float]
    mem_mb: Distribution

    def __post_init__(self) -> None:
        if self.archive not in ("gwa", "swf"):
            raise ValueError("archive must be 'gwa' or 'swf'")
        if len(self.proc_counts) != len(self.proc_weights):
            raise ValueError("proc_counts/proc_weights length mismatch")
        if abs(sum(self.proc_weights) - 1) > 1e-9:
            raise ValueError("proc_weights must sum to 1")
        lo, hi = self.utilization_range
        if not 0 < lo <= hi <= 1:
            raise ValueError("utilization_range must satisfy 0 < lo <= hi <= 1")


def _mem(median_mb: float, sigma: float = 0.9) -> Distribution:
    return LogNormal(median=median_mb, sigma=sigma, high=64 * 1024.0)


#: Table I columns: Google 552/0.94, AG 45/0.35, NG 27/0.11, SN
#: 126/0.04, ANL 10/0.51, RICC 121/0.14, MT 24/0.04, LLNL 8.4/0.23.
GRID_PRESETS: dict[str, GridSystemPreset] = {
    "AuverGrid": GridSystemPreset(
        name="AuverGrid",
        archive="gwa",
        mean_jobs_per_hour=45.0,
        fairness=0.35,
        diurnal_amplitude=0.55,
        job_length=AUVERGRID_TASK_LENGTH,
        proc_counts=(1, 2),
        proc_weights=(0.9, 0.1),
        utilization_range=(0.85, 1.0),
        mem_mb=_mem(350.0),
    ),
    "NorduGrid": GridSystemPreset(
        name="NorduGrid",
        archive="gwa",
        mean_jobs_per_hour=27.0,
        fairness=0.11,
        diurnal_amplitude=0.6,
        job_length=LogNormal(median=12_000.0, sigma=1.6, high=20 * DAY),
        proc_counts=(1,),
        proc_weights=(1.0,),
        utilization_range=(0.85, 1.0),
        mem_mb=_mem(500.0),
    ),
    "SHARCNET": GridSystemPreset(
        name="SHARCNET",
        archive="gwa",
        mean_jobs_per_hour=126.0,
        fairness=0.04,
        diurnal_amplitude=0.6,
        job_length=LogNormal(median=4000.0, sigma=1.9, high=30 * DAY),
        proc_counts=(1, 2, 4, 8, 16, 32),
        proc_weights=(0.55, 0.15, 0.12, 0.1, 0.05, 0.03),
        utilization_range=(0.8, 1.0),
        mem_mb=_mem(600.0),
    ),
    "ANL": GridSystemPreset(
        name="ANL",
        archive="swf",
        mean_jobs_per_hour=10.0,
        fairness=0.51,
        diurnal_amplitude=0.45,
        job_length=LogNormal(median=5400.0, sigma=1.3, high=7 * DAY),
        proc_counts=(256, 512, 1024, 2048),
        proc_weights=(0.4, 0.3, 0.2, 0.1),
        utilization_range=(0.9, 1.0),
        mem_mb=_mem(900.0),
    ),
    "RICC": GridSystemPreset(
        name="RICC",
        archive="swf",
        mean_jobs_per_hour=121.0,
        fairness=0.14,
        diurnal_amplitude=0.5,
        job_length=LogNormal(median=4500.0, sigma=1.6, high=10 * DAY),
        proc_counts=(1, 4, 8, 16, 64),
        proc_weights=(0.35, 0.25, 0.2, 0.15, 0.05),
        utilization_range=(0.85, 1.0),
        mem_mb=_mem(700.0),
    ),
    "METACENTRUM": GridSystemPreset(
        name="METACENTRUM",
        archive="swf",
        mean_jobs_per_hour=24.0,
        fairness=0.04,
        diurnal_amplitude=0.55,
        job_length=LogNormal(median=8000.0, sigma=1.7, high=20 * DAY),
        proc_counts=(1, 2, 4, 8),
        proc_weights=(0.6, 0.2, 0.12, 0.08),
        utilization_range=(0.8, 1.0),
        mem_mb=_mem(400.0),
    ),
    "LLNL-Atlas": GridSystemPreset(
        name="LLNL-Atlas",
        archive="swf",
        mean_jobs_per_hour=8.4,
        fairness=0.23,
        diurnal_amplitude=0.45,
        job_length=LogNormal(median=7200.0, sigma=1.35, high=7 * DAY),
        proc_counts=(8, 16, 64, 256, 1024),
        proc_weights=(0.3, 0.25, 0.25, 0.15, 0.05),
        utilization_range=(0.9, 1.0),
        mem_mb=_mem(1200.0),
    ),
    "DAS-2": GridSystemPreset(
        name="DAS-2",
        archive="gwa",
        mean_jobs_per_hour=30.0,
        fairness=0.2,
        diurnal_amplitude=0.5,
        job_length=LogNormal(median=1800.0, sigma=1.5, high=5 * DAY),
        proc_counts=(1, 2, 4, 8, 16),
        proc_weights=(0.3, 0.25, 0.2, 0.15, 0.1),
        utilization_range=(0.7, 0.95),
        mem_mb=_mem(250.0),
    ),
}
