"""Heterogeneous machine-fleet generation (Fig. 7's capacity groups).

The released Google trace normalizes capacities by the largest machine:
CPU capacities take the values {0.25, 0.5, 1}, memory {0.25, 0.5, 0.75,
1}, and page cache is uniform at 1. Group weights below follow the
trace's dominant platforms (roughly half the fleet at 0.5 CPU).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..traces.schema import MACHINE_TABLE_SCHEMA
from ..core.table import Table

__all__ = ["FleetConfig", "generate_machines", "DEFAULT_FLEET"]


@dataclass(frozen=True)
class FleetConfig:
    """Capacity levels and their machine-count weights."""

    cpu_levels: tuple[float, ...] = (0.25, 0.5, 1.0)
    cpu_weights: tuple[float, ...] = (0.31, 0.62, 0.07)
    mem_levels: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0)
    mem_weights: tuple[float, ...] = (0.37, 0.49, 0.11, 0.03)
    page_cache_levels: tuple[float, ...] = (1.0,)
    page_cache_weights: tuple[float, ...] = (1.0,)
    correlate_cpu_mem: bool = field(default=True)

    def __post_init__(self) -> None:
        for levels, weights, name in (
            (self.cpu_levels, self.cpu_weights, "cpu"),
            (self.mem_levels, self.mem_weights, "mem"),
            (self.page_cache_levels, self.page_cache_weights, "page_cache"),
        ):
            if len(levels) != len(weights) or not levels:
                raise ValueError(f"{name}: levels/weights mismatch")
            if any(lv <= 0 or lv > 1 for lv in levels):
                raise ValueError(f"{name}: levels must be in (0, 1]")
            if any(w < 0 for w in weights) or abs(sum(weights) - 1) > 1e-9:
                raise ValueError(f"{name}: weights must sum to 1")


DEFAULT_FLEET = FleetConfig()


def generate_machines(
    num_machines: int,
    rng: np.random.Generator,
    config: FleetConfig = DEFAULT_FLEET,
) -> Table:
    """Generate a machine table with the configured capacity mix.

    With ``correlate_cpu_mem`` (the default, matching the real fleet
    where bigger CPUs come with more memory), the memory level is drawn
    from weights tilted toward the machine's CPU rank.
    """
    if num_machines < 1:
        raise ValueError("num_machines must be >= 1")
    cpu_levels = np.asarray(config.cpu_levels)
    cpu = rng.choice(cpu_levels, size=num_machines, p=config.cpu_weights)

    mem_levels = np.asarray(config.mem_levels)
    mem_weights = np.asarray(config.mem_weights, dtype=np.float64)
    if config.correlate_cpu_mem and len(cpu_levels) > 1:
        mem = np.empty(num_machines)
        ranks = (cpu[:, None] == cpu_levels[None, :]).argmax(axis=1)
        max_rank = len(cpu_levels) - 1
        for rank in np.unique(ranks):
            mask = ranks == rank
            # Tilt the memory weights toward the same relative rank.
            tilt = np.linspace(-1.0, 1.0, len(mem_levels)) * (
                2.0 * rank / max_rank - 1.0
            )
            w = mem_weights * np.exp(tilt)
            w /= w.sum()
            mem[mask] = rng.choice(mem_levels, size=int(mask.sum()), p=w)
    else:
        mem = rng.choice(mem_levels, size=num_machines, p=mem_weights)

    page = rng.choice(
        np.asarray(config.page_cache_levels),
        size=num_machines,
        p=config.page_cache_weights,
    )
    return Table(
        {
            "machine_id": np.arange(num_machines, dtype=np.int64),
            "cpu_capacity": cpu,
            "mem_capacity": mem,
            "page_cache_capacity": page,
        },
        schema=MACHINE_TABLE_SCHEMA,
    )
