"""Calibrated Google-cluster workload model.

Two granularities are provided:

* :func:`generate_google_jobs` — per-job summaries for the workload
  analyses (Figs. 2, 3, 5, 6 and Table I).
* :func:`generate_task_requests` — a columnar stream of task requests
  (arrival, priority, resource demands, duration, fate) to drive the
  cluster simulator that regenerates the host-load results (Figs.
  7-13, Tables II-III).
* :func:`generate_google_trace` — a full, self-consistent
  :class:`~repro.traces.google.GoogleTrace` built statistically
  (placement without contention); useful for trace I/O, validation and
  the workload-side experiments.

Calibration sources are cited field by field in
:class:`GoogleConfig`; headline targets: 552 jobs/hour at fairness
0.94, ~55% of tasks under 10 minutes, ~90% under 1 hour, mean task
length ~5.6 h with a 29-day maximum, ~59% abnormal completion events.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field

import numpy as np

from ..traces.google import GoogleTrace
from ..traces.schema import (
    JOB_TABLE_SCHEMA,
    TASK_EVENT_SCHEMA,
    TASK_USAGE_SCHEMA,
    TaskEvent,
    priority_band_array,
)
from ..core.table import Table
from .arrivals import DoublyStochasticArrivals, cv_for_fairness
from ..core.distributions import BoundedPareto, Distribution, LogNormal, Mixture
from .machines import FleetConfig, generate_machines
from .presets import (
    DAY,
    GOOGLE_JOB_LENGTH,
    GOOGLE_PRIORITY_JOB_WEIGHTS,
    GOOGLE_TASK_LENGTH,
    HOUR,
)

__all__ = [
    "GoogleConfig",
    "TaskRequests",
    "generate_google_jobs",
    "generate_task_requests",
    "iter_task_requests",
    "generate_task_requests_chunked",
    "concat_task_requests",
    "generate_google_trace",
    "FATE_CODES",
]

#: Terminal fates a task can be assigned at creation. EVICT additionally
#: arises mechanistically from preemption inside the simulator.
FATE_CODES = {
    "finish": int(TaskEvent.FINISH),
    "fail": int(TaskEvent.FAIL),
    "kill": int(TaskEvent.KILL),
    "evict": int(TaskEvent.EVICT),
    "lost": int(TaskEvent.LOST),
}


@dataclass(frozen=True)
class GoogleConfig:
    """Knobs of the Google workload model (defaults = paper calibration)."""

    #: Table I: average 552 jobs/hour at fairness 0.94.
    jobs_per_hour: float = 552.0
    fairness: float = 0.94
    #: Fig. 10: a cluster-wide busy stretch on days 21-25.
    busy_window: tuple[float, float] | None = (21 * DAY, 25 * DAY)
    busy_factor: float = 1.8

    #: Fig. 2(a) priority histogram weights (index 0 = priority 1).
    priority_weights: tuple[float, ...] = GOOGLE_PRIORITY_JOB_WEIGHTS

    #: Tasks per job: mostly single-task, with map-reduce style fan-out
    #: bringing the mean to ~37 (25M tasks / 670k jobs).
    single_task_fraction: float = 0.75
    small_job_max_tasks: int = 10
    small_job_fraction: float = 0.20
    large_job_mean_tasks: float = 660.0
    large_job_max_tasks: int = 5000

    #: Task/job lengths (see presets for the calibrated shapes).
    task_length: Distribution = GOOGLE_TASK_LENGTH
    job_length: Distribution = GOOGLE_JOB_LENGTH
    #: High-priority tasks skew to long-running services (Sec. VI).
    high_priority_service_fraction: float = 0.25

    #: Per-task resource demands, normalized to the largest machine.
    cpu_request: Distribution = LogNormal(
        median=0.012, sigma=0.6, low=0.002, high=0.1
    )
    mem_request: Distribution = LogNormal(
        median=0.010, sigma=0.6, low=0.002, high=0.12
    )
    #: Actual usage as a fraction of the request: CPUs run well below
    #: their reservation (cluster CPU ~35% busy) while memory is held
    #: near its reservation (cluster memory ~60% full) - Sec. IV.B.2.
    cpu_utilization_range: tuple[float, float] = (0.4, 0.95)
    mem_utilization_range: tuple[float, float] = (0.75, 1.0)
    page_cache_range: tuple[float, float] = (0.0, 0.03)

    #: Fate mix: tuned so completion events are ~59% abnormal with fail
    #: dominant and kill second (Sec. IV.B.1). Eviction listed here is
    #: only used by the statistical trace; the simulator evicts
    #: mechanistically via preemption.
    fate_probs: dict[str, float] = field(
        default_factory=lambda: {
            "finish": 0.408,
            "fail": 0.296,
            "kill": 0.182,
            "evict": 0.104,
            "lost": 0.010,
        }
    )
    #: Resubmission probability after a fail/evict (drives the 44M
    #: completion events over 25M distinct tasks).
    resubmit_prob: float = 0.65
    max_resubmits: int = 3

    #: Median scheduling delay for the statistical trace (the paper's
    #: Fig. 8(b): pending queues are almost always empty).
    schedule_delay_mean: float = 10.0

    def __post_init__(self) -> None:
        if self.jobs_per_hour <= 0:
            raise ValueError("jobs_per_hour must be positive")
        if not 0 < self.fairness <= 1:
            raise ValueError("fairness must be in (0, 1]")
        if len(self.priority_weights) != 12:
            raise ValueError("priority_weights must have 12 entries")
        total = sum(self.fate_probs.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"fate_probs must sum to 1, got {total}")
        if set(self.fate_probs) != set(FATE_CODES):
            raise ValueError(f"fate_probs keys must be {sorted(FATE_CODES)}")
        if not 0 <= self.resubmit_prob <= 1:
            raise ValueError("resubmit_prob must be a probability")


def _rng(seed: int | np.random.Generator) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _sample_priorities(
    config: GoogleConfig, rng: np.random.Generator, n: int
) -> np.ndarray:
    weights = np.asarray(config.priority_weights, dtype=np.float64)
    probs = weights / weights.sum()
    return rng.choice(np.arange(1, 13), size=n, p=probs).astype(np.int16)


def _sample_tasks_per_job(
    config: GoogleConfig, rng: np.random.Generator, n: int
) -> np.ndarray:
    u = rng.uniform(0, 1, n)
    counts = np.ones(n, dtype=np.int64)
    small = (u >= config.single_task_fraction) & (
        u < config.single_task_fraction + config.small_job_fraction
    )
    counts[small] = rng.integers(2, config.small_job_max_tasks + 1, int(small.sum()))
    large = u >= config.single_task_fraction + config.small_job_fraction
    n_large = int(large.sum())
    if n_large:
        geo = rng.geometric(1.0 / config.large_job_mean_tasks, n_large)
        counts[large] = np.minimum(geo + 1, config.large_job_max_tasks)
    return counts


#: Nominal trace length used to budget the busy window's variance share.
_NOMINAL_HORIZON = 30 * DAY


def _busy_compensation(
    config: GoogleConfig, rate_per_hour: float
) -> tuple[float, float]:
    """(base rate, residual cv) so that mean and fairness hit target.

    The busy window multiplies the rate by ``busy_factor`` over a
    fraction ``p`` of the trace, adding both mean and variance; the
    base rate and the gamma modulation absorb the difference.
    """
    if config.busy_window is None or config.busy_factor == 1.0:
        return rate_per_hour, cv_for_fairness(config.fairness, rate_per_hour)
    start, end = config.busy_window
    p = min(max((end - start) / _NOMINAL_HORIZON, 0.0), 1.0)
    f = config.busy_factor
    mean_factor = 1.0 + p * (f - 1.0)
    # Variance of the busy multiplier around its mean.
    second_moment = (1.0 - p) + p * f * f
    cv_busy2 = second_moment / mean_factor**2 - 1.0
    cv_target = cv_for_fairness(config.fairness, rate_per_hour)
    cv_resid = float(np.sqrt(max(cv_target**2 - cv_busy2, 0.0)))
    return rate_per_hour / mean_factor, cv_resid


def _arrival_process(config: GoogleConfig) -> DoublyStochasticArrivals:
    base_rate, cv = _busy_compensation(config, config.jobs_per_hour)
    return DoublyStochasticArrivals(
        mean_per_hour=base_rate,
        target_cv=cv,
        diurnal_amplitude=0.05,  # Cloud load is barely diurnal
        busy_window=config.busy_window,
        busy_factor=config.busy_factor,
    )


def generate_google_jobs(
    horizon: float,
    seed: int | np.random.Generator = 0,
    config: GoogleConfig | None = None,
    num_users: int = 500,
) -> Table:
    """Per-job summary table over ``[0, horizon)`` (JOB_TABLE_SCHEMA)."""
    config = config or GoogleConfig()
    rng = _rng(seed)
    submit = _arrival_process(config).generate(rng, horizon)
    n = submit.size
    if n == 0:
        raise ValueError("horizon too short: no jobs generated")
    lengths = config.job_length.sample(rng, n)
    priorities = _sample_priorities(config, rng, n)
    tasks = _sample_tasks_per_job(config, rng, n)
    # Eq. (4) per job: Google jobs are mostly sequential and interactive,
    # so per-job CPU usage concentrates below one processor.
    cpu = np.clip(rng.lognormal(np.log(0.35), 0.7, n), 0.0, 1.5)
    mem = np.clip(rng.lognormal(np.log(0.002), 1.0, n), 0.0, 1.0)
    return Table(
        {
            "job_id": np.arange(n, dtype=np.int64),
            "user_id": rng.integers(0, num_users, n),
            "submit_time": submit,
            "end_time": submit + lengths,
            "priority": priorities,
            "num_tasks": tasks.astype(np.int32),
            "cpu_usage": cpu,
            "mem_usage": mem,
        },
        schema=JOB_TABLE_SCHEMA,
    )


@dataclass(frozen=True)
class TaskRequests:
    """Columnar task-request stream for the simulator.

    Each row is one task *submission* (resubmissions are generated by
    the simulator itself on failure/eviction). Arrays share length.
    """

    submit_time: np.ndarray
    job_id: np.ndarray
    task_index: np.ndarray
    priority: np.ndarray
    cpu_request: np.ndarray
    mem_request: np.ndarray
    duration: np.ndarray
    cpu_utilization: np.ndarray
    mem_utilization: np.ndarray
    page_cache: np.ndarray
    fate: np.ndarray  # TaskEvent code drawn at creation

    def __post_init__(self) -> None:
        n = len(self.submit_time)
        for name in (
            "job_id",
            "task_index",
            "priority",
            "cpu_request",
            "mem_request",
            "duration",
            "cpu_utilization",
            "mem_utilization",
            "page_cache",
            "fate",
        ):
            if len(getattr(self, name)) != n:
                raise ValueError(f"column {name} length mismatch")

    def __len__(self) -> int:
        return len(self.submit_time)

    def sorted_by_time(self) -> "TaskRequests":
        order = np.argsort(self.submit_time, kind="stable")
        return TaskRequests(
            **{
                name: getattr(self, name)[order]
                for name in self.__dataclass_fields__
            }
        )


def _sample_task_lengths(
    config: GoogleConfig,
    rng: np.random.Generator,
    priorities: np.ndarray,
) -> np.ndarray:
    """Task lengths, with high-priority tasks skewed to services."""
    n = priorities.size
    lengths = config.task_length.sample(rng, n)
    bands = priority_band_array(priorities)
    high = bands == 2
    n_high = int(high.sum())
    if n_high:
        service = Mixture(
            [
                LogNormal(median=420.0, sigma=1.3, high=3 * HOUR),
                BoundedPareto(alpha=0.35, low=3 * HOUR, high=29 * DAY),
            ],
            [
                1 - config.high_priority_service_fraction,
                config.high_priority_service_fraction,
            ],
        )
        lengths[high] = service.sample(rng, n_high)
    return lengths


def generate_task_requests(
    horizon: float,
    seed: int | np.random.Generator = 0,
    config: GoogleConfig | None = None,
    tasks_per_hour: float | None = None,
) -> TaskRequests:
    """Task-request stream for the simulator.

    ``tasks_per_hour`` overrides the job-level fan-out with a direct
    task arrival rate — the natural way to scale a simulated cluster
    down from 12,500 machines (use roughly ``7 * num_machines`` to get
    the ~40 running tasks per machine of Fig. 8).
    """
    config = config or GoogleConfig()
    rng = _rng(seed)
    if tasks_per_hour is not None:
        base_rate, cv = _busy_compensation(config, tasks_per_hour)
        process = DoublyStochasticArrivals(
            mean_per_hour=base_rate,
            target_cv=cv,
            diurnal_amplitude=0.05,
            busy_window=config.busy_window,
            busy_factor=config.busy_factor,
        )
        submit = process.generate(rng, horizon)
        job_id = np.arange(submit.size, dtype=np.int64)
        task_index = np.zeros(submit.size, dtype=np.int32)
    else:
        job_submit = _arrival_process(config).generate(rng, horizon)
        tasks = _sample_tasks_per_job(config, rng, job_submit.size)
        job_id = np.repeat(np.arange(job_submit.size, dtype=np.int64), tasks)
        task_index = _ranges(tasks)
        # Tasks of one job arrive in a short burst after the job.
        submit = np.repeat(job_submit, tasks) + rng.exponential(
            2.0, int(tasks.sum())
        )
        keep = submit < horizon
        submit, job_id, task_index = submit[keep], job_id[keep], task_index[keep]

    n = submit.size
    if n == 0:
        raise ValueError("horizon too short: no tasks generated")
    # All tasks of a job share its priority; drawing per job then
    # repeating preserves that invariant.
    unique_jobs, first_idx = np.unique(job_id, return_index=True)
    job_priority = _sample_priorities(config, rng, unique_jobs.size)
    priority = job_priority[np.searchsorted(unique_jobs, job_id)]

    duration = _sample_task_lengths(config, rng, priority)
    fate_names = list(config.fate_probs)
    fate_p = np.asarray([config.fate_probs[k] for k in fate_names])
    fate_draw = rng.choice(len(fate_names), size=n, p=fate_p)
    fate = np.asarray([FATE_CODES[k] for k in fate_names])[fate_draw]

    lo_c, hi_c = config.cpu_utilization_range
    lo_m, hi_m = config.mem_utilization_range
    lo_p, hi_p = config.page_cache_range
    requests = TaskRequests(
        submit_time=submit,
        job_id=job_id,
        task_index=task_index.astype(np.int32),
        priority=priority.astype(np.int16),
        cpu_request=config.cpu_request.sample(rng, n),
        mem_request=config.mem_request.sample(rng, n),
        duration=duration,
        cpu_utilization=rng.uniform(lo_c, hi_c, n),
        mem_utilization=rng.uniform(lo_m, hi_m, n),
        page_cache=rng.uniform(lo_p, hi_p, n),
        fate=fate.astype(np.int8),
    )
    return requests.sorted_by_time()


def _ranges(counts: np.ndarray) -> np.ndarray:
    """[3, 2] -> [0, 1, 2, 0, 1]: per-job task indices, vectorized."""
    total = int(counts.sum())
    out = np.arange(total, dtype=np.int64)
    starts = np.repeat(np.cumsum(counts) - counts, counts)
    return out - starts


#: Internal sampling-block size of the chunked generator. Fixed — and
#: deliberately independent of the caller's ``chunk_tasks`` — so the
#: generated stream is invariant to how it is consumed: every block
#: draws from its own :class:`numpy.random.SeedSequence`-spawned
#: stream, and chunk boundaries only re-slice finished blocks.
_COLUMN_BLOCK = 262_144

_REQUEST_FIELDS = tuple(TaskRequests.__dataclass_fields__)


def concat_task_requests(chunks: Iterable[TaskRequests]) -> TaskRequests:
    """Concatenate request chunks column-wise (order preserved)."""
    chunks = list(chunks)
    if not chunks:
        raise ValueError("concat_task_requests requires at least one chunk")
    if len(chunks) == 1:
        return chunks[0]
    return TaskRequests(
        **{
            name: np.concatenate([getattr(c, name) for c in chunks])
            for name in _REQUEST_FIELDS
        }
    )


def _slice_requests(requests: TaskRequests, lo: int, hi: int) -> TaskRequests:
    """Row slice ``[lo, hi)`` as views into the parent columns."""
    return TaskRequests(
        **{name: getattr(requests, name)[lo:hi] for name in _REQUEST_FIELDS}
    )


def _sample_request_block(
    config: GoogleConfig,
    rng: np.random.Generator,
    submit: np.ndarray,
    first_job_id: int,
) -> TaskRequests:
    """Sample every non-arrival column for one block of submissions.

    Column draw order mirrors :func:`generate_task_requests` (priority,
    duration, fate, requests, utilizations, page cache) so the two
    paths stay structurally comparable.
    """
    n = submit.size
    priority = _sample_priorities(config, rng, n)
    duration = _sample_task_lengths(config, rng, priority)
    fate_names = list(config.fate_probs)
    fate_p = np.asarray([config.fate_probs[k] for k in fate_names])
    fate_draw = rng.choice(len(fate_names), size=n, p=fate_p)
    fate = np.asarray([FATE_CODES[k] for k in fate_names])[fate_draw]
    lo_c, hi_c = config.cpu_utilization_range
    lo_m, hi_m = config.mem_utilization_range
    lo_p, hi_p = config.page_cache_range
    return TaskRequests(
        submit_time=submit,
        job_id=np.arange(first_job_id, first_job_id + n, dtype=np.int64),
        task_index=np.zeros(n, dtype=np.int32),
        priority=priority,
        cpu_request=config.cpu_request.sample(rng, n),
        mem_request=config.mem_request.sample(rng, n),
        duration=duration,
        cpu_utilization=rng.uniform(lo_c, hi_c, n),
        mem_utilization=rng.uniform(lo_m, hi_m, n),
        page_cache=rng.uniform(lo_p, hi_p, n),
        fate=fate.astype(np.int8),
    )


def iter_task_requests(
    horizon: float,
    seed: int = 0,
    config: GoogleConfig | None = None,
    *,
    tasks_per_hour: float,
    chunk_tasks: int = 1_000_000,
) -> Iterator[TaskRequests]:
    """Stream task requests as bounded-size columnar chunks.

    The scalable path to paper scale (25M tasks) and beyond: arrival
    times stream in bounded hour blocks (``iter_generate`` — only the
    per-hour rate and count vectors are full-horizon), and all other
    columns are sampled per fixed-size internal block from that block's
    own spawned RNG stream, so peak memory is one arrival block plus
    one chunk instead of eleven full-horizon columns.

    Guarantees:

    * Deterministic in ``seed``.
    * Chunk-size invariant: concatenating the yielded chunks gives the
      same arrays bit for bit whatever ``chunk_tasks`` is (the golden
      test checks this against :func:`generate_task_requests_chunked`).
    * Chunks are globally time-sorted (arrivals are sorted and blocks
      are consecutive slices), so they can feed streaming consumers
      directly.

    This is a distinct stream from :func:`generate_task_requests` (the
    legacy single-pass path draws every column from one RNG and is kept
    byte-stable); like it, ``tasks_per_hour`` drives one single-task
    job per request. Job-level fan-out is not supported here because a
    job's task burst may straddle a chunk boundary.
    """
    config = config or GoogleConfig()
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "iter_task_requests needs an integer seed: per-block RNG "
            "streams are spawned from it"
        )
    if chunk_tasks <= 0:
        raise ValueError("chunk_tasks must be positive")
    base_rate, cv = _busy_compensation(config, tasks_per_hour)
    process = DoublyStochasticArrivals(
        mean_per_hour=base_rate,
        target_cv=cv,
        diurnal_amplitude=0.05,
        busy_window=config.busy_window,
        busy_factor=config.busy_factor,
    )
    arrival_seq, column_seq = np.random.SeedSequence(seed).spawn(2)
    arrival_blocks = process.iter_generate(np.random.default_rng(arrival_seq), horizon)

    # Re-slice the streamed arrivals into the same consecutive
    # _COLUMN_BLOCK-sized pieces the materialized path produced, and
    # spawn each block's SeedSequence lazily: spawning is incremental
    # (spawn(1) repeated == spawn(n_blocks) up front), so block seeds —
    # and hence every sampled column — stay bit-identical without
    # knowing the total block count in advance.
    pending: list[TaskRequests] = []
    pending_rows = 0
    buffered: list[np.ndarray] = []
    buffered_rows = 0
    start = 0
    exhausted = False
    while True:
        while buffered_rows < _COLUMN_BLOCK and not exhausted:
            piece = next(arrival_blocks, None)
            if piece is None:
                exhausted = True
            elif piece.size:
                buffered.append(piece)
                buffered_rows += piece.size
        if buffered_rows == 0:
            break
        merged_submit = np.concatenate(buffered) if len(buffered) > 1 else buffered[0]
        take = min(_COLUMN_BLOCK, merged_submit.size)
        rest_submit = merged_submit[take:]
        buffered = [rest_submit] if rest_submit.size else []
        buffered_rows = rest_submit.size
        block = _sample_request_block(
            config,
            np.random.default_rng(column_seq.spawn(1)[0]),
            merged_submit[:take],
            start,
        )
        start += take
        pending.append(block)
        pending_rows += len(block)
        while pending_rows >= chunk_tasks:
            merged = concat_task_requests(pending)
            yield _slice_requests(merged, 0, chunk_tasks)
            rest = _slice_requests(merged, chunk_tasks, len(merged))
            pending = [rest] if len(rest) else []
            pending_rows = len(rest)
    if start == 0:
        raise ValueError("horizon too short: no tasks generated")
    if pending_rows:
        yield concat_task_requests(pending)


def generate_task_requests_chunked(
    horizon: float,
    seed: int = 0,
    config: GoogleConfig | None = None,
    *,
    tasks_per_hour: float,
) -> TaskRequests:
    """Materialize the chunked stream in one piece (already time-sorted).

    The reference the chunk-size-invariance golden test compares
    against: for every ``chunk_tasks``, concatenating
    :func:`iter_task_requests`'s chunks equals this bit for bit.
    """
    return concat_task_requests(
        iter_task_requests(
            horizon, seed, config, tasks_per_hour=tasks_per_hour
        )
    )


def generate_google_trace(
    horizon: float,
    num_machines: int,
    seed: int = 0,
    config: GoogleConfig | None = None,
    tasks_per_hour: float | None = None,
    usage_sample_period: float = 300.0,
    fleet: FleetConfig | None = None,
) -> GoogleTrace:
    """Full statistical trace: jobs + task events + usage + machines.

    Placement is random (no contention model) — use
    :class:`repro.sim.cluster.ClusterSimulator` when machine-level
    contention matters. Tasks still running at the horizon simply lack
    a terminal event, as in the real fixed-window trace.
    """
    config = config or GoogleConfig()
    rng = np.random.default_rng(seed)
    requests = generate_task_requests(
        horizon, rng, config, tasks_per_hour=tasks_per_hour
    )
    machines = generate_machines(num_machines, rng, fleet or FleetConfig())

    n = len(requests)
    machine_ids = rng.integers(0, num_machines, n).astype(np.int64)
    delay = rng.exponential(config.schedule_delay_mean, n)
    start = requests.submit_time + delay
    end = start + requests.duration

    # Event log: SUBMIT, SCHEDULE (if before horizon), terminal (if
    # before horizon).
    sched_ok = start < horizon
    term_ok = end < horizon
    times = np.concatenate(
        [requests.submit_time, start[sched_ok], end[term_ok]]
    )
    etypes = np.concatenate(
        [
            np.full(n, int(TaskEvent.SUBMIT), dtype=np.int8),
            np.full(int(sched_ok.sum()), int(TaskEvent.SCHEDULE), dtype=np.int8),
            requests.fate[term_ok],
        ]
    )
    machine_col = np.concatenate(
        [
            np.full(n, -1, dtype=np.int64),
            machine_ids[sched_ok],
            machine_ids[term_ok],
        ]
    )

    def _tile(arr: np.ndarray) -> np.ndarray:
        return np.concatenate([arr, arr[sched_ok], arr[term_ok]])

    task_events = Table(
        {
            "time": times,
            "job_id": _tile(requests.job_id),
            "task_index": _tile(requests.task_index),
            "machine_id": machine_col,
            "event_type": etypes,
            "priority": _tile(requests.priority),
            "cpu_request": _tile(requests.cpu_request),
            "mem_request": _tile(requests.mem_request),
        },
        schema=TASK_EVENT_SCHEMA,
    ).sort_by("time")

    task_usage = _usage_samples(
        requests, machine_ids, start, end, horizon, usage_sample_period
    )
    jobs = _jobs_from_requests(requests, end, horizon, rng)
    return GoogleTrace(
        jobs=jobs,
        task_events=task_events,
        task_usage=task_usage,
        machines=machines,
        horizon=horizon,
    )


def _usage_samples(
    requests: TaskRequests,
    machine_ids: np.ndarray,
    start: np.ndarray,
    end: np.ndarray,
    horizon: float,
    period: float,
) -> Table:
    """Per-task usage rows, one per sampling window overlapped."""
    clipped_end = np.minimum(end, horizon)
    first = np.floor(start / period).astype(np.int64)
    last = np.ceil(clipped_end / period).astype(np.int64)
    n_windows = np.maximum(last - first, 0)
    total = int(n_windows.sum())
    task_of = np.repeat(np.arange(len(requests)), n_windows)
    window = _ranges(n_windows) + first[task_of]
    win_start = window * period
    win_end = win_start + period
    row_start = np.maximum(win_start, start[task_of])
    row_end = np.minimum(win_end, clipped_end[task_of])
    ok = row_end > row_start
    task_of, row_start, row_end = task_of[ok], row_start[ok], row_end[ok]
    return Table(
        {
            "start_time": row_start,
            "end_time": row_end,
            "job_id": requests.job_id[task_of],
            "task_index": requests.task_index[task_of],
            "machine_id": machine_ids[task_of],
            "priority": requests.priority[task_of],
            "cpu_usage": np.clip(
                requests.cpu_request[task_of]
                * requests.cpu_utilization[task_of],
                0,
                1,
            ),
            "mem_usage": np.clip(
                requests.mem_request[task_of]
                * requests.mem_utilization[task_of],
                0,
                1,
            ),
            "mem_assigned": np.clip(requests.mem_request[task_of], 0, 1),
            "page_cache": np.clip(requests.page_cache[task_of], 0, 1),
        },
        schema=TASK_USAGE_SCHEMA,
    )


def _jobs_from_requests(
    requests: TaskRequests,
    end: np.ndarray,
    horizon: float,
    rng: np.random.Generator,
) -> Table:
    """Aggregate the request stream into per-job summary rows."""
    job_ids, first_idx = np.unique(requests.job_id, return_index=True)
    order = np.argsort(requests.job_id, kind="stable")
    sorted_jobs = requests.job_id[order]
    bounds = np.flatnonzero(sorted_jobs[1:] != sorted_jobs[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends_idx = np.concatenate((bounds, [len(sorted_jobs)]))

    submit = np.minimum.reduceat(requests.submit_time[order], starts)
    job_end = np.minimum(np.maximum.reduceat(end[order], starts), horizon)
    num_tasks = (ends_idx - starts).astype(np.int32)
    cpu = np.add.reduceat(
        (requests.cpu_request * requests.cpu_utilization)[order], starts
    ) / num_tasks
    mem = np.add.reduceat(
        (requests.mem_request * requests.mem_utilization)[order], starts
    ) / num_tasks
    return Table(
        {
            "job_id": job_ids,
            "user_id": rng.integers(0, 500, job_ids.size),
            "submit_time": submit,
            "end_time": np.maximum(job_end, submit),
            "priority": requests.priority[first_idx],
            "num_tasks": num_tasks,
            # Eq. (4)-style per-job CPU over all processors: sum of the
            # tasks' concurrent normalized usage, in units of one core.
            "cpu_usage": np.clip(cpu * num_tasks, 0, None),
            "mem_usage": np.clip(mem, 0, 1),
        },
        schema=JOB_TABLE_SCHEMA,
    )
