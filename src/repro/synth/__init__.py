"""Synthetic workload generation calibrated to the paper's statistics."""

from .arrivals import (
    ArrivalProcess,
    DoublyStochasticArrivals,
    PoissonArrivals,
    cv_for_fairness,
    diurnal_profile,
)
from ..core.distributions import (
    BoundedPareto,
    Deterministic,
    Distribution,
    Exponential,
    HyperExponential,
    LogNormal,
    Mixture,
    Uniform,
)
from .google_model import (
    FATE_CODES,
    GoogleConfig,
    TaskRequests,
    concat_task_requests,
    generate_google_jobs,
    generate_google_trace,
    generate_task_requests,
    generate_task_requests_chunked,
    iter_task_requests,
)
from .grid_hostload import GridHostConfig, generate_grid_host_series
from .grid_model import generate_all_grids, generate_grid_jobs, grid_preset
from .machines import DEFAULT_FLEET, FleetConfig, generate_machines
from .presets import (
    AUVERGRID_TASK_LENGTH,
    DAY,
    GOOGLE_JOB_LENGTH,
    GOOGLE_PRIORITY_JOB_WEIGHTS,
    GOOGLE_TASK_LENGTH,
    GRID_PRESETS,
    HOUR,
    GridSystemPreset,
)

__all__ = [
    "AUVERGRID_TASK_LENGTH",
    "ArrivalProcess",
    "BoundedPareto",
    "DAY",
    "DEFAULT_FLEET",
    "Deterministic",
    "Distribution",
    "DoublyStochasticArrivals",
    "Exponential",
    "FATE_CODES",
    "FleetConfig",
    "GOOGLE_JOB_LENGTH",
    "GOOGLE_PRIORITY_JOB_WEIGHTS",
    "GOOGLE_TASK_LENGTH",
    "GRID_PRESETS",
    "GoogleConfig",
    "GridHostConfig",
    "GridSystemPreset",
    "HOUR",
    "HyperExponential",
    "LogNormal",
    "Mixture",
    "PoissonArrivals",
    "TaskRequests",
    "Uniform",
    "cv_for_fairness",
    "diurnal_profile",
    "generate_all_grids",
    "generate_google_jobs",
    "generate_google_trace",
    "generate_grid_host_series",
    "generate_grid_jobs",
    "generate_machines",
    "generate_task_requests",
    "generate_task_requests_chunked",
    "iter_task_requests",
    "concat_task_requests",
    "grid_preset",
]
