"""Usage-level analyses: snapshots and unchanged-level durations.

Covers Fig. 10 (load-level snapshot of sampled machines over time) and
Tables II-III (statistics of how long CPU/memory stay in the same
one-fifth usage level), plus the usage-sample pools behind the
mass-count disparity of Figs. 11-12.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core import kernels
from ..core.masscount import MassCount, mass_count
from ..core.segments import DEFAULT_USAGE_LEVELS, discretize, level_durations
from .series import MachineLoadSeries

__all__ = [
    "LevelSnapshot",
    "level_snapshot",
    "LevelDurationStats",
    "duration_stats_by_level",
    "pooled_level_durations",
    "usage_mass_count",
]


@dataclass(frozen=True)
class LevelSnapshot:
    """Discretized load levels of several machines over time (Fig. 10)."""

    machine_ids: np.ndarray
    times: np.ndarray
    levels: np.ndarray  # shape (num_machines, num_times), int level codes
    edges: np.ndarray

    @property
    def num_machines(self) -> int:
        return len(self.machine_ids)

    def level_occupancy(self) -> np.ndarray:
        """Fraction of (machine, time) cells per level."""
        n_levels = len(self.edges) - 1
        counts = np.bincount(self.levels.ravel(), minlength=n_levels)
        return counts / self.levels.size


def level_snapshot(
    series: dict[int, MachineLoadSeries],
    attribute: str = "cpu",
    num_machines: int = 50,
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
    seed: int = 0,
) -> LevelSnapshot:
    """Discretized relative-usage matrix for randomly sampled machines."""
    if not series:
        raise ValueError("series is empty")
    rng = np.random.default_rng(seed)
    ids = np.asarray(sorted(series))
    if num_machines < len(ids):
        ids = np.sort(rng.choice(ids, size=num_machines, replace=False))
    rows = []
    times = None
    for mid in ids:
        s = series[int(mid)]
        if times is None:
            times = s.times
        elif len(s.times) != len(times):
            raise ValueError("machines have unequal sample counts")
        rows.append(discretize(s.relative(attribute), edges))
    return LevelSnapshot(
        machine_ids=ids,
        times=np.asarray(times),
        levels=np.vstack(rows),
        edges=np.asarray(edges),
    )


@dataclass(frozen=True)
class LevelDurationStats:
    """Tables II/III row: statistics of unchanged-level durations."""

    level: int
    interval: str
    count: int
    avg_minutes: float
    max_minutes: float
    joint_ratio: tuple[float, float]
    mm_distance_minutes: float


def pooled_level_durations(
    series: dict[int, MachineLoadSeries],
    attribute: str = "cpu",
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
) -> dict[int, np.ndarray]:
    """Unchanged-level durations pooled over all machines.

    Runs the one-pass run-length kernel over all machines' concatenated
    series — bit-identical to the per-machine scalar loop
    (:func:`_pooled_level_durations_scalar`), which is kept as the
    golden reference.
    """
    n_levels = len(np.asarray(edges)) - 1
    if not series:
        return {lvl: np.empty(0) for lvl in range(n_levels)}
    pool = list(series.values())
    times = np.concatenate([s.times for s in pool])
    lengths = np.asarray([len(s) for s in pool], dtype=np.int64)
    # One pooled divide-and-clip instead of a relative() call per
    # machine; dividing each element by its own machine's scalar
    # capacity is the identical float64 operation either way.
    caps = np.repeat(
        np.asarray([s.capacity_for(attribute) for s in pool]), lengths
    )
    values = np.clip(
        np.concatenate([s.absolute(attribute) for s in pool]) / caps, 0.0, 1.0
    )
    return kernels.pooled_level_durations(times, values, lengths, edges)


def _pooled_level_durations_scalar(
    series: dict[int, MachineLoadSeries],
    attribute: str = "cpu",
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
) -> dict[int, np.ndarray]:
    """Golden scalar reference: segment one machine at a time."""
    n_levels = len(np.asarray(edges)) - 1
    pools: dict[int, list[np.ndarray]] = {lvl: [] for lvl in range(n_levels)}
    for s in series.values():
        per_machine = level_durations(s.times, s.relative(attribute), edges)
        for lvl, durations in per_machine.items():
            if durations.size:
                pools[lvl].append(durations)
    return {
        lvl: (np.concatenate(chunks) if chunks else np.empty(0))
        for lvl, chunks in pools.items()
    }


def duration_stats_by_level(
    pooled: dict[int, np.ndarray],
    edges: np.ndarray = DEFAULT_USAGE_LEVELS,
) -> list[LevelDurationStats]:
    """Summarize pooled durations into Tables II/III rows."""
    edges = np.asarray(edges)
    rows = []
    for lvl, durations in sorted(pooled.items()):
        interval = f"[{edges[lvl]:g},{edges[lvl + 1]:g}]"
        if durations.size == 0:
            rows.append(
                LevelDurationStats(lvl, interval, 0, 0.0, 0.0, (0.0, 0.0), 0.0)
            )
            continue
        mc = mass_count(durations)
        rows.append(
            LevelDurationStats(
                level=lvl,
                interval=interval,
                count=int(durations.size),
                avg_minutes=float(durations.mean() / 60.0),
                max_minutes=float(durations.max() / 60.0),
                joint_ratio=mc.joint_ratio,
                mm_distance_minutes=mc.mm_distance / 60.0,
            )
        )
    return rows


def usage_mass_count(
    series: dict[int, MachineLoadSeries], attribute: str = "cpu"
) -> MassCount:
    """Mass-count disparity of pooled relative usage (Figs. 11-12).

    Zero samples carry no mass and are dropped (mass-count requires a
    positive total; an all-idle pool raises).
    """
    pool = np.concatenate([s.relative(attribute) for s in series.values()])
    pool = pool[pool > 0]
    if pool.size == 0:
        raise ValueError("all usage samples are zero")
    return mass_count(pool)
