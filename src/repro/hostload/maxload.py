"""Maximum host load per machine, grouped by capacity (Fig. 7).

The paper estimates each machine's usable capacity as the maximum
resource usage observed over the trace's lifetime, then plots the
distribution of these maxima per capacity group for CPU, consumed
memory, assigned memory and page cache.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.ecdf import binned_pdf
from .series import MachineLoadSeries

__all__ = ["MaxLoadDistribution", "max_load_by_capacity", "max_load_pdf"]

_CAPACITY_ATTR = {
    "cpu": "cpu_capacity",
    "mem": "mem_capacity",
    "mem_assigned": "mem_capacity",
    "page_cache": "page_capacity",
}


@dataclass(frozen=True)
class MaxLoadDistribution:
    """Max-load sample of one (attribute, capacity group)."""

    attribute: str
    capacity: float
    max_loads: np.ndarray

    @property
    def num_machines(self) -> int:
        return len(self.max_loads)

    def fraction_at_capacity(self, tolerance: float = 0.02) -> float:
        """Share of machines whose max load reaches their capacity.

        Fig. 7(a): >80%/70% of low/middle-CPU machines max out.
        """
        if self.num_machines == 0:
            return 0.0
        return float(
            np.count_nonzero(self.max_loads >= self.capacity * (1 - tolerance))
            / self.num_machines
        )

    def mean_relative(self) -> float:
        """Mean max load as a fraction of capacity (~0.8 for memory)."""
        if self.num_machines == 0:
            return 0.0
        return float(self.max_loads.mean() / self.capacity)


def max_load_by_capacity(
    series: dict[int, MachineLoadSeries], attribute: str = "cpu"
) -> dict[float, MaxLoadDistribution]:
    """Group per-machine max loads by the machines' capacity level."""
    if attribute not in _CAPACITY_ATTR:
        raise ValueError(
            f"unknown attribute {attribute!r}; choose from "
            f"{sorted(_CAPACITY_ATTR)}"
        )
    cap_attr = _CAPACITY_ATTR[attribute]
    buckets: dict[float, list[float]] = {}
    for s in series.values():
        cap = round(float(getattr(s, cap_attr)), 6)
        buckets.setdefault(cap, []).append(s.max_load(attribute))
    return {
        cap: MaxLoadDistribution(
            attribute=attribute,
            capacity=cap,
            max_loads=np.asarray(values),
        )
        for cap, values in sorted(buckets.items())
    }


def max_load_pdf(
    dist: MaxLoadDistribution, bins: int = 25
) -> tuple[np.ndarray, np.ndarray]:
    """Binned PDF of the max loads over [0, 1] (Fig. 7's curves)."""
    return binned_pdf(dist.max_loads, bins=bins, range_=(0.0, 1.0))
