"""Host-load mode discovery.

The paper's introduction motivates characterization with exactly this:
"by characterizing common modes of host load within a data center, a
job scheduler can use this information for task allocation and improve
utilization". Fig. 10's narration also sketches the modes by eye —
always-light machines, always-heavy ones, two-level alternators and
irregular ones. This module extracts such modes automatically:
featurize every machine's load series and cluster with (pure-NumPy)
k-means, seeded by k-means++.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.noise import autocorrelation
from .series import MachineLoadSeries

__all__ = ["LoadModes", "machine_features", "kmeans", "discover_modes", "FEATURE_NAMES"]

#: Feature vector layout produced by :func:`machine_features`.
FEATURE_NAMES = (
    "cpu_mean",
    "cpu_std",
    "mem_mean",
    "mem_std",
    "cpu_autocorr",
    "mem_autocorr",
)


def machine_features(series: MachineLoadSeries) -> np.ndarray:
    """Shape descriptors of one machine's relative load."""
    cpu = series.relative("cpu")
    mem = series.relative("mem")
    if cpu.size < 3:
        raise ValueError("series too short to featurize")
    return np.array(
        [
            cpu.mean(),
            cpu.std(),
            mem.mean(),
            mem.std(),
            autocorrelation(cpu),
            autocorrelation(mem),
        ]
    )


def kmeans(
    points: np.ndarray,
    k: int,
    rng: np.random.Generator,
    max_iter: int = 100,
) -> tuple[np.ndarray, np.ndarray]:
    """K-means with k-means++ seeding. Returns (labels, centroids)."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[0] < 1:
        raise ValueError("points must be a non-empty 2-D array")
    n = points.shape[0]
    if not 1 <= k <= n:
        raise ValueError("k must be in 1..num_points")

    # k-means++ seeding.
    centroids = np.empty((k, points.shape[1]))
    centroids[0] = points[rng.integers(0, n)]
    for j in range(1, k):
        d2 = np.min(
            ((points[:, None, :] - centroids[None, :j, :]) ** 2).sum(-1),
            axis=1,
        )
        total = d2.sum()
        if total <= 0:
            centroids[j:] = points[rng.integers(0, n, k - j)]
            break
        probs = d2 / total
        centroids[j] = points[rng.choice(n, p=probs)]

    labels = np.zeros(n, dtype=np.int64)
    for _ in range(max_iter):
        dist = ((points[:, None, :] - centroids[None, :, :]) ** 2).sum(-1)
        new_labels = dist.argmin(axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = points[labels == j]
            if len(members):
                centroids[j] = members.mean(axis=0)
    return labels, centroids


@dataclass(frozen=True)
class LoadModes:
    """Discovered host-load modes."""

    machine_ids: np.ndarray
    labels: np.ndarray
    centroids: np.ndarray  # (k, num_features), in standardized units
    centroids_raw: np.ndarray  # (k, num_features), in original units
    feature_names: tuple[str, ...]

    @property
    def num_modes(self) -> int:
        return self.centroids.shape[0]

    def members(self, mode: int) -> np.ndarray:
        """Machine ids belonging to one mode."""
        return self.machine_ids[self.labels == mode]

    def mode_sizes(self) -> np.ndarray:
        return np.bincount(self.labels, minlength=self.num_modes)

    def describe(self) -> list[dict[str, float]]:
        """Per-mode raw-feature centroids as dicts (for reports)."""
        out = []
        for j in range(self.num_modes):
            row = {"size": int(self.mode_sizes()[j])}
            row.update(
                {
                    name: float(v)
                    for name, v in zip(self.feature_names, self.centroids_raw[j])
                }
            )
            out.append(row)
        return out


def discover_modes(
    series: dict[int, MachineLoadSeries],
    k: int = 4,
    seed: int = 0,
) -> LoadModes:
    """Cluster a fleet's machines into ``k`` load modes.

    Features are standardized (zero mean, unit variance) before
    clustering so the mean levels and the temporal statistics weigh
    comparably.
    """
    if not series:
        raise ValueError("series is empty")
    ids = np.asarray(sorted(series))
    features = np.vstack([machine_features(series[int(i)]) for i in ids])
    mu = features.mean(axis=0)
    sd = features.std(axis=0)
    sd[sd == 0] = 1.0
    standardized = (features - mu) / sd
    rng = np.random.default_rng(seed)
    labels, centroids = kmeans(standardized, k, rng)
    return LoadModes(
        machine_ids=ids,
        labels=labels,
        centroids=centroids,
        centroids_raw=centroids * sd + mu,
        feature_names=FEATURE_NAMES,
    )
