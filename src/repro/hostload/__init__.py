"""Host-load reconstruction and analysis (the paper's Section IV)."""

from .levels import (
    LevelDurationStats,
    LevelSnapshot,
    duration_stats_by_level,
    level_snapshot,
    pooled_level_durations,
    usage_mass_count,
)
from .maxload import MaxLoadDistribution, max_load_by_capacity, max_load_pdf
from .modes import (
    FEATURE_NAMES,
    LoadModes,
    discover_modes,
    kmeans,
    machine_features,
)
from .priority import band_share, band_usage, idle_fraction_for_band
from .queues import (
    QueueStateSeries,
    machine_queue_state,
    running_state_durations,
    task_spans,
)
from .series import (
    MachineLoadSeries,
    all_machine_series,
    grouped_machine_series,
    machine_series,
)
from .stream import USAGE_GRID_SCHEMA, UsageGridAccumulator

__all__ = [
    "USAGE_GRID_SCHEMA",
    "UsageGridAccumulator",
    "grouped_machine_series",
    "FEATURE_NAMES",
    "LevelDurationStats",
    "LevelSnapshot",
    "LoadModes",
    "MachineLoadSeries",
    "MaxLoadDistribution",
    "QueueStateSeries",
    "all_machine_series",
    "band_share",
    "discover_modes",
    "band_usage",
    "duration_stats_by_level",
    "idle_fraction_for_band",
    "kmeans",
    "machine_features",
    "level_snapshot",
    "machine_queue_state",
    "machine_series",
    "max_load_by_capacity",
    "max_load_pdf",
    "pooled_level_durations",
    "running_state_durations",
    "task_spans",
    "usage_mass_count",
]
