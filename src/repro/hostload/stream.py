"""Streaming machine-usage accumulation for paper-scale traces.

The event-driven simulator resolves contention exactly but holds every
task object in memory; at the paper's full scale (25M tasks on 12,500
machines over a month) the host-load characterization only needs the
per-machine per-tick usage sums. :class:`UsageGridAccumulator` computes
exactly those with ``np.add.at`` scatter-adds over a machine-major
``(num_machines, num_ticks)`` grid, consuming task-request chunks from
:func:`repro.synth.google_model.iter_task_requests` one at a time —
peak memory is the grid plus one chunk, independent of task count.

Layering note: ``hostload`` sits below ``sim``, so the usage schema is
declared here as :data:`USAGE_GRID_SCHEMA`; a test cross-checks it
against ``repro.sim.monitor.MACHINE_USAGE_SCHEMA`` column for column.
"""

from __future__ import annotations

import numpy as np

from ..core.table import Table

__all__ = ["USAGE_GRID_SCHEMA", "UsageGridAccumulator"]

#: Machine-level usage samples, one row per machine per tick — the same
#: shape the simulator's monitor emits (see the layering note above).
USAGE_GRID_SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.float64),
    "machine_id": np.dtype(np.int64),
    "cpu_usage": np.dtype(np.float64),
    "mem_usage": np.dtype(np.float64),
    "mem_assigned": np.dtype(np.float64),
    "page_cache": np.dtype(np.float64),
    "cpu_mid_high": np.dtype(np.float64),
    "cpu_high": np.dtype(np.float64),
    "mem_mid_high": np.dtype(np.float64),
    "mem_high": np.dtype(np.float64),
    "n_running": np.dtype(np.int64),
}

#: Float usage attributes a grid can track, in schema order.
_FLOAT_ATTRIBUTES = (
    "cpu_usage",
    "mem_usage",
    "mem_assigned",
    "page_cache",
    "cpu_mid_high",
    "cpu_high",
    "mem_mid_high",
    "mem_high",
)

#: Capacity column of the machines table that normalizes each attribute.
_CAPACITY_OF = {
    "cpu_usage": "cpu_capacity",
    "cpu_mid_high": "cpu_capacity",
    "cpu_high": "cpu_capacity",
    "mem_usage": "mem_capacity",
    "mem_assigned": "mem_capacity",
    "mem_mid_high": "mem_capacity",
    "mem_high": "mem_capacity",
    "page_cache": "page_cache_capacity",
}


class UsageGridAccumulator:
    """Scatter-add task demand onto a (machine, tick) usage grid.

    Ticks sit at ``k * period`` for ``k = 0 .. floor(horizon/period)``
    (the simulator monitor's tick set); a task occupies every tick with
    ``start <= tick_time < end``. At full attribute coverage a paper-
    scale grid is large, so ``attributes`` can restrict tracking to the
    columns an analysis needs (e.g. ``("cpu_usage", "mem_usage")``).
    """

    def __init__(
        self,
        machines: Table,
        horizon: float,
        period: float = 300.0,
        attributes: tuple[str, ...] | None = None,
    ) -> None:
        if horizon <= 0:
            raise ValueError("horizon must be positive")
        if period <= 0:
            raise ValueError("period must be positive")
        self.machines = machines
        self.horizon = float(horizon)
        self.period = float(period)
        self.attributes = (
            _FLOAT_ATTRIBUTES if attributes is None else tuple(attributes)
        )
        unknown = set(self.attributes) - set(_FLOAT_ATTRIBUTES)
        if unknown:
            raise ValueError(f"unknown attributes: {sorted(unknown)}")
        self.machine_ids = np.asarray(machines["machine_id"], dtype=np.int64)
        self.num_machines = len(self.machine_ids)
        if self.num_machines == 0:
            raise ValueError("machines table is empty")
        self.num_ticks = int(np.floor(self.horizon / self.period)) + 1
        shape = (self.num_machines, self.num_ticks)
        self._grids = {name: np.zeros(shape) for name in self.attributes}
        self._n_running = np.zeros(shape, dtype=np.int64)
        self._tick_times = np.arange(self.num_ticks) * self.period

    # -- accumulation --------------------------------------------------------

    def add_tasks(
        self,
        slots: np.ndarray,
        start: np.ndarray,
        end: np.ndarray,
        *,
        cpu: np.ndarray | None = None,
        mem: np.ndarray | None = None,
        mem_assigned: np.ndarray | None = None,
        page_cache: np.ndarray | None = None,
        band: np.ndarray | None = None,
    ) -> None:
        """Add one chunk of placed tasks to the grid.

        ``slots`` are row indices into the machines table (not machine
        ids). Only the demand arrays required by the tracked attributes
        must be provided; ``band`` (priority band codes 0/1/2) is
        required only when a ``*_mid_high``/``*_high`` split is tracked.
        """
        slots = np.asarray(slots, dtype=np.int64)
        start = np.asarray(start, dtype=np.float64)
        end = np.asarray(end, dtype=np.float64)
        if not (slots.shape == start.shape == end.shape) or slots.ndim != 1:
            raise ValueError("slots/start/end must be 1-D with equal shape")
        if slots.size and (slots.min() < 0 or slots.max() >= self.num_machines):
            raise ValueError("slots out of range")
        demand = {
            "cpu_usage": cpu,
            "mem_usage": mem,
            "mem_assigned": mem_assigned,
            "page_cache": page_cache,
            "cpu_mid_high": cpu,
            "cpu_high": cpu,
            "mem_mid_high": mem,
            "mem_high": mem,
        }
        needs_band = any(a.endswith(("_mid_high", "_high")) for a in self.attributes)
        for name in self.attributes:
            if demand[name] is None:
                raise ValueError(f"attribute {name!r} is tracked but its demand array is missing")
        if needs_band and band is None:
            raise ValueError("band is required for priority-split attributes")

        k0 = np.maximum(np.ceil(start / self.period).astype(np.int64), 0)
        k1 = np.minimum(
            np.ceil(end / self.period).astype(np.int64), self.num_ticks
        )
        counts = np.maximum(k1 - k0, 0)
        total = int(counts.sum())
        if total == 0:
            return
        task_of = np.repeat(np.arange(counts.size), counts)
        offsets = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        # Machine-major flat index: all of one machine's ticks are
        # contiguous, so per-machine series are views (see pool()).
        flat = slots[task_of] * self.num_ticks + k0[task_of] + offsets

        band_x = None if band is None else np.asarray(band)[task_of]
        for name in self.attributes:
            values = np.asarray(demand[name], dtype=np.float64)[task_of]
            if name.endswith("_mid_high"):
                mask = band_x >= 1
                np.add.at(self._grids[name].ravel(), flat[mask], values[mask])
            elif name.endswith("_high"):
                mask = band_x == 2
                np.add.at(self._grids[name].ravel(), flat[mask], values[mask])
            else:
                np.add.at(self._grids[name].ravel(), flat, values)
        np.add.at(self._n_running.ravel(), flat, 1)

    def merge(self, other: "UsageGridAccumulator") -> "UsageGridAccumulator":
        """Add another accumulator's grids elementwise (same config).

        Lets disjoint task-chunk ranges accumulate on separate grids
        (e.g. one per map-reduce worker) and combine. The ``n_running``
        count grid merges exactly (integer addition); the float usage
        grids merge deterministically for a *fixed* partition of tasks
        into grids, but partial float sums are not bit-identical across
        different partitions — callers needing byte-stable output must
        keep the (chunking, jobs) layout fixed, as the experiment
        backends do by using only exact accumulators.
        """
        if (
            other.num_machines != self.num_machines
            or other.num_ticks != self.num_ticks
            or other.period != self.period
            or other.attributes != self.attributes
        ):
            raise ValueError("cannot merge accumulators with different config")
        for name in self.attributes:
            self._grids[name] += other._grids[name]
        self._n_running += other._n_running
        return self

    # -- outputs -------------------------------------------------------------

    def grid(self, attribute: str) -> np.ndarray:
        """The raw ``(num_machines, num_ticks)`` sum for one attribute."""
        if attribute == "n_running":
            return self._n_running
        if attribute not in self._grids:
            raise KeyError(f"attribute {attribute!r} not tracked")
        return self._grids[attribute]

    def pool(self, attribute: str) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(times, values, lengths)`` for the pooled run-length kernel.

        Values are relative load levels (usage over the machine's
        capacity, clipped to [0, 1]), machine-major — exactly the input
        :func:`repro.core.kernels.pooled_level_durations` wants, without
        building per-machine series objects or a row-expanded table.
        """
        grid = self.grid(attribute)
        cap = np.asarray(
            self.machines[_CAPACITY_OF[attribute]], dtype=np.float64
        )
        values = np.clip(grid / cap[:, None], 0.0, 1.0).reshape(-1)
        times = np.tile(self._tick_times, self.num_machines)
        lengths = np.full(self.num_machines, self.num_ticks, dtype=np.int64)
        return times, values, lengths

    def table(self) -> Table:
        """Row-expanded usage table (one row per machine per tick).

        Column set and dtypes follow :data:`USAGE_GRID_SCHEMA`, with
        untracked attributes omitted (and the schema reduced to match).
        Tick-major row order — identical to the simulator monitor's
        table layout — so existing per-machine extractors apply.
        """
        columns: dict[str, np.ndarray] = {
            "time": np.repeat(self._tick_times, self.num_machines),
            "machine_id": np.tile(self.machine_ids, self.num_ticks),
        }
        schema = {
            "time": USAGE_GRID_SCHEMA["time"],
            "machine_id": USAGE_GRID_SCHEMA["machine_id"],
        }
        for name in self.attributes:
            columns[name] = self._grids[name].T.reshape(-1)
            schema[name] = USAGE_GRID_SCHEMA[name]
        columns["n_running"] = self._n_running.T.reshape(-1)
        schema["n_running"] = USAGE_GRID_SCHEMA["n_running"]
        return Table(columns, schema=schema)
