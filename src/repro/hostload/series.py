"""Per-machine load time series extracted from monitor output.

A :class:`MachineLoadSeries` is the unit of analysis for Section IV:
time-aligned CPU/memory/page-cache samples of one machine, in both
absolute (largest-machine) units and relative (per-capacity) load
levels, with the mid+high and high priority splits the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.kernels import grouped_sort_split
from ..core.table import Table

__all__ = [
    "MachineLoadSeries",
    "machine_series",
    "all_machine_series",
    "grouped_machine_series",
]


@dataclass(frozen=True)
class MachineLoadSeries:
    """Sampled load of a single machine (absolute, normalized units)."""

    machine_id: int
    cpu_capacity: float
    mem_capacity: float
    page_capacity: float
    times: np.ndarray
    cpu: np.ndarray
    mem: np.ndarray
    mem_assigned: np.ndarray
    page_cache: np.ndarray
    cpu_mid_high: np.ndarray
    cpu_high: np.ndarray
    mem_mid_high: np.ndarray
    mem_high: np.ndarray
    n_running: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    # -- relative (per-capacity) views ----------------------------------------

    def capacity_for(self, attribute: str) -> float:
        """Capacity normalizing one usage attribute."""
        capacity = {
            "cpu": self.cpu_capacity,
            "cpu_mid_high": self.cpu_capacity,
            "cpu_high": self.cpu_capacity,
            "mem": self.mem_capacity,
            "mem_assigned": self.mem_capacity,
            "mem_mid_high": self.mem_capacity,
            "mem_high": self.mem_capacity,
            "page_cache": self.page_capacity,
        }
        try:
            return capacity[attribute]
        except KeyError:
            raise ValueError(
                f"unknown attribute {attribute!r}; choose from {sorted(capacity)}"
            ) from None

    def absolute(self, attribute: str) -> np.ndarray:
        """The raw sampled series of one usage attribute."""
        try:
            return {
                "cpu": self.cpu,
                "cpu_mid_high": self.cpu_mid_high,
                "cpu_high": self.cpu_high,
                "mem": self.mem,
                "mem_assigned": self.mem_assigned,
                "mem_mid_high": self.mem_mid_high,
                "mem_high": self.mem_high,
                "page_cache": self.page_cache,
            }[attribute]
        except KeyError:
            raise ValueError(f"unknown attribute {attribute!r}") from None

    def relative(self, attribute: str = "cpu") -> np.ndarray:
        """Load level in [0, 1]: usage over this machine's capacity.

        ``attribute`` is one of ``cpu``, ``mem``, ``mem_assigned``,
        ``page_cache``, ``cpu_mid_high``, ``cpu_high``,
        ``mem_mid_high``, ``mem_high``.
        """
        cap = self.capacity_for(attribute)
        return np.clip(self.absolute(attribute) / cap, 0.0, 1.0)

    def max_load(self, attribute: str = "cpu") -> float:
        """Maximum absolute load over the trace (Fig. 7's statistic)."""
        values = {
            "cpu": self.cpu,
            "mem": self.mem,
            "mem_assigned": self.mem_assigned,
            "page_cache": self.page_cache,
        }
        try:
            arr = values[attribute]
        except KeyError:
            raise ValueError(
                f"unknown attribute {attribute!r}; choose from {sorted(values)}"
            ) from None
        return float(arr.max()) if arr.size else 0.0


def machine_series(
    machine_usage: Table, machines: Table, machine_id: int
) -> MachineLoadSeries:
    """Extract one machine's series from the monitor's usage table."""
    mask = machine_usage["machine_id"] == machine_id
    if not mask.any():
        raise KeyError(f"machine {machine_id} has no usage samples")
    sub = machine_usage.select(mask).sort_by("time")
    midx = np.flatnonzero(machines["machine_id"] == machine_id)
    if midx.size == 0:
        raise KeyError(f"machine {machine_id} not in machine table")
    i = int(midx[0])
    return MachineLoadSeries(
        machine_id=machine_id,
        cpu_capacity=float(machines["cpu_capacity"][i]),
        mem_capacity=float(machines["mem_capacity"][i]),
        page_capacity=float(machines["page_cache_capacity"][i]),
        times=np.asarray(sub["time"]),
        cpu=np.asarray(sub["cpu_usage"]),
        mem=np.asarray(sub["mem_usage"]),
        mem_assigned=np.asarray(sub["mem_assigned"]),
        page_cache=np.asarray(sub["page_cache"]),
        cpu_mid_high=np.asarray(sub["cpu_mid_high"]),
        cpu_high=np.asarray(sub["cpu_high"]),
        mem_mid_high=np.asarray(sub["mem_mid_high"]),
        mem_high=np.asarray(sub["mem_high"]),
        n_running=np.asarray(sub["n_running"]),
    )


def all_machine_series(
    machine_usage: Table, machines: Table
) -> dict[int, MachineLoadSeries]:
    """Series for every machine (thin wrapper over the grouped kernel)."""
    return grouped_machine_series(machine_usage, machines)


def grouped_machine_series(
    machine_usage: Table, machines: Table
) -> dict[int, MachineLoadSeries]:
    """Every machine's series via one ``argsort``+``np.split`` pass.

    One stable lexsort by (machine, time) replaces the per-machine
    filter-and-sort scan (which was O(machines x rows)); per-machine
    columns are views into the gathered arrays. The result dict is in
    machines-table order and bit-identical to the scalar path
    (:func:`_all_machine_series_scalar`).
    """
    unique_ids, cols = grouped_sort_split(
        machine_usage, "machine_id", within="time"
    )
    slot_of = {int(mid): i for i, mid in enumerate(unique_ids)}
    out: dict[int, MachineLoadSeries] = {}
    for i, machine_id in enumerate(machines["machine_id"]):
        mid = int(machine_id)
        slot = slot_of.get(mid)
        if slot is None or mid in out:
            continue
        out[mid] = MachineLoadSeries(
            machine_id=mid,
            cpu_capacity=float(machines["cpu_capacity"][i]),
            mem_capacity=float(machines["mem_capacity"][i]),
            page_capacity=float(machines["page_cache_capacity"][i]),
            times=cols["time"][slot],
            cpu=cols["cpu_usage"][slot],
            mem=cols["mem_usage"][slot],
            mem_assigned=cols["mem_assigned"][slot],
            page_cache=cols["page_cache"][slot],
            cpu_mid_high=cols["cpu_mid_high"][slot],
            cpu_high=cols["cpu_high"][slot],
            mem_mid_high=cols["mem_mid_high"][slot],
            mem_high=cols["mem_high"][slot],
            n_running=cols["n_running"][slot],
        )
    return out


def _all_machine_series_scalar(
    machine_usage: Table, machines: Table
) -> dict[int, MachineLoadSeries]:
    """Golden scalar reference: filter the full table once per machine.

    O(machines x rows) — kept only so golden tests and ``repro-bench``
    can compare the grouped kernel against the original path.
    """
    out: dict[int, MachineLoadSeries] = {}
    for machine_id in machines["machine_id"]:  # reprolint: disable=REP502
        mid = int(machine_id)
        if not (machine_usage["machine_id"] == mid).any():
            continue
        out[mid] = machine_series(machine_usage, machines, mid)
    return out
