"""Per-machine load time series extracted from monitor output.

A :class:`MachineLoadSeries` is the unit of analysis for Section IV:
time-aligned CPU/memory/page-cache samples of one machine, in both
absolute (largest-machine) units and relative (per-capacity) load
levels, with the mid+high and high priority splits the paper uses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..traces.table import Table

__all__ = ["MachineLoadSeries", "machine_series", "all_machine_series"]


@dataclass(frozen=True)
class MachineLoadSeries:
    """Sampled load of a single machine (absolute, normalized units)."""

    machine_id: int
    cpu_capacity: float
    mem_capacity: float
    page_capacity: float
    times: np.ndarray
    cpu: np.ndarray
    mem: np.ndarray
    mem_assigned: np.ndarray
    page_cache: np.ndarray
    cpu_mid_high: np.ndarray
    cpu_high: np.ndarray
    mem_mid_high: np.ndarray
    mem_high: np.ndarray
    n_running: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    # -- relative (per-capacity) views ----------------------------------------

    def relative(self, attribute: str = "cpu") -> np.ndarray:
        """Load level in [0, 1]: usage over this machine's capacity.

        ``attribute`` is one of ``cpu``, ``mem``, ``mem_assigned``,
        ``page_cache``, ``cpu_mid_high``, ``cpu_high``,
        ``mem_mid_high``, ``mem_high``.
        """
        capacity = {
            "cpu": self.cpu_capacity,
            "cpu_mid_high": self.cpu_capacity,
            "cpu_high": self.cpu_capacity,
            "mem": self.mem_capacity,
            "mem_assigned": self.mem_capacity,
            "mem_mid_high": self.mem_capacity,
            "mem_high": self.mem_capacity,
            "page_cache": self.page_capacity,
        }
        try:
            cap = capacity[attribute]
        except KeyError:
            raise ValueError(
                f"unknown attribute {attribute!r}; choose from {sorted(capacity)}"
            ) from None
        values = {
            "cpu": self.cpu,
            "cpu_mid_high": self.cpu_mid_high,
            "cpu_high": self.cpu_high,
            "mem": self.mem,
            "mem_assigned": self.mem_assigned,
            "mem_mid_high": self.mem_mid_high,
            "mem_high": self.mem_high,
            "page_cache": self.page_cache,
        }[attribute]
        return np.clip(values / cap, 0.0, 1.0)

    def max_load(self, attribute: str = "cpu") -> float:
        """Maximum absolute load over the trace (Fig. 7's statistic)."""
        values = {
            "cpu": self.cpu,
            "mem": self.mem,
            "mem_assigned": self.mem_assigned,
            "page_cache": self.page_cache,
        }
        try:
            arr = values[attribute]
        except KeyError:
            raise ValueError(
                f"unknown attribute {attribute!r}; choose from {sorted(values)}"
            ) from None
        return float(arr.max()) if arr.size else 0.0


def machine_series(
    machine_usage: Table, machines: Table, machine_id: int
) -> MachineLoadSeries:
    """Extract one machine's series from the monitor's usage table."""
    mask = machine_usage["machine_id"] == machine_id
    if not mask.any():
        raise KeyError(f"machine {machine_id} has no usage samples")
    sub = machine_usage.select(mask).sort_by("time")
    midx = np.flatnonzero(machines["machine_id"] == machine_id)
    if midx.size == 0:
        raise KeyError(f"machine {machine_id} not in machine table")
    i = int(midx[0])
    return MachineLoadSeries(
        machine_id=machine_id,
        cpu_capacity=float(machines["cpu_capacity"][i]),
        mem_capacity=float(machines["mem_capacity"][i]),
        page_capacity=float(machines["page_cache_capacity"][i]),
        times=np.asarray(sub["time"]),
        cpu=np.asarray(sub["cpu_usage"]),
        mem=np.asarray(sub["mem_usage"]),
        mem_assigned=np.asarray(sub["mem_assigned"]),
        page_cache=np.asarray(sub["page_cache"]),
        cpu_mid_high=np.asarray(sub["cpu_mid_high"]),
        cpu_high=np.asarray(sub["cpu_high"]),
        mem_mid_high=np.asarray(sub["mem_mid_high"]),
        mem_high=np.asarray(sub["mem_high"]),
        n_running=np.asarray(sub["n_running"]),
    )


def all_machine_series(
    machine_usage: Table, machines: Table
) -> dict[int, MachineLoadSeries]:
    """Series for every machine, via one grouped pass over the table."""
    groups = machine_usage.group_indices("machine_id")
    out: dict[int, MachineLoadSeries] = {}
    for machine_id in machines["machine_id"]:
        mid = int(machine_id)
        if mid not in groups:
            continue
        sub = machine_usage.select(groups[mid]).sort_by("time")
        i = int(np.flatnonzero(machines["machine_id"] == mid)[0])
        out[mid] = MachineLoadSeries(
            machine_id=mid,
            cpu_capacity=float(machines["cpu_capacity"][i]),
            mem_capacity=float(machines["mem_capacity"][i]),
            page_capacity=float(machines["page_cache_capacity"][i]),
            times=np.asarray(sub["time"]),
            cpu=np.asarray(sub["cpu_usage"]),
            mem=np.asarray(sub["mem_usage"]),
            mem_assigned=np.asarray(sub["mem_assigned"]),
            page_cache=np.asarray(sub["page_cache"]),
            cpu_mid_high=np.asarray(sub["cpu_mid_high"]),
            cpu_high=np.asarray(sub["cpu_high"]),
            mem_mid_high=np.asarray(sub["mem_mid_high"]),
            mem_high=np.asarray(sub["mem_high"]),
            n_running=np.asarray(sub["n_running"]),
        )
    return out
