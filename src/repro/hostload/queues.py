"""Queue-state reconstruction from a task-event log (Figs. 8-9).

A machine's queuing state is the number of tasks in each lifecycle
state over time. The running count comes from SCHEDULE/terminal events
on that machine; pending and completed counts are cluster-level (tasks
wait in the scheduler, not on a machine).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.segments import QUEUE_STATE_LEVELS, level_durations
from ..traces.schema import TaskEvent
from ..core.table import Table

__all__ = ["QueueStateSeries", "machine_queue_state", "running_state_durations", "task_spans"]

_TERMINAL = (
    int(TaskEvent.EVICT),
    int(TaskEvent.FAIL),
    int(TaskEvent.FINISH),
    int(TaskEvent.KILL),
    int(TaskEvent.LOST),
)
_ABNORMAL = (
    int(TaskEvent.EVICT),
    int(TaskEvent.FAIL),
    int(TaskEvent.KILL),
    int(TaskEvent.LOST),
)


@dataclass(frozen=True)
class QueueStateSeries:
    """Step-function counts of task states on one machine.

    ``times`` are event timestamps; each count array holds the value
    *after* the event at the same index (right-continuous steps).
    """

    machine_id: int
    times: np.ndarray
    running: np.ndarray
    finished: np.ndarray
    abnormal: np.ndarray

    def __len__(self) -> int:
        return len(self.times)

    def sample(self, sample_times: np.ndarray, which: str = "running") -> np.ndarray:
        """Evaluate a count at arbitrary times (piecewise-constant)."""
        series = {
            "running": self.running,
            "finished": self.finished,
            "abnormal": self.abnormal,
        }[which]
        sample_times = np.asarray(sample_times, dtype=np.float64)
        idx = np.searchsorted(self.times, sample_times, side="right") - 1
        out = np.where(idx >= 0, series[np.maximum(idx, 0)], 0)
        return out.astype(np.int64)


def machine_queue_state(task_events: Table, machine_id: int) -> QueueStateSeries:
    """Reconstruct running/finished/abnormal counts for one machine."""
    mask = task_events["machine_id"] == machine_id
    sub = task_events.select(mask).sort_by("time")
    if len(sub) == 0:
        raise KeyError(f"machine {machine_id} has no events")
    etype = sub["event_type"]
    delta_run = np.zeros(len(sub), dtype=np.int64)
    delta_run[etype == int(TaskEvent.SCHEDULE)] = 1
    delta_run[np.isin(etype, _TERMINAL)] = -1
    inc_fin = np.isin(etype, _TERMINAL).astype(np.int64)
    inc_abn = np.isin(etype, _ABNORMAL).astype(np.int64)
    return QueueStateSeries(
        machine_id=machine_id,
        times=np.asarray(sub["time"]),
        running=np.cumsum(delta_run),
        finished=np.cumsum(inc_fin),
        abnormal=np.cumsum(inc_abn),
    )


def running_state_durations(
    running_counts: np.ndarray,
    times: np.ndarray,
    edges: np.ndarray = QUEUE_STATE_LEVELS,
) -> dict[int, np.ndarray]:
    """Durations of unchanged running-queue interval (Fig. 9).

    ``running_counts`` sampled at ``times`` are discretized into the
    paper's intervals ([0,9], [10,19], ...) and the run lengths of each
    interval are returned, keyed by interval index.
    """
    return level_durations(times, np.asarray(running_counts, dtype=np.float64), edges)


def task_spans(task_events: Table, machine_id: int) -> Table:
    """(start, end, outcome) of each execution on a machine (Fig. 8a).

    Pairs each SCHEDULE with the next terminal event of the same task
    lineage. Executions still alive at the end of the log get ``end``
    = last event time and outcome = -1.
    """
    sub = task_events.select(task_events["machine_id"] == machine_id).sort_by("time")
    if len(sub) == 0:
        raise KeyError(f"machine {machine_id} has no events")
    etype = sub["event_type"]
    times = sub["time"]
    width = int(sub["task_index"].max()) + 1
    key = sub["job_id"] * width + sub["task_index"]

    starts: list[float] = []
    ends: list[float] = []
    outcome: list[int] = []
    keys: list[int] = []
    open_start: dict[int, float] = {}
    last_time = float(times[-1])
    terminal = set(_TERMINAL)
    for t, e, k in zip(times, etype, key):
        e = int(e)
        k = int(k)
        if e == int(TaskEvent.SCHEDULE):
            open_start[k] = float(t)
        elif e in terminal and k in open_start:
            starts.append(open_start.pop(k))
            ends.append(float(t))
            outcome.append(e)
            keys.append(k)
    for k, s in open_start.items():
        starts.append(s)
        ends.append(last_time)
        outcome.append(-1)
        keys.append(k)
    return Table(
        {
            "task_key": np.asarray(keys, dtype=np.int64),
            "start": np.asarray(starts),
            "end": np.asarray(ends),
            "outcome": np.asarray(outcome, dtype=np.int8),
        }
    )
