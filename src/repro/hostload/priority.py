"""Priority-band views of host load (Sec. III.1, Figs. 10-12).

The paper clusters the 12 priorities into low (1-4), middle (5-8) and
high (9-12) bands and re-evaluates host load restricted to mid+high or
high-only tasks: a machine that looks full may be idle *from the
perspective of* high-priority work, because most usage comes from
preemptible low-priority tasks.
"""

from __future__ import annotations

import numpy as np

from ..traces.schema import PriorityBand
from .series import MachineLoadSeries

__all__ = ["band_usage", "idle_fraction_for_band", "band_share"]

_BAND_COLUMNS = {
    ("cpu", "all"): "cpu",
    ("cpu", "mid_high"): "cpu_mid_high",
    ("cpu", "high"): "cpu_high",
    ("mem", "all"): "mem",
    ("mem", "mid_high"): "mem_mid_high",
    ("mem", "high"): "mem_high",
}


def band_usage(
    series: MachineLoadSeries, attribute: str = "cpu", band: str = "all"
) -> np.ndarray:
    """Relative usage attributable to tasks at or above a band.

    ``band`` is ``all`` (every priority), ``mid_high`` (priority >= 5)
    or ``high`` (priority >= 9).
    """
    try:
        column = _BAND_COLUMNS[(attribute, band)]
    except KeyError:
        raise ValueError(
            f"unsupported (attribute, band) = ({attribute!r}, {band!r}); "
            f"supported: {sorted(_BAND_COLUMNS)}"
        ) from None
    return series.relative(column)


def idle_fraction_for_band(
    series: MachineLoadSeries,
    attribute: str = "cpu",
    band: str = "high",
    threshold: float = 0.2,
) -> float:
    """Fraction of time the machine looks idle w.r.t. a priority band.

    A sample counts as idle when usage from tasks at/above the band
    stays below ``threshold`` of capacity — the paper's notion that a
    busy machine can still be "quite idle" for high-priority work.
    """
    usage = band_usage(series, attribute, band)
    if usage.size == 0:
        return 0.0
    return float(np.count_nonzero(usage < threshold) / usage.size)


def band_share(
    series: dict[int, MachineLoadSeries], attribute: str = "cpu"
) -> dict[str, float]:
    """Cluster-wide mean usage share per exclusive band.

    Returns mean relative usage attributed to low, middle and high
    bands plus the total, averaged over machines and time.
    """
    totals = {band.name.lower(): 0.0 for band in PriorityBand}
    total_all = 0.0
    n = 0
    for s in series.values():
        all_u = band_usage(s, attribute, "all")
        mid_high = band_usage(s, attribute, "mid_high")
        high = band_usage(s, attribute, "high")
        totals["low"] += float((all_u - mid_high).sum())
        totals["middle"] += float((mid_high - high).sum())
        totals["high"] += float(high.sum())
        total_all += float(all_u.sum())
        n += len(all_u)
    if n == 0:
        raise ValueError("no samples")
    out = {k: v / n for k, v in totals.items()}
    out["total"] = total_all / n
    return out
