"""Trace data model: schemas, tables, archive formats and I/O."""

from .convert import grid_jobs_to_job_table, job_interarrival_times
from .google import GoogleTrace, completion_mix, job_lengths, task_lengths
from .gwa import gwa_table, read_gwa, write_gwa
from .io import (
    TraceParseError,
    TraceParseWarning,
    load_trace,
    read_csv,
    save_trace,
    write_csv,
)
from .schema import (
    ABNORMAL_EVENTS,
    GWA_JOB_SCHEMA,
    HIGH_PRIORITIES,
    JOB_TABLE_SCHEMA,
    LOW_PRIORITIES,
    MACHINE_TABLE_SCHEMA,
    MIDDLE_PRIORITIES,
    NUM_PRIORITIES,
    SWF_JOB_SCHEMA,
    TASK_EVENT_SCHEMA,
    TASK_USAGE_SCHEMA,
    TERMINAL_EVENTS,
    PriorityBand,
    TaskEvent,
    TaskState,
    priority_band,
    priority_band_array,
)
from .slice import downsample_usage, select_machines, slice_time
from .swf import read_swf, swf_table, write_swf
from ..core.table import Table, concat_tables
from .validate import ValidationError, validate_job_table, validate_trace

__all__ = [
    "ABNORMAL_EVENTS",
    "GWA_JOB_SCHEMA",
    "GoogleTrace",
    "HIGH_PRIORITIES",
    "JOB_TABLE_SCHEMA",
    "LOW_PRIORITIES",
    "MACHINE_TABLE_SCHEMA",
    "MIDDLE_PRIORITIES",
    "NUM_PRIORITIES",
    "PriorityBand",
    "SWF_JOB_SCHEMA",
    "TASK_EVENT_SCHEMA",
    "TASK_USAGE_SCHEMA",
    "TERMINAL_EVENTS",
    "Table",
    "TaskEvent",
    "TaskState",
    "TraceParseError",
    "TraceParseWarning",
    "ValidationError",
    "completion_mix",
    "concat_tables",
    "downsample_usage",
    "grid_jobs_to_job_table",
    "gwa_table",
    "job_interarrival_times",
    "job_lengths",
    "load_trace",
    "priority_band",
    "priority_band_array",
    "read_csv",
    "read_gwa",
    "read_swf",
    "save_trace",
    "select_machines",
    "slice_time",
    "swf_table",
    "task_lengths",
    "validate_job_table",
    "validate_trace",
    "write_csv",
    "write_gwa",
    "write_swf",
]
