"""Standard Workload Format (SWF) of the Parallel Workloads Archive.

The paper's HPC comparisons (ANL, RICC, METACENTRUM, LLNL-Atlas) come
from PWA traces in SWF. SWF stores 18 whitespace-separated fields per
job line; ``-1`` means missing and header lines start with ``;``. We
parse the full 18-field line but expose only the subset the paper's
analyses use (:data:`repro.traces.schema.SWF_JOB_SCHEMA`).
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .io import _open_text, read_numeric_lines
from .schema import SWF_JOB_SCHEMA
from ..core.table import Table

__all__ = ["read_swf", "write_swf", "swf_table"]

# SWF field indices (0-based) in the 18-field standard line.
_SWF_JOB_ID = 0
_SWF_SUBMIT = 1
_SWF_WAIT = 2
_SWF_RUNTIME = 3
_SWF_NPROCS = 4
_SWF_AVG_CPU = 5
_SWF_MEMORY = 6
_SWF_STATUS = 10
_SWF_USER = 11
_SWF_NFIELDS = 18


def swf_table(**columns: np.ndarray) -> Table:
    """Build a schema-checked SWF job table from keyword columns."""
    n = None
    for values in columns.values():
        n = len(np.asarray(values))
        break
    if n is None:
        raise ValueError("at least one column is required")
    full = {}
    for name in SWF_JOB_SCHEMA:
        if name in columns:
            full[name] = np.asarray(columns[name])
        elif name == "job_id":
            full[name] = np.arange(1, n + 1, dtype=np.int64)
        elif name == "status":
            full[name] = np.ones(n, dtype=np.int8)
        else:
            full[name] = np.full(n, -1.0)
    unknown = set(columns) - set(SWF_JOB_SCHEMA)
    if unknown:
        raise ValueError(f"unknown SWF columns: {sorted(unknown)}")
    return Table(full, schema=SWF_JOB_SCHEMA)


def write_swf(table: Table, path: str | Path, header: str | None = None) -> None:
    """Write an SWF file (full 18-field lines; unknown fields are -1)."""
    path = Path(path)
    if set(table.column_names) != set(SWF_JOB_SCHEMA):
        raise ValueError("table does not match the SWF schema")
    with _open_text(path, "w") as fh:
        fh.write("; SWF trace written by repro\n")
        if header:
            for line in header.splitlines():
                fh.write(f"; {line}\n")
        n = table.num_rows
        fields = np.full((n, _SWF_NFIELDS), -1.0)
        fields[:, _SWF_JOB_ID] = table["job_id"]
        fields[:, _SWF_SUBMIT] = table["submit_time"]
        fields[:, _SWF_WAIT] = table["wait_time"]
        fields[:, _SWF_RUNTIME] = table["run_time"]
        fields[:, _SWF_NPROCS] = table["num_procs"]
        fields[:, _SWF_AVG_CPU] = table["avg_cpu_time"]
        fields[:, _SWF_MEMORY] = table["used_memory"]
        fields[:, _SWF_STATUS] = table["status"]
        fields[:, _SWF_USER] = table["user_id"]
        for row in fields:
            fh.write(" ".join(_fmt(v) for v in row) + "\n")


def _fmt(value: float) -> str:
    if value == int(value):
        return str(int(value))
    return repr(float(value))


def read_swf(path: str | Path, *, strict: bool = True) -> Table:
    """Read an SWF file into the paper's job-record subset.

    Strict mode raises :class:`~repro.traces.io.TraceParseError` with
    ``file:line`` context at the first malformed line, garbage byte or
    truncated stream; ``strict=False`` skips such defects, counting and
    reporting them via :class:`~repro.traces.io.TraceParseWarning`.
    """
    path = Path(path)
    rows = read_numeric_lines(
        path,
        min_fields=_SWF_NFIELDS,
        strict=strict,
        comments=(";", "#"),
        format_name="SWF",
    )
    data = np.asarray(rows) if rows else np.empty((0, _SWF_NFIELDS))
    return Table(
        {
            "job_id": data[:, _SWF_JOB_ID],
            "submit_time": data[:, _SWF_SUBMIT],
            "wait_time": data[:, _SWF_WAIT],
            "run_time": data[:, _SWF_RUNTIME],
            "num_procs": data[:, _SWF_NPROCS],
            "avg_cpu_time": data[:, _SWF_AVG_CPU],
            "used_memory": data[:, _SWF_MEMORY],
            "user_id": data[:, _SWF_USER],
            "status": data[:, _SWF_STATUS],
        },
        schema=SWF_JOB_SCHEMA,
    )
