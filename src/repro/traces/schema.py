"""Schemas and constants for cluster trace tables.

The layout mirrors the public Google clusterdata-2011 trace format
(job-events, task-events, task-usage, machine-events tables) plus the
archive formats the paper compares against (GWA and SWF job records).
All tables in this package are column-oriented: a mapping from column
name to a 1-D NumPy array, wrapped by :class:`repro.core.table.Table`.
"""

from __future__ import annotations

import enum

import numpy as np

__all__ = [
    "TaskState",
    "TaskEvent",
    "PriorityBand",
    "NUM_PRIORITIES",
    "LOW_PRIORITIES",
    "MIDDLE_PRIORITIES",
    "HIGH_PRIORITIES",
    "TERMINAL_EVENTS",
    "ABNORMAL_EVENTS",
    "JOB_TABLE_SCHEMA",
    "TASK_EVENT_SCHEMA",
    "TASK_USAGE_SCHEMA",
    "MACHINE_TABLE_SCHEMA",
    "GWA_JOB_SCHEMA",
    "SWF_JOB_SCHEMA",
    "priority_band",
    "priority_band_array",
]


class TaskState(enum.IntEnum):
    """Lifecycle states of a task (Fig. 1 of the paper).

    ``UNSUBMITTED -> PENDING -> RUNNING -> DEAD`` with possible
    resubmission from ``DEAD`` back to ``PENDING``.
    """

    UNSUBMITTED = 0
    PENDING = 1
    RUNNING = 2
    DEAD = 3


class TaskEvent(enum.IntEnum):
    """Event types recorded in the task-event table.

    The names match the clusterdata-2011 event vocabulary used in
    Fig. 8(a) of the paper: SUBMIT, SCHEDULE, EVICT, FAIL, FINISH,
    KILL, LOST, plus UPDATE for runtime constraint changes.
    """

    SUBMIT = 0
    SCHEDULE = 1
    EVICT = 2
    FAIL = 3
    FINISH = 4
    KILL = 5
    LOST = 6
    UPDATE = 7


class PriorityBand(enum.IntEnum):
    """The three priority clusters the paper identifies (Sec. III.1)."""

    LOW = 0  # priorities 1-4
    MIDDLE = 1  # priorities 5-8
    HIGH = 2  # priorities 9-12


#: Number of distinct scheduling priorities in the Google model.
NUM_PRIORITIES = 12

#: Priority values (1-based, as in the paper's Fig. 2) per band.
LOW_PRIORITIES = tuple(range(1, 5))
MIDDLE_PRIORITIES = tuple(range(5, 9))
HIGH_PRIORITIES = tuple(range(9, 13))

#: Events that move a task into the DEAD state.
TERMINAL_EVENTS = (
    TaskEvent.EVICT,
    TaskEvent.FAIL,
    TaskEvent.FINISH,
    TaskEvent.KILL,
    TaskEvent.LOST,
)

#: Terminal events the paper counts as "abnormal" completions.
ABNORMAL_EVENTS = (
    TaskEvent.EVICT,
    TaskEvent.FAIL,
    TaskEvent.KILL,
    TaskEvent.LOST,
)


def priority_band(priority: int) -> PriorityBand:
    """Map a 1-based priority (1..12) to its band (low/middle/high)."""
    if not 1 <= priority <= NUM_PRIORITIES:
        raise ValueError(f"priority must be in 1..{NUM_PRIORITIES}, got {priority}")
    if priority <= 4:
        return PriorityBand.LOW
    if priority <= 8:
        return PriorityBand.MIDDLE
    return PriorityBand.HIGH


def priority_band_array(priorities: np.ndarray) -> np.ndarray:
    """Vectorized :func:`priority_band`: int array in 1..12 -> band codes."""
    priorities = np.asarray(priorities)
    if priorities.size and (priorities.min() < 1 or priorities.max() > NUM_PRIORITIES):
        raise ValueError("priorities must be in 1..12")
    bands = np.full(priorities.shape, PriorityBand.HIGH.value, dtype=np.int8)
    bands[priorities <= 8] = PriorityBand.MIDDLE.value
    bands[priorities <= 4] = PriorityBand.LOW.value
    return bands


# ---------------------------------------------------------------------------
# Table schemas: mapping column name -> NumPy dtype.
# ---------------------------------------------------------------------------

#: Per-job summary table (one row per job).
JOB_TABLE_SCHEMA: dict[str, np.dtype] = {
    "job_id": np.dtype(np.int64),
    "user_id": np.dtype(np.int64),
    "submit_time": np.dtype(np.float64),  # seconds from trace start
    "end_time": np.dtype(np.float64),  # completion of the last task
    "priority": np.dtype(np.int16),  # 1..12
    "num_tasks": np.dtype(np.int32),
    "cpu_usage": np.dtype(np.float64),  # Eq. (4): core-seconds / wall-clock
    "mem_usage": np.dtype(np.float64),  # mean normalized memory
}

#: Task event log (one row per state-transition event).
TASK_EVENT_SCHEMA: dict[str, np.dtype] = {
    "time": np.dtype(np.float64),
    "job_id": np.dtype(np.int64),
    "task_index": np.dtype(np.int32),
    "machine_id": np.dtype(np.int64),  # -1 when not placed
    "event_type": np.dtype(np.int8),  # TaskEvent
    "priority": np.dtype(np.int16),
    "cpu_request": np.dtype(np.float64),  # normalized cores
    "mem_request": np.dtype(np.float64),  # normalized memory
}

#: 5-minute usage samples (one row per task per sample window).
TASK_USAGE_SCHEMA: dict[str, np.dtype] = {
    "start_time": np.dtype(np.float64),
    "end_time": np.dtype(np.float64),
    "job_id": np.dtype(np.int64),
    "task_index": np.dtype(np.int32),
    "machine_id": np.dtype(np.int64),
    "priority": np.dtype(np.int16),
    "cpu_usage": np.dtype(np.float64),  # normalized core-seconds/second
    "mem_usage": np.dtype(np.float64),  # consumed memory, normalized
    "mem_assigned": np.dtype(np.float64),  # allocated memory, normalized
    "page_cache": np.dtype(np.float64),  # file-backed memory, normalized
}

#: Machine table (one row per machine).
MACHINE_TABLE_SCHEMA: dict[str, np.dtype] = {
    "machine_id": np.dtype(np.int64),
    "cpu_capacity": np.dtype(np.float64),  # normalized: {0.25, 0.5, 1}
    "mem_capacity": np.dtype(np.float64),  # normalized: {0.25, 0.5, 0.75, 1}
    "page_cache_capacity": np.dtype(np.float64),  # normalized: {1}
}

#: Grid Workloads Archive job record (the subset the paper uses).
GWA_JOB_SCHEMA: dict[str, np.dtype] = {
    "job_id": np.dtype(np.int64),
    "submit_time": np.dtype(np.float64),
    "wait_time": np.dtype(np.float64),
    "run_time": np.dtype(np.float64),
    "num_procs": np.dtype(np.int32),
    "avg_cpu_time": np.dtype(np.float64),  # per-processor CPU seconds
    "used_memory": np.dtype(np.float64),  # KB, mean per job
    "user_id": np.dtype(np.int64),
    "status": np.dtype(np.int8),  # 1 completed, 0 failed
}

#: Standard Workload Format (PWA) job record (the subset the paper uses).
SWF_JOB_SCHEMA: dict[str, np.dtype] = {
    "job_id": np.dtype(np.int64),
    "submit_time": np.dtype(np.float64),
    "wait_time": np.dtype(np.float64),
    "run_time": np.dtype(np.float64),
    "num_procs": np.dtype(np.int32),
    "avg_cpu_time": np.dtype(np.float64),
    "used_memory": np.dtype(np.float64),
    "user_id": np.dtype(np.int64),
    "status": np.dtype(np.int8),
}
