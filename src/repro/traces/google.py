"""Google-cluster-style trace container.

Bundles the four tables of the clusterdata-2011 release shape used by
the paper — per-job summaries, the task-event log, the periodic
task-usage samples, and the machine table — and provides the derived
per-job/per-task quantities Section III of the paper analyzes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import (
    ABNORMAL_EVENTS,
    JOB_TABLE_SCHEMA,
    MACHINE_TABLE_SCHEMA,
    TASK_EVENT_SCHEMA,
    TASK_USAGE_SCHEMA,
    TaskEvent,
)
from ..core.table import Table

__all__ = ["GoogleTrace", "task_lengths", "job_lengths", "completion_mix"]


@dataclass(frozen=True)
class GoogleTrace:
    """One month-style trace of a Google-like cluster.

    Attributes
    ----------
    jobs:
        Per-job summary table (:data:`JOB_TABLE_SCHEMA`).
    task_events:
        Task state-transition log (:data:`TASK_EVENT_SCHEMA`).
    task_usage:
        Periodic usage samples (:data:`TASK_USAGE_SCHEMA`).
    machines:
        Machine capacity table (:data:`MACHINE_TABLE_SCHEMA`).
    horizon:
        Trace duration in seconds (measurements cover [0, horizon]).
    """

    jobs: Table
    task_events: Table
    task_usage: Table
    machines: Table
    horizon: float

    def __post_init__(self) -> None:
        _require_schema(self.jobs, JOB_TABLE_SCHEMA, "jobs")
        _require_schema(self.task_events, TASK_EVENT_SCHEMA, "task_events")
        _require_schema(self.task_usage, TASK_USAGE_SCHEMA, "task_usage")
        _require_schema(self.machines, MACHINE_TABLE_SCHEMA, "machines")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")

    # -- derived quantities --------------------------------------------------

    @property
    def num_jobs(self) -> int:
        return len(self.jobs)

    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def num_tasks(self) -> int:
        """Distinct (job, task) pairs appearing in the event log."""
        ev = self.task_events
        if len(ev) == 0:
            return 0
        pair = ev["job_id"].astype(np.int64) * (ev["task_index"].max() + 1) + ev[
            "task_index"
        ]
        return int(np.unique(pair).size)

    def events_of_type(self, event_type: TaskEvent) -> Table:
        return self.task_events.select(
            self.task_events["event_type"] == int(event_type)
        )

    def machine_events(self, machine_id: int) -> Table:
        """All task events placed on one machine, time-ordered."""
        sub = self.task_events.select(self.task_events["machine_id"] == machine_id)
        return sub.sort_by("time")


def _require_schema(table: Table, schema: dict, name: str) -> None:
    if set(table.column_names) != set(schema):
        raise ValueError(
            f"{name} table columns {sorted(table.column_names)} do not match "
            f"schema {sorted(schema)}"
        )


def task_lengths(trace: GoogleTrace) -> np.ndarray:
    """Per-task execution time: SCHEDULE -> terminal event, vectorized.

    For tasks scheduled multiple times (resubmission), each
    schedule/terminal pair contributes one execution length, matching
    the paper's treatment of task execution time.
    """
    ev = trace.task_events.sort_by("time")
    etype = ev["event_type"]
    times = ev["time"]
    job = ev["job_id"]
    task = ev["task_index"]
    # Encode (job, task) into one key for grouping.
    width = int(task.max()) + 1 if len(task) else 1
    key = job * width + task

    lengths: list[float] = []
    terminal = np.isin(etype, [int(e) for e in TaskEvent if e in
                               (TaskEvent.EVICT, TaskEvent.FAIL, TaskEvent.FINISH,
                                TaskEvent.KILL, TaskEvent.LOST)])
    is_sched = etype == int(TaskEvent.SCHEDULE)
    # Group rows per task; within a group events are time-ordered.
    order = np.argsort(key, kind="stable")
    k_sorted = key[order]
    bounds = np.flatnonzero(k_sorted[1:] != k_sorted[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(k_sorted)]))
    t_sorted = times[order]
    sched_sorted = is_sched[order]
    term_sorted = terminal[order]
    for s, e in zip(starts, ends):
        seg_t = t_sorted[s:e]
        seg_order = np.argsort(seg_t, kind="stable")
        seg_t = seg_t[seg_order]
        seg_sched = sched_sorted[s:e][seg_order]
        seg_term = term_sorted[s:e][seg_order]
        start_time = None
        for t, sch, trm in zip(seg_t, seg_sched, seg_term):
            if sch:
                start_time = t
            elif trm and start_time is not None:
                lengths.append(t - start_time)
                start_time = None
    return np.asarray(lengths, dtype=np.float64)


def job_lengths(trace: GoogleTrace) -> np.ndarray:
    """Per-job length: submission to completion (Sec. III.2)."""
    return np.asarray(trace.jobs["end_time"] - trace.jobs["submit_time"])


def completion_mix(trace: GoogleTrace) -> dict[str, float]:
    """Fractions of completion events per terminal type (Sec. IV.B.1).

    Returns a mapping with keys ``finish``, ``fail``, ``kill``,
    ``evict``, ``lost`` and ``abnormal`` (sum of the non-finish types),
    each a fraction of all completion events.
    """
    etype = trace.task_events["event_type"]
    counts = {
        "finish": int(np.count_nonzero(etype == int(TaskEvent.FINISH))),
        "fail": int(np.count_nonzero(etype == int(TaskEvent.FAIL))),
        "kill": int(np.count_nonzero(etype == int(TaskEvent.KILL))),
        "evict": int(np.count_nonzero(etype == int(TaskEvent.EVICT))),
        "lost": int(np.count_nonzero(etype == int(TaskEvent.LOST))),
    }
    total = sum(counts.values())
    if total == 0:
        return {k: 0.0 for k in (*counts, "abnormal")}
    mix = {k: v / total for k, v in counts.items()}
    mix["abnormal"] = sum(
        counts[k] for k in ("fail", "kill", "evict", "lost")
    ) / total
    return mix
