"""Backward-compatible alias for :mod:`repro.core.table`.

The :class:`Table` container started life in this package but is layer-0
infrastructure (the trace readers, synthesizers, simulator and analyses
all build on it), so it now lives in :mod:`repro.core.table`. This shim
keeps ``repro.traces.table`` imports working.
"""

from __future__ import annotations

from ..core.table import Table, concat_tables

__all__ = ["Table", "concat_tables"]
