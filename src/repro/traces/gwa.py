"""Grid Workloads Archive (GWA) job-record format.

The GWA text format stores one job per line with whitespace-separated
fields; the paper uses the AuverGrid, NorduGrid, SHARCNET and DAS-2
traces from this archive. We implement the field subset the paper's
analyses consume (see :data:`repro.traces.schema.GWA_JOB_SCHEMA`) with a
parser/writer compatible with the archive's conventions: ``-1`` encodes
"missing", comment lines start with ``#``.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .io import _open_text, read_numeric_lines
from .schema import GWA_JOB_SCHEMA
from ..core.table import Table

__all__ = ["read_gwa", "write_gwa", "gwa_table", "MISSING"]

#: Sentinel the archive formats use for unavailable values.
MISSING = -1.0

# Field order of the on-disk representation.
_FIELDS = (
    "job_id",
    "submit_time",
    "wait_time",
    "run_time",
    "num_procs",
    "avg_cpu_time",
    "used_memory",
    "user_id",
    "status",
)


def gwa_table(**columns: np.ndarray) -> Table:
    """Build a schema-checked GWA job table from keyword columns.

    Missing optional columns are filled with :data:`MISSING`.
    """
    n = None
    for values in columns.values():
        n = len(np.asarray(values))
        break
    if n is None:
        raise ValueError("at least one column is required")
    full = {}
    for name in GWA_JOB_SCHEMA:
        if name in columns:
            full[name] = np.asarray(columns[name])
        elif name == "job_id":
            full[name] = np.arange(n, dtype=np.int64)
        elif name == "status":
            full[name] = np.ones(n, dtype=np.int8)
        else:
            full[name] = np.full(n, MISSING)
    unknown = set(columns) - set(GWA_JOB_SCHEMA)
    if unknown:
        raise ValueError(f"unknown GWA columns: {sorted(unknown)}")
    return Table(full, schema=GWA_JOB_SCHEMA)


def write_gwa(table: Table, path: str | Path) -> None:
    """Write a GWA job table to a (optionally gzipped) text file."""
    path = Path(path)
    if set(table.column_names) != set(GWA_JOB_SCHEMA):
        raise ValueError("table does not match the GWA schema")
    cols = [table[name] for name in _FIELDS]
    with _open_text(path, "w") as fh:
        fh.write("# GWA job trace written by repro\n")
        fh.write("# fields: " + " ".join(_FIELDS) + "\n")
        for row in zip(*cols):
            fh.write(" ".join(_format(v) for v in row) + "\n")


def _format(value: object) -> str:
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    f = float(value)  # type: ignore[arg-type]
    if f == int(f):
        return str(int(f))
    return repr(f)


def read_gwa(path: str | Path, *, strict: bool = True) -> Table:
    """Read a GWA job table written by :func:`write_gwa` (or archive-like).

    Strict mode raises :class:`~repro.traces.io.TraceParseError` with
    ``file:line`` context at the first malformed line, garbage byte or
    truncated stream; ``strict=False`` skips such defects, counting and
    reporting them via :class:`~repro.traces.io.TraceParseWarning`.
    """
    path = Path(path)
    rows = read_numeric_lines(
        path,
        min_fields=len(_FIELDS),
        strict=strict,
        comments=("#", ";"),
        format_name="GWA",
    )
    if not rows:
        data = np.empty((0, len(_FIELDS)))
    else:
        data = np.asarray(rows)
    return Table(
        {name: data[:, i] for i, name in enumerate(_FIELDS)},
        schema=GWA_JOB_SCHEMA,
    )
