"""Trace slicing and downsampling utilities.

Working with a month-long trace usually starts by cutting it down: a
time window (the paper's Fig. 13 looks at days [10,15] and [10,11]), a
machine subset, or coarser usage sampling. These helpers produce new,
self-consistent :class:`~repro.traces.google.GoogleTrace` objects.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from .google import GoogleTrace
from ..core.table import Table

__all__ = ["slice_time", "select_machines", "downsample_usage"]


def slice_time(trace: GoogleTrace, start: float, end: float) -> GoogleTrace:
    """Restrict a trace to events/usage inside ``[start, end)``.

    Timestamps are rebased to the window start, so the sliced trace
    again runs over ``[0, end - start)``. Jobs are kept when their
    lifetime intersects the window, with their times clipped.
    """
    if not 0 <= start < end <= trace.horizon:
        raise ValueError("require 0 <= start < end <= horizon")
    width = end - start

    jobs = trace.jobs
    alive = (jobs["end_time"] > start) & (jobs["submit_time"] < end)
    jobs = jobs.select(alive)
    jobs = jobs.with_columns(
        submit_time=np.clip(jobs["submit_time"] - start, 0.0, width),
        end_time=np.clip(jobs["end_time"] - start, 0.0, width),
    )

    ev = trace.task_events
    in_window = (ev["time"] >= start) & (ev["time"] < end)
    ev = ev.select(in_window)
    ev = ev.with_columns(time=ev["time"] - start)

    us = trace.task_usage
    overlap = (us["end_time"] > start) & (us["start_time"] < end)
    us = us.select(overlap)
    us = us.with_columns(
        start_time=np.clip(us["start_time"] - start, 0.0, width),
        end_time=np.clip(us["end_time"] - start, 0.0, width),
    )

    return dataclasses.replace(
        trace, jobs=jobs, task_events=ev, task_usage=us, horizon=width
    )


def select_machines(trace: GoogleTrace, machine_ids) -> GoogleTrace:
    """Keep only the given machines' events/usage (plus unplaced events).

    Jobs are retained untouched — a job may still have tasks on other
    machines; the per-machine analyses only consume events and usage.
    """
    machine_ids = np.asarray(list(machine_ids), dtype=np.int64)
    if machine_ids.size == 0:
        raise ValueError("machine_ids must be non-empty")
    known = np.asarray(trace.machines["machine_id"])
    missing = set(machine_ids.tolist()) - set(known.tolist())
    if missing:
        raise KeyError(f"unknown machines: {sorted(missing)}")

    machines = trace.machines.select(np.isin(known, machine_ids))
    ev = trace.task_events
    keep_ev = np.isin(ev["machine_id"], machine_ids) | (ev["machine_id"] == -1)
    us = trace.task_usage
    keep_us = np.isin(us["machine_id"], machine_ids)
    return dataclasses.replace(
        trace,
        task_events=ev.select(keep_ev),
        task_usage=us.select(keep_us),
        machines=machines,
    )


def downsample_usage(trace: GoogleTrace, factor: int) -> GoogleTrace:
    """Merge consecutive usage windows of each task, ``factor`` at a time.

    Usage values are averaged weighted by window length; the merged
    window spans the originals. Event and job tables are unchanged.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    if factor == 1 or len(trace.task_usage) == 0:
        return trace
    us = trace.task_usage.sort_by("job_id", "task_index", "start_time")
    job = np.asarray(us["job_id"])
    task = np.asarray(us["task_index"])
    width = int(task.max()) + 1 if len(task) else 1
    key = job * width + task
    # Row index within its task's run of windows.
    boundaries = np.flatnonzero(key[1:] != key[:-1]) + 1
    starts = np.concatenate(([0], boundaries))
    run_id = np.cumsum(np.isin(np.arange(len(key)), starts))
    within = np.arange(len(key)) - starts[run_id - 1]
    group = run_id * 10**9 + within // factor

    order = np.argsort(group, kind="stable")
    group_sorted = group[order]
    gb = np.flatnonzero(group_sorted[1:] != group_sorted[:-1]) + 1
    g_starts = np.concatenate(([0], gb))

    length = (np.asarray(us["end_time"]) - np.asarray(us["start_time"]))[order]
    total_len = np.add.reduceat(length, g_starts)

    def agg_weighted(name: str) -> np.ndarray:
        values = np.asarray(us[name])[order]
        return np.add.reduceat(values * length, g_starts) / np.maximum(
            total_len, 1e-12
        )

    def first(name: str) -> np.ndarray:
        return np.asarray(us[name])[order][g_starts]

    merged = Table(
        {
            "start_time": np.minimum.reduceat(
                np.asarray(us["start_time"])[order], g_starts
            ),
            "end_time": np.maximum.reduceat(
                np.asarray(us["end_time"])[order], g_starts
            ),
            "job_id": first("job_id"),
            "task_index": first("task_index"),
            "machine_id": first("machine_id"),
            "priority": first("priority"),
            "cpu_usage": agg_weighted("cpu_usage"),
            "mem_usage": agg_weighted("mem_usage"),
            "mem_assigned": agg_weighted("mem_assigned"),
            "page_cache": agg_weighted("page_cache"),
        }
    )
    return dataclasses.replace(trace, task_usage=merged)
