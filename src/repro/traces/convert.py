"""Conversions between archive formats and the common job table.

The paper compares Google jobs against GWA and SWF jobs. To make the
analyses format-agnostic, both archive formats convert into the same
per-job summary layout (:data:`~repro.traces.schema.JOB_TABLE_SCHEMA`),
with the CPU-usage column computed by Eq. (4) of the paper:

    cpu_usage = num_procs * exe_time_per_cpu / wall_clock_time
"""

from __future__ import annotations

import numpy as np

from ..core.compare import job_interarrival_times
from .schema import GWA_JOB_SCHEMA, JOB_TABLE_SCHEMA, SWF_JOB_SCHEMA
from ..core.table import Table

__all__ = ["grid_jobs_to_job_table", "job_interarrival_times"]


def grid_jobs_to_job_table(
    grid_jobs: Table,
    default_priority: int = 5,
    mem_capacity_gb: float = 32.0,
) -> Table:
    """Convert a GWA/SWF job table into the common job-summary table.

    Parameters
    ----------
    grid_jobs:
        Table matching either the GWA or SWF schema.
    default_priority:
        Grid traces have no Google-style priority; assign this value.
    mem_capacity_gb:
        Node memory used to express ``used_memory`` (KB) as a fraction,
        mirroring the paper's MaxCap=32GB/64GB assumption in Fig. 6(b).
    """
    names = set(grid_jobs.column_names)
    if names not in (set(GWA_JOB_SCHEMA), set(SWF_JOB_SCHEMA)):
        raise ValueError("input does not match the GWA or SWF schema")

    n = grid_jobs.num_rows
    submit = np.asarray(grid_jobs["submit_time"], dtype=np.float64)
    wait = np.maximum(np.asarray(grid_jobs["wait_time"], dtype=np.float64), 0.0)
    run = np.maximum(np.asarray(grid_jobs["run_time"], dtype=np.float64), 0.0)
    procs = np.maximum(np.asarray(grid_jobs["num_procs"], dtype=np.float64), 1.0)
    avg_cpu = np.asarray(grid_jobs["avg_cpu_time"], dtype=np.float64)
    mem_kb = np.asarray(grid_jobs["used_memory"], dtype=np.float64)

    # Eq. (4). When per-CPU time is missing (-1) assume fully busy procs.
    exe_per_cpu = np.where(avg_cpu >= 0, avg_cpu, run)
    wall = np.maximum(run, 1e-9)
    cpu_usage = procs * exe_per_cpu / wall

    mem_fraction = np.where(mem_kb >= 0, mem_kb / (mem_capacity_gb * 1024**2), 0.0)

    return Table(
        {
            "job_id": grid_jobs["job_id"],
            "user_id": grid_jobs["user_id"],
            "submit_time": submit,
            "end_time": submit + wait + run,
            "priority": np.full(n, default_priority, dtype=np.int16),
            "num_tasks": procs.astype(np.int32),
            "cpu_usage": cpu_usage,
            "mem_usage": np.clip(mem_fraction, 0.0, None),
        },
        schema=JOB_TABLE_SCHEMA,
    )
