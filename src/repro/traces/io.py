"""Generic CSV(.gz) round-trip for :class:`~repro.core.table.Table`.

The Google clusterdata release ships tables as gzipped CSV shards; this
module provides the same serialization for any of our tables, plus a
directory-level save/load for a whole :class:`GoogleTrace`.

It also hosts the parse-robustness layer shared by every text trace
reader (CSV here, SWF and GWA in their modules): real archive files
arrive truncated, with garbage bytes, or with malformed lines, and a
characterization run should not abort at paper scale because one line
out of millions is broken. Every reader therefore takes ``strict``
(default ``True``): strict mode raises :class:`TraceParseError` with
``file:line`` context at the first defect; lenient mode
(``strict=False``) skips malformed or truncated input, counts what it
skipped, and reports the total — again with ``file:line`` context —
through a :class:`TraceParseWarning`.
"""

from __future__ import annotations

import gzip
import io
import json
import warnings
import zlib
from collections.abc import Mapping, Sequence
from pathlib import Path

import numpy as np

from .google import GoogleTrace
from .schema import (
    JOB_TABLE_SCHEMA,
    MACHINE_TABLE_SCHEMA,
    TASK_EVENT_SCHEMA,
    TASK_USAGE_SCHEMA,
)
from ..core.table import Table

__all__ = [
    "TraceParseError",
    "TraceParseWarning",
    "write_csv",
    "read_csv",
    "save_trace",
    "load_trace",
]


class TraceParseError(ValueError):
    """A trace file failed to parse; carries ``file:line`` context."""

    def __init__(self, path: str | Path, line: int, reason: str) -> None:
        self.path = str(path)
        self.line = line
        self.reason = reason
        super().__init__(f"{self.path}:{line}: {reason}")


class TraceParseWarning(UserWarning):
    """Lenient parsing skipped malformed or truncated trace input."""


def _open_text(path: Path, mode: str, *, strict: bool = True) -> io.TextIOBase:
    """Open a (possibly gzipped) trace file with a pinned encoding.

    The encoding is always UTF-8 so parsing never depends on the host
    locale. In lenient mode undecodable garbage bytes are replaced with
    U+FFFD — the affected lines then fail field parsing and are skipped
    by the lenient readers instead of aborting the whole file.
    """
    errors = "strict" if strict else "replace"
    if path.suffix == ".gz":
        return gzip.open(  # type: ignore[return-value]
            path, mode + "t", encoding="utf-8", errors=errors
        )
    return open(path, mode, encoding="utf-8", errors=errors)


#: Exceptions that mark a physically damaged stream mid-iteration:
#: truncated gzip members (EOFError), corrupt compressed data
#: (zlib.error) and low-level read failures (OSError, which includes
#: gzip.BadGzipFile).
_STREAM_ERRORS = (EOFError, OSError, zlib.error)


def read_numeric_lines(
    path: str | Path,
    *,
    min_fields: int,
    strict: bool = True,
    comments: Sequence[str] = ("#", ";"),
    format_name: str = "trace",
) -> list[list[float]]:
    """Parse whitespace-separated numeric records from a trace file.

    Blank lines and lines starting with any of ``comments`` are
    ignored. A record needs at least ``min_fields`` fields, all
    numeric; extra fields are ignored (SWF/GWA permit vendor columns).
    Strict mode raises :class:`TraceParseError` at the first malformed
    line, undecodable byte, or truncated stream; lenient mode skips the
    defect (for a truncated stream: keeps everything before it) and
    finishes with one :class:`TraceParseWarning` summarizing how many
    lines were dropped and where the first defect sits.
    """
    path = Path(path)
    rows: list[list[float]] = []
    skipped = 0
    first_defect: str | None = None
    lineno = 0

    def defect(line: int, reason: str) -> None:
        nonlocal skipped, first_defect
        if strict:
            raise TraceParseError(path, line, reason)
        skipped += 1
        if first_defect is None:
            first_defect = f"{path}:{line}: {reason}"

    with _open_text(path, "r", strict=strict) as fh:
        try:
            for raw in fh:
                lineno += 1
                line = raw.strip()
                if not line or line.startswith(tuple(comments)):
                    continue
                parts = line.split()
                if len(parts) < min_fields:
                    defect(
                        lineno,
                        f"{format_name} line has {len(parts)} fields, "
                        f"expected {min_fields}: {line[:80]!r}",
                    )
                    continue
                try:
                    rows.append([float(p) for p in parts[:min_fields]])
                except ValueError:
                    defect(
                        lineno,
                        f"{format_name} line has a non-numeric field: "
                        f"{line[:80]!r}",
                    )
        except UnicodeDecodeError as exc:
            # Only reachable in strict mode (lenient replaces bytes).
            raise TraceParseError(
                path, lineno + 1, f"undecodable byte in {format_name} file: {exc}"
            ) from exc
        except _STREAM_ERRORS as exc:
            if strict:
                raise TraceParseError(
                    path,
                    lineno + 1,
                    f"truncated or corrupt {format_name} file: {exc}",
                ) from exc
            skipped += 1
            if first_defect is None:
                first_defect = (
                    f"{path}:{lineno + 1}: truncated or corrupt "
                    f"{format_name} file: {exc}"
                )
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} malformed {format_name} line(s)/"
            f"segment(s); first: {first_defect}",
            TraceParseWarning,
            stacklevel=2,
        )
    return rows


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row (gzip if path ends in .gz)."""
    path = Path(path)
    names = table.column_names
    with _open_text(path, "w") as fh:
        fh.write(",".join(names) + "\n")
        columns = [table[name] for name in names]
        for row in zip(*columns):
            fh.write(",".join(_fmt(v) for v in row) + "\n")


def _fmt(value: object) -> str:
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    f = float(value)  # type: ignore[arg-type]
    return repr(f)


def read_csv(
    path: str | Path,
    schema: Mapping[str, np.dtype] | None = None,
    *,
    strict: bool = True,
) -> Table:
    """Read a CSV written by :func:`write_csv`.

    Strict mode raises :class:`TraceParseError` on the first malformed
    row, undecodable byte, or truncated gzip stream; lenient mode
    (``strict=False``) skips defective rows and warns with a
    :class:`TraceParseWarning`.
    """
    path = Path(path)
    rows: list[list[float]] = []
    names: list[str] = []
    skipped = 0
    first_defect: str | None = None
    lineno = 1

    def defect(line: int, reason: str) -> None:
        nonlocal skipped, first_defect
        if strict:
            raise TraceParseError(path, line, reason)
        skipped += 1
        if first_defect is None:
            first_defect = f"{path}:{line}: {reason}"

    with _open_text(path, "r", strict=strict) as fh:
        try:
            header = fh.readline().strip()
            if not header:
                raise TraceParseError(path, 1, "CSV file is empty")
            names = header.split(",")
            for raw in fh:
                lineno += 1
                line = raw.strip()
                if not line:
                    continue
                parts = line.split(",")
                if len(parts) != len(names):
                    defect(
                        lineno,
                        f"CSV row has {len(parts)} fields, expected "
                        f"{len(names)}: {line[:80]!r}",
                    )
                    continue
                try:
                    rows.append([float(p) for p in parts])
                except ValueError:
                    defect(
                        lineno,
                        f"CSV row has a non-numeric field: {line[:80]!r}",
                    )
        except UnicodeDecodeError as exc:
            raise TraceParseError(
                path, lineno + 1, f"undecodable byte in CSV file: {exc}"
            ) from exc
        except _STREAM_ERRORS as exc:
            if strict:
                raise TraceParseError(
                    path, lineno + 1, f"truncated or corrupt CSV file: {exc}"
                ) from exc
            skipped += 1
            if first_defect is None:
                first_defect = (
                    f"{path}:{lineno + 1}: truncated or corrupt CSV "
                    f"file: {exc}"
                )
    if skipped:
        warnings.warn(
            f"{path}: skipped {skipped} malformed CSV row(s)/segment(s); "
            f"first: {first_defect}",
            TraceParseWarning,
            stacklevel=2,
        )
    if not names:
        # Even lenient parsing cannot shape a table without a header.
        raise TraceParseError(path, 1, "CSV header is unreadable")
    if rows:
        data = np.asarray(rows, dtype=np.float64)
    else:
        data = np.empty((0, len(names)))
    columns = {name: data[:, i] for i, name in enumerate(names)}
    return Table(columns, schema=schema)


_TRACE_FILES = {
    "jobs": ("jobs.csv.gz", JOB_TABLE_SCHEMA),
    "task_events": ("task_events.csv.gz", TASK_EVENT_SCHEMA),
    "task_usage": ("task_usage.csv.gz", TASK_USAGE_SCHEMA),
    "machines": ("machines.csv.gz", MACHINE_TABLE_SCHEMA),
}


def save_trace(trace: GoogleTrace, directory: str | Path) -> None:
    """Persist a :class:`GoogleTrace` as gzipped CSV files + metadata."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for attr, (filename, _schema) in _TRACE_FILES.items():
        write_csv(getattr(trace, attr), directory / filename)
    (directory / "meta.json").write_text(
        json.dumps({"horizon": trace.horizon, "format": "repro-google-v1"})
    )


def load_trace(directory: str | Path) -> GoogleTrace:
    """Load a trace saved by :func:`save_trace`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    tables = {
        attr: read_csv(directory / filename, schema=schema)
        for attr, (filename, schema) in _TRACE_FILES.items()
    }
    return GoogleTrace(horizon=float(meta["horizon"]), **tables)
