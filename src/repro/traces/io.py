"""Generic CSV(.gz) round-trip for :class:`~repro.traces.table.Table`.

The Google clusterdata release ships tables as gzipped CSV shards; this
module provides the same serialization for any of our tables, plus a
directory-level save/load for a whole :class:`GoogleTrace`.
"""

from __future__ import annotations

import gzip
import io
import json
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from .google import GoogleTrace
from .schema import (
    JOB_TABLE_SCHEMA,
    MACHINE_TABLE_SCHEMA,
    TASK_EVENT_SCHEMA,
    TASK_USAGE_SCHEMA,
)
from .table import Table

__all__ = ["write_csv", "read_csv", "save_trace", "load_trace"]


def _open_text(path: Path, mode: str) -> io.TextIOBase:
    # Pin the encoding so parsing never depends on the host locale.
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")  # type: ignore[return-value]
    return open(path, mode, encoding="utf-8")


def write_csv(table: Table, path: str | Path) -> None:
    """Write a table to CSV with a header row (gzip if path ends in .gz)."""
    path = Path(path)
    names = table.column_names
    with _open_text(path, "w") as fh:
        fh.write(",".join(names) + "\n")
        columns = [table[name] for name in names]
        for row in zip(*columns):
            fh.write(",".join(_fmt(v) for v in row) + "\n")


def _fmt(value: object) -> str:
    if isinstance(value, (np.integer, int)):
        return str(int(value))
    f = float(value)  # type: ignore[arg-type]
    return repr(f)


def read_csv(
    path: str | Path, schema: Mapping[str, np.dtype] | None = None
) -> Table:
    """Read a CSV written by :func:`write_csv`."""
    path = Path(path)
    with _open_text(path, "r") as fh:
        header = fh.readline().strip()
        if not header:
            raise ValueError(f"{path} is empty")
        names = header.split(",")
        rows = [line.strip().split(",") for line in fh if line.strip()]
    if rows:
        data = np.asarray(rows, dtype=np.float64)
    else:
        data = np.empty((0, len(names)))
    columns = {name: data[:, i] for i, name in enumerate(names)}
    return Table(columns, schema=schema)


_TRACE_FILES = {
    "jobs": ("jobs.csv.gz", JOB_TABLE_SCHEMA),
    "task_events": ("task_events.csv.gz", TASK_EVENT_SCHEMA),
    "task_usage": ("task_usage.csv.gz", TASK_USAGE_SCHEMA),
    "machines": ("machines.csv.gz", MACHINE_TABLE_SCHEMA),
}


def save_trace(trace: GoogleTrace, directory: str | Path) -> None:
    """Persist a :class:`GoogleTrace` as gzipped CSV files + metadata."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for attr, (filename, _schema) in _TRACE_FILES.items():
        write_csv(getattr(trace, attr), directory / filename)
    (directory / "meta.json").write_text(
        json.dumps({"horizon": trace.horizon, "format": "repro-google-v1"})
    )


def load_trace(directory: str | Path) -> GoogleTrace:
    """Load a trace saved by :func:`save_trace`."""
    directory = Path(directory)
    meta = json.loads((directory / "meta.json").read_text())
    tables = {
        attr: read_csv(directory / filename, schema=schema)
        for attr, (filename, schema) in _TRACE_FILES.items()
    }
    return GoogleTrace(horizon=float(meta["horizon"]), **tables)
