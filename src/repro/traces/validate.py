"""Trace invariant checks.

Catches generator and simulator bugs early: every table and the
cross-table relations have to satisfy the structural rules the paper's
trace format implies (times within the horizon, normalized usage in
[0, 1], legal event sequences per task, priorities in 1..12, ...).
"""

from __future__ import annotations

import numpy as np

from .google import GoogleTrace
from .schema import NUM_PRIORITIES, TaskEvent
from ..core.table import Table

__all__ = ["ValidationError", "validate_trace", "validate_job_table"]


class ValidationError(ValueError):
    """A trace violated a structural invariant."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise ValidationError(message)


def validate_job_table(jobs: Table) -> None:
    """Invariants of a per-job summary table (Google or converted grid)."""
    _check(bool(np.all(jobs["submit_time"] >= 0)), "negative submit_time")
    _check(
        bool(np.all(jobs["end_time"] >= jobs["submit_time"])),
        "end_time precedes submit_time",
    )
    _check(bool(np.all(jobs["num_tasks"] >= 1)), "job with zero tasks")
    pr = jobs["priority"]
    _check(
        bool(np.all((pr >= 1) & (pr <= NUM_PRIORITIES))),
        "priority outside 1..12",
    )
    _check(bool(np.all(jobs["cpu_usage"] >= 0)), "negative cpu_usage")
    _check(bool(np.all(jobs["mem_usage"] >= 0)), "negative mem_usage")
    _check(
        len(np.unique(jobs["job_id"])) == len(jobs),
        "duplicate job_id in job table",
    )


def validate_trace(trace: GoogleTrace, check_event_order: bool = True) -> None:
    """Validate a full :class:`GoogleTrace`.

    Parameters
    ----------
    check_event_order:
        Also verify the per-task event sequence is legal (SUBMIT before
        SCHEDULE before a terminal event). This is O(n log n) in the
        number of events; disable for very large traces.
    """
    validate_job_table(trace.jobs)

    ev = trace.task_events
    _check(bool(np.all(ev["time"] >= 0)), "negative event time")
    _check(
        bool(np.all(ev["time"] <= trace.horizon * (1 + 1e-9))),
        "event beyond horizon",
    )
    _check(
        bool(np.all((ev["priority"] >= 1) & (ev["priority"] <= NUM_PRIORITIES))),
        "event priority outside 1..12",
    )
    _check(bool(np.all(ev["cpu_request"] >= 0)), "negative cpu_request")
    _check(bool(np.all(ev["mem_request"] >= 0)), "negative mem_request")
    valid_types = {int(e) for e in TaskEvent}
    _check(
        set(np.unique(ev["event_type"]).tolist()) <= valid_types,
        "unknown event type",
    )
    # SCHEDULE events must name a machine; SUBMIT events must not.
    sched = ev.select(ev["event_type"] == int(TaskEvent.SCHEDULE))
    _check(
        bool(np.all(sched["machine_id"] >= 0)),
        "SCHEDULE event without a machine",
    )
    submit = ev.select(ev["event_type"] == int(TaskEvent.SUBMIT))
    _check(
        bool(np.all(submit["machine_id"] == -1)),
        "SUBMIT event with a machine assignment",
    )
    # Jobs referenced by events must exist.
    _check(
        bool(np.isin(ev["job_id"], trace.jobs["job_id"]).all()),
        "task event references unknown job",
    )

    us = trace.task_usage
    _check(
        bool(np.all(us["end_time"] > us["start_time"])),
        "usage window with non-positive length",
    )
    for col in ("cpu_usage", "mem_usage", "mem_assigned", "page_cache"):
        _check(bool(np.all(us[col] >= 0)), f"negative {col}")
        _check(
            bool(np.all(us[col] <= 1 + 1e-9)),
            f"{col} above normalized capacity 1",
        )
    _check(
        bool(np.isin(us["machine_id"], trace.machines["machine_id"]).all()),
        "usage sample references unknown machine",
    )

    mc = trace.machines
    _check(
        len(np.unique(mc["machine_id"])) == len(mc),
        "duplicate machine_id",
    )
    for col in ("cpu_capacity", "mem_capacity", "page_cache_capacity"):
        _check(bool(np.all(mc[col] > 0)), f"non-positive {col}")
        _check(bool(np.all(mc[col] <= 1 + 1e-9)), f"{col} above 1")

    if check_event_order and len(ev):
        _validate_event_order(ev)


def _validate_event_order(ev: Table) -> None:
    """Check the SUBMIT -> SCHEDULE -> terminal ordering per task."""
    etype = ev["event_type"]
    times = ev["time"]
    width = int(ev["task_index"].max()) + 1
    key = ev["job_id"] * width + ev["task_index"]
    order = np.lexsort((times, key))
    k = key[order]
    e = etype[order]
    bounds = np.flatnonzero(k[1:] != k[:-1]) + 1
    starts = np.concatenate(([0], bounds))
    ends = np.concatenate((bounds, [len(k)]))
    terminal = {
        int(TaskEvent.EVICT),
        int(TaskEvent.FAIL),
        int(TaskEvent.FINISH),
        int(TaskEvent.KILL),
        int(TaskEvent.LOST),
    }
    for s, t in zip(starts, ends):
        state = "dead"  # before first SUBMIT nothing has happened
        for code in e[s:t]:
            code = int(code)
            if code == int(TaskEvent.SUBMIT):
                _check(state == "dead", "SUBMIT while task is alive")
                state = "pending"
            elif code == int(TaskEvent.SCHEDULE):
                _check(state == "pending", "SCHEDULE without pending task")
                state = "running"
            elif code in terminal:
                _check(state == "running", "terminal event without running task")
                state = "dead"
            elif code == int(TaskEvent.UPDATE):
                _check(state != "dead", "UPDATE on a dead task")
