"""reprolint — static analysis enforcing the reproduction's invariants.

A small checker framework (registry, per-file AST walking, structured
diagnostics, per-line suppressions, text/JSON reporters) plus five
built-in rules:

========  ====================  ==================================================
rule id   name                  protects
========  ====================  ==================================================
REP101    rng-discipline        seeded determinism of every statistic
REP201    schema-contract       ``table["column"]`` names a declared column
REP301    layering              the core->traces->synth/hostload->sim->
                                experiments DAG stays acyclic
REP401    registry-completeness every experiment is runnable and referenced
REP501    wall-clock-ban        outputs depend on (inputs, seed), not on "now"
========  ====================  ==================================================

Run via the ``repro-lint`` console script or programmatically through
:func:`lint_paths`.
"""

from .diagnostics import Diagnostic, Severity
from .engine import FileContext, LintRun, lint_paths
from .registry import Checker, Rule, all_checkers, register

__all__ = [
    "Checker",
    "Diagnostic",
    "FileContext",
    "LintRun",
    "Rule",
    "Severity",
    "all_checkers",
    "lint_paths",
    "register",
]
