"""Checker registry: rule metadata plus the decorator checkers use."""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

if TYPE_CHECKING:  # pragma: no cover
    from .diagnostics import Diagnostic
    from .engine import FileContext

__all__ = [
    "Rule",
    "Checker",
    "register",
    "all_checkers",
    "get_rule",
    "iter_rules",
]


@dataclass(frozen=True)
class Rule:
    """Identity and documentation of one lint rule."""

    id: str  # "REP101"
    name: str  # "rng-discipline"
    summary: str  # one-line description for --list-rules
    doc: str = ""  # longer prose for --explain (checker __doc__ fallback)
    example: str = ""  # minimal flagged snippet for --explain


class Checker(Protocol):
    """A checker walks one file's AST and yields diagnostics."""

    rule: Rule

    def check(self, ctx: "FileContext") -> Iterator["Diagnostic"]: ...


_CHECKERS: dict[str, type] = {}


def register(rule: Rule):
    """Class decorator: attach ``rule`` and add the checker to the registry."""

    def decorate(cls: type) -> type:
        if rule.id in _CHECKERS:
            raise ValueError(f"duplicate rule id {rule.id!r}")
        cls.rule = rule
        _CHECKERS[rule.id] = cls
        return cls

    return decorate


def all_checkers() -> list[Checker]:
    """Instantiate every registered checker, sorted by rule id."""
    from . import checkers as _checkers  # noqa: F401  (triggers registration)

    return [_CHECKERS[rule_id]() for rule_id in sorted(_CHECKERS)]


def get_rule(rule_id: str) -> Rule:
    from . import checkers as _checkers  # noqa: F401

    return _CHECKERS[rule_id].rule


def iter_rules() -> Iterable[Rule]:
    from . import checkers as _checkers  # noqa: F401

    return [_CHECKERS[rule_id].rule for rule_id in sorted(_CHECKERS)]
