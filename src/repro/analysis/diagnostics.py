"""Structured diagnostics emitted by reprolint checkers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(enum.IntEnum):
    """Diagnostic severity; ERROR fails the lint run."""

    WARNING = 1
    ERROR = 2


@dataclass(frozen=True)
class Diagnostic:
    """One finding: where it is, which rule fired, and how to fix it."""

    path: str  # project-relative posix path
    line: int  # 1-based
    col: int  # 0-based, as in the AST
    rule_id: str  # e.g. "REP101"
    message: str
    severity: Severity = Severity.ERROR
    hint: str = ""  # short "how to fix" suggestion
    # Related locations in the same file: ((line, note), ...) — the
    # evidence chain behind a flow finding (write sites, escape points).
    related: tuple[tuple[int, str], ...] = ()

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": self.severity.name.lower(),
            "message": self.message,
            "hint": self.hint,
        }
        if self.related:
            data["related"] = [
                {"line": line, "note": note} for line, note in self.related
            ]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Diagnostic":
        """Inverse of :meth:`to_dict` (used by the incremental cache)."""
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),
            col=int(data["col"]),
            rule_id=str(data["rule"]),
            message=str(data["message"]),
            severity=Severity[str(data["severity"]).upper()],
            hint=str(data.get("hint", "")),
            related=tuple(
                (int(item["line"]), str(item["note"]))
                for item in data.get("related", ())
            ),
        )


def sort_key(diag: Diagnostic) -> tuple[str, int, int, str]:
    return (diag.path, diag.line, diag.col, diag.rule_id)


@dataclass
class DiagnosticSink:
    """Collector passed to checkers; applies per-line suppressions.

    ``used`` records which ``(line, directive-code)`` pairs actually
    suppressed a finding — the raw material of REP701
    (unused-suppression).
    """

    suppressed: dict[int, set[str]] = field(default_factory=dict)
    items: list[Diagnostic] = field(default_factory=list)
    used: set[tuple[int, str]] = field(default_factory=set)

    def emit(self, diag: Diagnostic) -> None:
        rules = self.suppressed.get(diag.line, ())
        if diag.rule_id in rules:
            self.used.add((diag.line, diag.rule_id))
            return
        if "all" in rules:
            self.used.add((diag.line, "all"))
            return
        self.items.append(diag)
