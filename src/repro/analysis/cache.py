"""Incremental lint cache: content-hash-keyed reuse of per-file results.

Two kinds of entries ride on the :class:`repro.core.diskcache.DiskCache`
machinery (atomic writes, LRU eviction, quarantine-on-corruption):

* **summaries** — a file's :class:`~repro.analysis.graph.ModuleSummary`,
  keyed by ``(engine version, config fingerprint, content hash)``. The
  summary depends on nothing but the file itself, so a warm run
  rebuilds the whole-program graph without parsing anything.
* **diagnostics** — a file's final findings, keyed additionally by the
  content hashes of its transitive package-internal imports (the
  callee summaries its cross-module rules consult), the project-facts
  fingerprint (schema columns, metrics keys, registry ids) and the
  fingerprint of the input schemas inferred *for* its functions from
  call sites elsewhere. That last component points against the import
  direction: REP202 facts flow caller -> callee, so a caller edit that
  changes what a callee receives re-keys the callee too, keeping the
  cache sound without hashing the whole reverse closure.

Editing one file therefore invalidates exactly: the file itself, every
file whose import closure contains it, and any file whose inferred
input schemas the edit changed. Everything else is served from cache.
"""

from __future__ import annotations

from pathlib import Path

from ..core.diskcache import MISS, DiskCache, cache_key

__all__ = ["LintCache", "MISS"]

#: Bump when summary shape, diagnostic semantics or key derivation
#: change; old entries then miss instead of decoding garbage.
ENGINE_VERSION = "repro-lint/4"


class LintCache:
    """Disk-backed store for per-file summaries and diagnostics."""

    def __init__(self, root: str | Path) -> None:
        # Entries are tiny (a summary or a diagnostic list per file);
        # budget by count, two entries per tree file plus headroom.
        self._cache = DiskCache(
            Path(root), max_bytes=256 * 1024**2, max_entries=4096
        )

    # -- keys -----------------------------------------------------------------

    @staticmethod
    def summary_key(config_fp: str, src_hash: str) -> str:
        return cache_key(
            kind="reprolint-summary",
            engine=ENGINE_VERSION,
            config=config_fp,
            src=src_hash,
        )

    @staticmethod
    def diagnostics_key(
        config_fp: str,
        facts_fp: str,
        src_hash: str,
        closure_hashes: tuple[str, ...],
        flow_fp: str,
    ) -> str:
        return cache_key(
            kind="reprolint-diags",
            engine=ENGINE_VERSION,
            config=config_fp,
            facts=facts_fp,
            src=src_hash,
            closure=tuple(sorted(closure_hashes)),
            flow=flow_fp,
        )

    # -- entries --------------------------------------------------------------

    def get(self, key: str) -> object:
        return self._cache.get(key)

    def put(self, key: str, value: object) -> None:
        self._cache.put(key, value)

    @property
    def stats(self):
        return self._cache.stats
