"""reprolint engine: file discovery, AST parsing, suppression, dispatch."""

from __future__ import annotations

import ast
import io
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from .config import LintConfig
from .diagnostics import Diagnostic, DiagnosticSink, Severity, sort_key
from .project import ProjectContext, build_project_context, find_project_root
from .registry import Checker, all_checkers

__all__ = ["FileContext", "lint_paths", "LintRun"]

_SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_,\- ]+)")

#: Path fragments that mark a file as test/benchmark code; RNG and
#: wall-clock rules do not apply there.
_TEST_MARKERS = ("tests/", "benchmarks/", "conftest", "test_")


@dataclass
class FileContext:
    """Everything a checker may consult about the file under analysis."""

    path: Path
    relpath: str  # project-relative posix path
    source: str
    tree: ast.Module
    project: ProjectContext
    module: str | None = None  # dotted module name, when resolvable
    is_package: bool = False  # true for package __init__ files
    is_test: bool = False

    @property
    def config(self) -> LintConfig:
        return self.project.config


@dataclass
class LintRun:
    """Outcome of one lint invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Diagnostic] = field(default_factory=list)

    @property
    def all_diagnostics(self) -> list[Diagnostic]:
        return sorted(self.diagnostics + self.parse_errors, key=sort_key)

    @property
    def exit_code(self) -> int:
        return 1 if any(
            d.severity >= Severity.ERROR for d in self.all_diagnostics
        ) else 0


def _suppressions(source: str) -> dict[int, set[str]]:
    """Map line number -> rule ids disabled on that line.

    Uses the tokenizer so string literals that merely *contain* the
    marker do not suppress anything; falls back to a per-line regex scan
    if the file does not tokenize.
    """
    table: dict[int, set[str]] = {}

    def record(line: int, spec: str) -> None:
        rules = {part.strip() for part in spec.split(",") if part.strip()}
        if rules:
            table.setdefault(line, set()).update(rules)

    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                match = _SUPPRESS_RE.search(tok.string)
                if match:
                    record(tok.start[0], match.group(1))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if match:
                record(lineno, match.group(1))
    return table


def _module_name(relpath: str, config: LintConfig) -> str | None:
    """Derive ``repro.core.fit`` from ``src/repro/core/fit.py``."""
    parts = PurePosixPath(relpath).with_suffix("").parts
    for src_root in config.src_roots:
        root_parts = PurePosixPath(src_root).parts
        if parts[: len(root_parts)] == root_parts:
            mod_parts = parts[len(root_parts) :]
            if mod_parts and mod_parts[-1] == "__init__":
                mod_parts = mod_parts[:-1]
            return ".".join(mod_parts) if mod_parts else None
    return None


def _is_test_path(relpath: str) -> bool:
    name = PurePosixPath(relpath).name
    return (
        relpath.startswith(("tests/", "benchmarks/"))
        or "/tests/" in relpath
        or "/benchmarks/" in relpath
        or name.startswith(("test_", "conftest"))
    )


def _collect_files(paths: Sequence[Path], config: LintConfig, root: Path) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            relpath = _relpath(resolved, root)
            if config.path_excluded(relpath):
                continue
            files.append(resolved)
    return files


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    checkers: Sequence[Checker] | None = None,
    project: ProjectContext | None = None,
) -> LintRun:
    """Lint files/directories and return the collected diagnostics.

    ``root`` defaults to the nearest ancestor of the first path that
    contains a ``pyproject.toml`` (whose ``[tool.reprolint]`` section,
    if any, configures the run).
    """
    resolved_paths = [Path(p) for p in paths]
    if not resolved_paths:
        raise ValueError("lint_paths requires at least one path")
    root_path = (
        Path(root).resolve()
        if root is not None
        else find_project_root(resolved_paths[0].resolve())
    )
    if project is None:
        project = build_project_context(root_path)
    config = project.config
    active = [
        checker
        for checker in (checkers if checkers is not None else all_checkers())
        if config.rule_enabled(checker.rule.id)
    ]

    run = LintRun()
    for file_path in _collect_files(resolved_paths, config, root_path):
        relpath = _relpath(file_path, root_path)
        try:
            source = file_path.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file_path))
        except (OSError, SyntaxError, UnicodeDecodeError) as exc:
            run.parse_errors.append(
                Diagnostic(
                    path=relpath,
                    line=getattr(exc, "lineno", None) or 1,
                    col=0,
                    rule_id="REP000",
                    message=f"could not parse file: {exc}",
                    hint="fix the syntax error or exclude the file",
                )
            )
            continue
        ctx = FileContext(
            path=file_path,
            relpath=relpath,
            source=source,
            tree=tree,
            project=project,
            module=_module_name(relpath, config),
            is_package=PurePosixPath(relpath).name == "__init__.py",
            is_test=_is_test_path(relpath),
        )
        sink = DiagnosticSink(suppressed=_suppressions(source))
        for checker in active:
            if config.rule_excluded(checker.rule.id, relpath):
                continue
            for diag in checker.check(ctx):
                sink.emit(diag)
        run.diagnostics.extend(sink.items)
        run.files_checked += 1
    run.diagnostics.sort(key=sort_key)
    return run
