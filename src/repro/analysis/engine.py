"""reprolint engine: discovery, parsing, whole-program dispatch.

The run proceeds in phases:

1. **collect + hash** — gather the target files, read each once and
   record its content hash (the currency of the incremental cache).
2. **summarize** — produce a picklable :class:`ModuleSummary` per file
   (cached by content hash; parallel with ``jobs > 1``), then assemble
   the :class:`~repro.analysis.graph.ProjectGraph` the flow-sensitive
   rules consult. A warm cache rebuilds the graph without parsing.
3. **analyze** — for each file whose diagnostics key (content hash +
   transitive-import-closure hashes + cross-module flow facts; see
   :mod:`repro.analysis.cache`) misses, parse and run the checkers,
   route findings through the suppression sink, then derive REP701
   (unused-suppression) from the sink's usage accounting. Cache hits
   skip the file entirely.

Suppression comments are parsed with the tokenizer so string literals
that merely contain the marker never suppress anything; a comment that
*starts* the ``reprolint:`` marker but does not form a well-shaped
``disable=<codes>`` directive is recorded as malformed and surfaced by
REP701 instead of being silently ignored.
"""

from __future__ import annotations

import ast
import hashlib
import io
import os
import re
import tokenize
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from ..core.diskcache import MISS, fingerprint
from .cache import LintCache
from .config import LintConfig
from .diagnostics import Diagnostic, DiagnosticSink, Severity, sort_key
from .graph import (
    ModuleSummary,
    ProjectGraph,
    build_project_graph,
    summarize_module,
)
from .project import ProjectContext, build_project_context, find_project_root
from .registry import Checker, all_checkers

__all__ = ["FileContext", "lint_paths", "LintRun", "SuppressionSpec"]

#: Path fragments that mark a file as test/benchmark code; RNG and
#: wall-clock rules do not apply there.
_TEST_MARKERS = ("tests/", "benchmarks/", "conftest", "test_")


@dataclass
class FileContext:
    """Everything a checker may consult about the file under analysis."""

    path: Path
    relpath: str  # project-relative posix path
    source: str
    tree: ast.Module
    project: ProjectContext
    module: str | None = None  # dotted module name, when resolvable
    is_package: bool = False  # true for package __init__ files
    is_test: bool = False
    #: Whole-program graph; present whenever the engine built one
    #: (checkers with ``requires_graph`` read it).
    graph: ProjectGraph | None = None

    @property
    def config(self) -> LintConfig:
        return self.project.config


@dataclass
class LintRun:
    """Outcome of one lint invocation."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    files_checked: int = 0
    parse_errors: list[Diagnostic] = field(default_factory=list)
    #: Files whose checkers actually ran this invocation.
    files_analyzed: int = 0
    #: Files served wholesale from the incremental cache.
    files_cached: int = 0

    @property
    def all_diagnostics(self) -> list[Diagnostic]:
        return sorted(self.diagnostics + self.parse_errors, key=sort_key)

    @property
    def exit_code(self) -> int:
        return 1 if any(
            d.severity >= Severity.ERROR for d in self.all_diagnostics
        ) else 0


# -- suppression comments -----------------------------------------------------

_MARKER_RE = re.compile(r"#\s*reprolint\s*:\s*(?P<rest>.*)$")
_DISABLE_RE = re.compile(r"^disable\s*=\s*(?P<codes>.*)$")
_CODE_RE = re.compile(r"^(all|[A-Za-z][A-Za-z0-9_\-]*)$")


@dataclass(frozen=True)
class SuppressionSpec:
    """One parsed ``# reprolint: ...`` comment."""

    line: int
    codes: tuple[str, ...] = ()
    #: Human-readable defect when the directive is not well-shaped; a
    #: malformed spec suppresses nothing and REP701 reports it.
    malformed: str | None = None


def _parse_directive(line: int, comment: str) -> SuppressionSpec | None:
    match = _MARKER_RE.search(comment)
    if match is None:
        return None
    rest = match.group("rest").strip()
    directive = _DISABLE_RE.match(rest)
    if directive is None:
        word = rest.split("=", 1)[0].split()[0] if rest else ""
        if word == "disable":
            return SuppressionSpec(line, (), "missing '=' after 'disable'")
        if not rest:
            return SuppressionSpec(line, (), "missing directive")
        return SuppressionSpec(
            line, (), f"unknown directive {rest!r} (only 'disable=' is supported)"
        )
    raw = directive.group("codes").strip()
    if not raw:
        return SuppressionSpec(line, (), "empty rule list after 'disable='")
    codes: list[str] = []
    for part in (p.strip() for p in raw.split(",")):
        if not part:
            return SuppressionSpec(line, (), "empty rule id in code list")
        if not _CODE_RE.match(part):
            return SuppressionSpec(
                line, (), f"invalid rule id {part!r} (comma-separate rule ids)"
            )
        codes.append(part)
    return SuppressionSpec(line, tuple(codes), None)


def _parse_suppressions(source: str) -> list[SuppressionSpec]:
    """Parse every suppression comment in the file.

    Uses the tokenizer so string literals that merely *contain* the
    marker do not suppress anything; falls back to a per-line scan if
    the file does not tokenize.
    """
    specs: list[SuppressionSpec] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                spec = _parse_directive(tok.start[0], tok.string)
                if spec is not None:
                    specs.append(spec)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        specs = []
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" not in line:
                continue
            spec = _parse_directive(lineno, line[line.index("#") :])
            if spec is not None:
                specs.append(spec)
    return specs


def _suppression_table(specs: Iterable[SuppressionSpec]) -> dict[int, set[str]]:
    """line -> rule ids disabled there (malformed specs disable nothing)."""
    table: dict[int, set[str]] = {}
    for spec in specs:
        if spec.malformed is None and spec.codes:
            table.setdefault(spec.line, set()).update(spec.codes)
    return table


# -- file discovery -----------------------------------------------------------


def _module_name(relpath: str, config: LintConfig) -> str | None:
    """Derive ``repro.core.fit`` from ``src/repro/core/fit.py``."""
    parts = PurePosixPath(relpath).with_suffix("").parts
    for src_root in config.src_roots:
        root_parts = PurePosixPath(src_root).parts
        if parts[: len(root_parts)] == root_parts:
            mod_parts = parts[len(root_parts) :]
            if mod_parts and mod_parts[-1] == "__init__":
                mod_parts = mod_parts[:-1]
            return ".".join(mod_parts) if mod_parts else None
    return None


def _is_test_path(relpath: str) -> bool:
    name = PurePosixPath(relpath).name
    return (
        relpath.startswith(("tests/", "benchmarks/"))
        or "/tests/" in relpath
        or "/benchmarks/" in relpath
        or name.startswith(("test_", "conftest"))
    )


def _collect_files(paths: Sequence[Path], config: LintConfig, root: Path) -> list[Path]:
    files: list[Path] = []
    seen: set[Path] = set()
    for path in paths:
        candidates: Iterable[Path]
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            relpath = _relpath(resolved, root)
            if config.path_excluded(relpath):
                continue
            files.append(resolved)
    return files


def _relpath(path: Path, root: Path) -> str:
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


@dataclass
class _FileInfo:
    """One collected file, read exactly once."""

    path: Path
    relpath: str
    source: str
    src_hash: str
    module: str | None
    is_package: bool
    is_test: bool


# -- fingerprints -------------------------------------------------------------


def _facts_fingerprint(
    project: ProjectContext, config: LintConfig, root: Path
) -> str:
    """Digest of every non-file input the checkers consult.

    Includes the on-disk listings REP401 reads directly (experiment
    modules, reference outputs), so deleting a results file re-keys the
    registry's diagnostics even though no linted file changed.
    """
    results_dir = root / config.results_dir
    experiments_dir = root / config.experiments_package
    return fingerprint(
        {
            "table_columns": tuple(sorted(project.table_columns)),
            "metrics_keys": tuple(sorted(project.metrics_keys)),
            "metrics_key_patterns": tuple(project.metrics_key_patterns),
            "experiment_ids": tuple(sorted(project.experiment_ids)),
            "registered_modules": tuple(sorted(project.registered_modules)),
            "results_files": tuple(
                sorted(p.name for p in results_dir.glob("*.txt"))
            )
            if results_dir.is_dir()
            else (),
            "experiment_modules": tuple(
                sorted(p.name for p in experiments_dir.glob("*.py"))
            )
            if experiments_dir.is_dir()
            else (),
        }
    )


def _diagnostics_key(
    info: _FileInfo,
    graph: ProjectGraph,
    module_hashes: dict[str, str],
    config_fp: str,
    facts_fp: str,
    worker_roots: tuple[str, ...] = (),
) -> str:
    closure: tuple[str, ...] = ()
    flow = "no-module"
    if info.module is not None:
        closure = tuple(
            module_hashes[mod]
            for mod in graph.import_closure(info.module)
            if mod in module_hashes
        )
        # Cross-module facts this file's diagnostics depend on that the
        # import closure does NOT cover, because they point *against*
        # import direction: schemas inferred from callers (REP202),
        # worker-reachability verdicts from shipping sites (REP103), and
        # incoming resource states met over call sites (REP801-REP803).
        flow = fingerprint(
            (
                graph.schemas_for_module(info.module),
                graph.effect_facts_for_module(info.module, worker_roots),
                graph.lifecycle_facts_for_module(info.module),
            )
        )
    return LintCache.diagnostics_key(
        config_fp, facts_fp, info.src_hash, closure, flow
    )


# -- per-file analysis --------------------------------------------------------


def _parse_error_payload(relpath: str, summary: ModuleSummary) -> dict:
    diag = Diagnostic(
        path=relpath,
        line=summary.parse_error_line,
        col=0,
        rule_id="REP000",
        message=f"could not parse file: {summary.parse_error}",
        hint="fix the syntax error or exclude the file",
    )
    return {"diags": [], "parse": [diag.to_dict()]}


def _analyze_file(
    info: _FileInfo,
    project: ProjectContext,
    graph: ProjectGraph,
    active: Sequence[Checker],
    known_rules: frozenset[str],
) -> dict:
    """Run every checker on one (parseable) file; returns the payload
    the incremental cache stores: plain dicts, nothing else."""
    config = project.config
    tree = ast.parse(info.source, filename=str(info.path))
    specs = _parse_suppressions(info.source)
    sink = DiagnosticSink(suppressed=_suppression_table(specs))
    ctx = FileContext(
        path=info.path,
        relpath=info.relpath,
        source=info.source,
        tree=tree,
        project=project,
        module=info.module,
        is_package=info.is_package,
        is_test=info.is_test,
        graph=graph,
    )
    after_all: Checker | None = None
    for checker in active:
        if getattr(checker, "runs_after_all", False):
            after_all = checker
            continue
        if config.rule_excluded(checker.rule.id, info.relpath):
            continue
        for diag in checker.check(ctx):
            sink.emit(diag)
    if (
        after_all is not None
        and not info.is_test
        and not config.rule_excluded(after_all.rule.id, info.relpath)
    ):
        # Imported here: the checkers package pulls in this module.
        from .checkers.suppressions import suppression_diagnostics

        # REP701 candidates pass through the sink themselves, so a
        # disable=REP701 directive works like any suppression.
        for diag in suppression_diagnostics(
            info.relpath, specs, sink.used, known_rules
        ):
            sink.emit(diag)
    return {"diags": [d.to_dict() for d in sink.items], "parse": []}


# -- worker-pool plumbing -----------------------------------------------------

_POOL_STATE: dict[str, object] = {}


def _pool_init(
    project: ProjectContext,
    graph: ProjectGraph,
    checker_ids: tuple[str, ...],
    known_rules: frozenset[str],
) -> None:
    by_id = {checker.rule.id: checker for checker in all_checkers()}
    _POOL_STATE["project"] = project
    _POOL_STATE["graph"] = graph
    _POOL_STATE["checkers"] = tuple(
        by_id[rule_id] for rule_id in checker_ids if rule_id in by_id
    )
    _POOL_STATE["known_rules"] = known_rules


def _pool_analyze(info: _FileInfo) -> tuple[str, dict]:
    payload = _analyze_file(
        info,
        _POOL_STATE["project"],  # type: ignore[arg-type]
        _POOL_STATE["graph"],  # type: ignore[arg-type]
        _POOL_STATE["checkers"],  # type: ignore[arg-type]
        _POOL_STATE["known_rules"],  # type: ignore[arg-type]
    )
    return info.relpath, payload


def _summarize_task(task: tuple[str, str | None, str, str]) -> ModuleSummary:
    source, module, relpath, package = task
    return summarize_module(source, module, relpath, package)


def _resolve_jobs(jobs: int) -> int:
    if jobs > 0:
        return jobs
    return max(1, os.cpu_count() or 1)


# -- the run ------------------------------------------------------------------


def _load_summaries(
    infos: Sequence[_FileInfo],
    config: LintConfig,
    cache: LintCache | None,
    config_fp: str,
    jobs: int,
) -> dict[str, ModuleSummary]:
    summaries: dict[str, ModuleSummary] = {}
    todo: list[_FileInfo] = []
    keys: dict[str, str] = {}
    for info in infos:
        if cache is not None:
            key = LintCache.summary_key(config_fp, info.src_hash)
            keys[info.relpath] = key
            hit = cache.get(key)
            if isinstance(hit, ModuleSummary):
                summaries[info.relpath] = hit
                continue
        todo.append(info)
    tasks = [(i.source, i.module, i.relpath, config.package) for i in todo]
    if jobs > 1 and len(tasks) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_summarize_task, tasks, chunksize=8))
    else:
        results = [_summarize_task(task) for task in tasks]
    for info, summary in zip(todo, results):
        summaries[info.relpath] = summary
        if cache is not None:
            cache.put(keys[info.relpath], summary)
    return summaries


def lint_paths(
    paths: Sequence[str | Path],
    root: str | Path | None = None,
    checkers: Sequence[Checker] | None = None,
    project: ProjectContext | None = None,
    *,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> LintRun:
    """Lint files/directories and return the collected diagnostics.

    ``root`` defaults to the nearest ancestor of the first path that
    contains a ``pyproject.toml`` (whose ``[tool.reprolint]`` section,
    if any, configures the run). ``jobs > 1`` parses and analyzes in a
    process pool (``jobs=0`` means one per CPU); ``cache_dir`` enables
    the incremental cache, after which unchanged files are served
    without being re-analyzed. ``select`` narrows the run to exactly
    those rules; ``ignore`` drops rules on top of whatever the config
    enables. Both are folded into the effective config *before* its
    fingerprint is taken, so filtered runs key their own cache entries.
    """
    resolved_paths = [Path(p) for p in paths]
    if not resolved_paths:
        raise ValueError("lint_paths requires at least one path")
    root_path = (
        Path(root).resolve()
        if root is not None
        else find_project_root(resolved_paths[0].resolve())
    )
    if project is None:
        project = build_project_context(root_path)
    config = project.config
    if select or ignore:
        from dataclasses import replace

        from .registry import iter_rules

        known = frozenset(rule.id for rule in iter_rules())
        unknown = sorted(set((*select, *ignore)) - known)
        if unknown:
            raise ValueError(
                f"unknown rule id(s): {', '.join(unknown)}; "
                f"known rules: {', '.join(sorted(known))}"
            )
        config = replace(
            config,
            enable=tuple(select) if select else config.enable,
            ignore=tuple(dict.fromkeys((*config.ignore, *ignore))),
        )
        project = replace(project, config=config)
    custom_checkers = checkers is not None
    active = [
        checker
        for checker in (checkers if custom_checkers else all_checkers())
        if config.rule_enabled(checker.rule.id)
    ]
    # Ad-hoc checker instances may not survive pickling; stay serial.
    jobs = 1 if custom_checkers else _resolve_jobs(jobs)

    from .registry import iter_rules

    known_rules = frozenset(rule.id for rule in iter_rules()) | {"REP000"}

    cache = LintCache(cache_dir) if cache_dir is not None else None
    config_fp = fingerprint(config) if cache is not None else ""
    facts_fp = (
        _facts_fingerprint(project, config, root_path)
        if cache is not None
        else ""
    )

    run = LintRun()
    infos: list[_FileInfo] = []
    for file_path in _collect_files(resolved_paths, config, root_path):
        relpath = _relpath(file_path, root_path)
        try:
            raw = file_path.read_bytes()
            source = raw.decode("utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            run.parse_errors.append(
                Diagnostic(
                    path=relpath,
                    line=1,
                    col=0,
                    rule_id="REP000",
                    message=f"could not parse file: {exc}",
                    hint="fix the syntax error or exclude the file",
                )
            )
            continue
        infos.append(
            _FileInfo(
                path=file_path,
                relpath=relpath,
                source=source,
                src_hash=hashlib.sha256(raw).hexdigest(),
                module=_module_name(relpath, config),
                is_package=PurePosixPath(relpath).name == "__init__.py",
                is_test=_is_test_path(relpath),
            )
        )

    summaries = _load_summaries(infos, config, cache, config_fp, jobs)
    graph = build_project_graph(
        {info.relpath: summaries[info.relpath] for info in infos},
        config.package,
    )
    module_hashes = {
        info.module: info.src_hash for info in infos if info.module
    }

    payloads: dict[str, dict] = {}
    diag_keys: dict[str, str] = {}
    pending: list[_FileInfo] = []
    for info in infos:
        if cache is not None:
            key = _diagnostics_key(
                info,
                graph,
                module_hashes,
                config_fp,
                facts_fp,
                config.worker_roots,
            )
            diag_keys[info.relpath] = key
            hit = cache.get(key)
            if isinstance(hit, dict) and "diags" in hit:
                payloads[info.relpath] = hit
                run.files_cached += 1
                continue
        pending.append(info)

    pool_infos: list[_FileInfo] = []
    for info in pending:
        summary = summaries[info.relpath]
        if summary.parse_error is not None:
            payloads[info.relpath] = _parse_error_payload(info.relpath, summary)
            run.files_analyzed += 1
        else:
            pool_infos.append(info)
    if jobs > 1 and len(pool_infos) > 1:
        from concurrent.futures import ProcessPoolExecutor

        checker_ids = tuple(checker.rule.id for checker in active)
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_pool_init,
            initargs=(project, graph, checker_ids, known_rules),
        ) as pool:
            for relpath, payload in pool.map(
                _pool_analyze, pool_infos, chunksize=4
            ):
                payloads[relpath] = payload
                run.files_analyzed += 1
    else:
        for info in pool_infos:
            payloads[info.relpath] = _analyze_file(
                info, project, graph, active, known_rules
            )
            run.files_analyzed += 1
    if cache is not None:
        for info in pending:
            cache.put(diag_keys[info.relpath], payloads[info.relpath])

    for info in infos:
        payload = payloads[info.relpath]
        if payload["parse"]:
            run.parse_errors.extend(
                Diagnostic.from_dict(d) for d in payload["parse"]
            )
        else:
            run.files_checked += 1
        run.diagnostics.extend(
            Diagnostic.from_dict(d) for d in payload["diags"]
        )
    run.diagnostics.sort(key=sort_key)
    return run
