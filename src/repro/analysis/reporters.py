"""Diagnostic reporters: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json

from .engine import LintRun

__all__ = ["render_text", "render_json"]


def render_text(run: LintRun, verbose: bool = True) -> str:
    """GCC-style ``file:line:col: RULE message`` lines plus a summary."""
    lines: list[str] = []
    for diag in run.all_diagnostics:
        lines.append(
            f"{diag.location}: {diag.rule_id} "
            f"[{diag.severity.name.lower()}] {diag.message}"
        )
        if verbose and diag.hint:
            lines.append(f"    hint: {diag.hint}")
    count = len(run.all_diagnostics)
    noun = "diagnostic" if count == 1 else "diagnostics"
    files = "file" if run.files_checked == 1 else "files"
    lines.append(
        f"reprolint: {count} {noun} in {run.files_checked} {files}"
        + ("" if count else " — clean")
    )
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    payload = {
        "files_checked": run.files_checked,
        "diagnostics": [d.to_dict() for d in run.all_diagnostics],
        "exit_code": run.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
