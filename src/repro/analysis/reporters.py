"""Diagnostic reporters: text, JSON and SARIF 2.1.0 output."""

from __future__ import annotations

import json

from .diagnostics import Severity
from .engine import LintRun

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(run: LintRun, verbose: bool = True) -> str:
    """GCC-style ``file:line:col: RULE message`` lines plus a summary."""
    lines: list[str] = []
    for diag in run.all_diagnostics:
        lines.append(
            f"{diag.location}: {diag.rule_id} "
            f"[{diag.severity.name.lower()}] {diag.message}"
        )
        if verbose and diag.hint:
            lines.append(f"    hint: {diag.hint}")
        if verbose:
            for rel_line, note in diag.related:
                lines.append(f"    note: line {rel_line}: {note}")
    count = len(run.all_diagnostics)
    noun = "diagnostic" if count == 1 else "diagnostics"
    files = "file" if run.files_checked == 1 else "files"
    cached = (
        f" (analyzed {run.files_analyzed}, cached {run.files_cached})"
        if run.files_cached
        else ""
    )
    lines.append(
        f"reprolint: {count} {noun} in {run.files_checked} {files}"
        + cached
        + ("" if count else " — clean")
    )
    return "\n".join(lines)


def render_json(run: LintRun) -> str:
    payload = {
        "files_checked": run.files_checked,
        "files_analyzed": run.files_analyzed,
        "files_cached": run.files_cached,
        "diagnostics": [d.to_dict() for d in run.all_diagnostics],
        "exit_code": run.exit_code,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


#: SARIF severity levels by diagnostic severity.
_SARIF_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning"}


def render_sarif(run: LintRun) -> str:
    """SARIF 2.1.0 log, the interchange format code-scanning UIs ingest.

    Columns are 1-based in SARIF (the AST's are 0-based, hence the +1);
    paths are emitted project-relative against ``%SRCROOT%``.
    """
    from .registry import iter_rules

    rules = [
        {
            "id": rule.id,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in iter_rules()
    ]
    rules.append(
        {
            "id": "REP000",
            "name": "parse-error",
            "shortDescription": {"text": "file could not be parsed"},
            "defaultConfiguration": {"level": "error"},
        }
    )
    results = []
    for diag in run.all_diagnostics:
        message = diag.message + (f" ({diag.hint})" if diag.hint else "")
        result = {
            "ruleId": diag.rule_id,
            "level": _SARIF_LEVELS.get(diag.severity, "warning"),
            "message": {"text": message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {
                            "startLine": diag.line,
                            "startColumn": diag.col + 1,
                        },
                    }
                }
            ],
        }
        if diag.related:
            # The evidence chain (write sites, escape points) behind a
            # flow finding, same artifact as the primary location.
            result["relatedLocations"] = [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": diag.path,
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": rel_line},
                    },
                    "message": {"text": note},
                }
                for rel_line, note in diag.related
            ]
        results.append(result)
    log = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://example.invalid/repro-lint"
                        ),
                        "rules": rules,
                    }
                },
                "results": results,
                "originalUriBaseIds": {"%SRCROOT%": {"uri": "file:///"}},
                "properties": {
                    "filesChecked": run.files_checked,
                    "filesAnalyzed": run.files_analyzed,
                    "filesCached": run.files_cached,
                },
            }
        ],
    }
    return json.dumps(log, indent=2, sort_keys=True)
