"""Built-in reprolint checkers.

Importing this package registers every checker with
:mod:`repro.analysis.registry`; add new rules by creating a module here
that applies the :func:`~repro.analysis.registry.register` decorator.
"""

from . import (  # noqa: F401
    atomic_publish,
    fsync_order,
    layering,
    lifecycle,
    ordered_sink,
    pickle_boundary,
    registry_complete,
    rng,
    rngflow,
    rowloops,
    schema_columns,
    schema_flow,
    silentexcept,
    suppressions,
    wallclock,
    worker_purity,
)
