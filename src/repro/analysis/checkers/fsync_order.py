"""REP802 — fsync ordering (rename durability).

``os.rename`` is atomic but not durable.  Two orderings matter, and the
ALICE crash-consistency study showed real systems get both wrong:

1. **Payload before publish.**  Renaming a file whose content was
   written but never fsynced can publish empty or torn content after a
   crash — the rename metadata can reach disk before the data does.
2. **Parent directory after publish.**  A rename (or unlink) changes
   the *parent directory's* entry list; only an fsync of the parent
   directory makes the new name durable.  Without it, a "successfully"
   renamed manifest can simply vanish after a power cut.

The CFG layer tracks every path through each function in a
``durable-roots`` module: a rename whose source is written-but-unsynced
on some path fires (1); a rename/unlink of a non-temporary path with no
parent-directory fsync on any path to return fires (2).  Callee
behavior is summarized through the project graph — a helper that
fsyncs, renames, and fsyncs the parent (``core.fsutil.publish_atomically``)
discharges the obligations at the call site, and a caller passing a
written-but-unsynced payload to a helper that renames *without*
fsyncing is flagged at the call.  Incoming facts work the other way:
when every resolved caller passes written-unsynced content, the
callee's own bare rename is flagged — so deleting the fsync inside a
publish helper produces a diagnostic even though the rename is in a
different function than the writes.
"""

from __future__ import annotations

from collections.abc import Iterator

from .. import cfg
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

_EXAMPLE = """\
def publish(tmp, dest):
    with open(tmp, "wb") as fh:
        fh.write(b"payload")
    os.rename(tmp, dest)      # REP802: payload never fsynced, parent
                              # directory never fsynced after the rename
"""


@register(
    Rule(
        id="REP802",
        name="fsync-ordering",
        summary=(
            "renames need a payload fsync before and a parent-directory "
            "fsync after to be crash-durable"
        ),
        example=_EXAMPLE,
    )
)
class FsyncOrderChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        if not cfg.in_durable_scope(ctx.module, ctx.config.durable_roots):
            return
        for finding in cfg.file_report(ctx):
            if finding.rule != self.rule.id:
                continue
            yield Diagnostic(
                path=ctx.relpath,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule.id,
                message=finding.message,
                hint=finding.hint,
                related=finding.related,
            )
