"""REP601 — silent broad exception swallowing ban.

The fault-tolerant runner depends on every failure being *observable*:
a worker crash becomes a classified outcome, a corrupted cache entry
becomes a quarantine counter, a malformed trace line becomes a warning.
A ``try: ... except Exception: pass`` (or a bare ``except:``) breaks
that contract — the degradation disappears without a counter, a log
line or a reclassification, and the recovery machinery upstream never
learns anything went wrong. In the recovery-critical layers
(``repro.experiments``, ``repro.core``) such handlers are banned: catch
the narrow exception you expect, or record what you swallowed.

Narrow handlers (``except OSError: pass`` for a benign filesystem race)
stay allowed — the rule only fires on ``Exception``/``BaseException``
or an untyped ``except:`` whose body does nothing but ``pass``/``...``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: Packages where silent broad handlers are banned (the layers the
#: supervised runner relies on for failure classification).
_SCOPED_PACKAGES = ("repro.experiments", "repro.core")

_BROAD_NAMES = {"Exception", "BaseException"}


def _is_broad(handler_type: ast.expr | None) -> bool:
    """True for ``except:``, ``except Exception`` / ``BaseException``,
    or a tuple containing one of those."""
    if handler_type is None:
        return True
    if isinstance(handler_type, ast.Name):
        return handler_type.id in _BROAD_NAMES
    if isinstance(handler_type, ast.Attribute):
        return handler_type.attr in _BROAD_NAMES
    if isinstance(handler_type, ast.Tuple):
        return any(_is_broad(el) for el in handler_type.elts)
    return False


def _is_silent(body: list[ast.stmt]) -> bool:
    """True when the handler body does nothing (``pass`` / ``...``)."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        ):
            continue
        return False
    return True


@register(
    Rule(
        id="REP601",
        name="silent-except-ban",
        summary=(
            "no 'except Exception: pass' (or bare except) in "
            "experiments/ and core/ — degradation must stay observable"
        ),
    )
)
class SilentExceptChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test:
            return
        module = ctx.module or ""
        if not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in _SCOPED_PACKAGES
        ):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if _is_broad(handler.type) and _is_silent(handler.body):
                    label = (
                        ast.unparse(handler.type)
                        if handler.type is not None
                        else "<bare>"
                    )
                    yield Diagnostic(
                        path=ctx.relpath,
                        line=handler.lineno,
                        col=handler.col_offset,
                        rule_id=self.rule.id,
                        message=(
                            f"broad exception handler ({label}) silently "
                            "swallows failures in a recovery-critical layer"
                        ),
                        hint=(
                            "catch the specific exception, or classify/"
                            "count the failure (ExperimentOutcome.error_kind, "
                            "Timings.count, CacheStats) before continuing"
                        ),
                    )
