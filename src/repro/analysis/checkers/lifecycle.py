"""REP803 — resource lifecycle (release on every path).

Files, file descriptors, mmaps, and process/thread pools acquired in a
function must be released on **every** path out of it — including the
exception paths, which is where leaks hide: a ``.lock`` file held
across a raised validation error blocks every later resume; a pool
left running keeps worker processes alive after the driver dies.

The CFG layer interprets each function with an abstract handle state
(``open``/``closed``/``escaped``) per acquisition site:

* a ``with`` block releases its resources on all paths (never flagged);
* ``close()``/``shutdown()``/``terminate()``/``release()``/``os.close``
  move a handle to ``closed`` — in a ``finally`` block that covers the
  exception paths too;
* ownership *escapes* are sanctioned: returning or yielding the handle,
  storing it on ``self``/a container, capturing it in a nested
  function, passing it to an unresolved callee, or passing it to a
  project callee the graph knows closes it (``closes`` action);
* anything still ``open`` at a return or at a propagating exception is
  flagged at the acquisition site, with the escaping line attached as a
  related location.

The rule runs tree-wide (tests excluded).
"""

from __future__ import annotations

from collections.abc import Iterator

from .. import cfg
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

_EXAMPLE = """\
def claim(lock_path):
    fd = os.open(lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    validate()            # REP803: if this raises, fd is never closed
    os.close(fd)
"""


@register(
    Rule(
        id="REP803",
        name="resource-lifecycle",
        summary=(
            "files, fds, mmaps and pools must be released on every path, "
            "exception paths included"
        ),
        example=_EXAMPLE,
    )
)
class ResourceLifecycleChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        for finding in cfg.file_report(ctx):
            if finding.rule != self.rule.id:
                continue
            yield Diagnostic(
                path=ctx.relpath,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule.id,
                message=finding.message,
                hint=finding.hint,
                related=finding.related,
            )
