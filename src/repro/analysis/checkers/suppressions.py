"""REP701 — unused suppression.

``# reprolint: disable=...`` comments are precision instruments: each
one asserts "this exact line would otherwise fire this exact rule". As
code moves, suppressions rot — the finding they silenced is gone, but
the comment keeps suppressing, ready to hide the next real finding on
that line. A suppression that suppresses nothing is therefore itself a
diagnostic, as are comments that never could suppress anything:
malformed directives (``disable`` without ``=``, an empty code list)
and codes naming no registered rule.

The engine drives this rule after every other checker has run on a
file (it needs to know which suppressions were actually *used*,
including by the whole-program rules); suppressing REP701 itself with
``# reprolint: disable=REP701`` on the same line works like any other
suppression, matching the pylint ``useless-suppression`` convention.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from ..diagnostics import Diagnostic
from ..registry import Rule, register


@register(
    Rule(
        id="REP701",
        name="unused-suppression",
        summary=(
            "reprolint suppression comments must suppress something: "
            "no stale, malformed or unknown-rule disable= directives"
        ),
    )
)
class UnusedSuppressionChecker:
    #: The engine runs this rule itself once per-file usage is known.
    runs_after_all = True

    def check(self, ctx) -> Iterator[Diagnostic]:  # pragma: no cover
        return iter(())


def suppression_diagnostics(
    relpath: str,
    specs: Iterable,
    used: set[tuple[int, str]],
    known_rules: frozenset[str],
) -> list[Diagnostic]:
    """REP701 findings for one file.

    ``specs`` are the parsed suppression directives (see
    ``engine.SuppressionSpec``); ``used`` holds ``(line, code)`` pairs
    that suppressed at least one diagnostic, where ``code`` is the
    directive entry that matched (a rule id or ``"all"``).
    """
    rule_id = UnusedSuppressionChecker.rule.id
    out: list[Diagnostic] = []
    for spec in specs:
        if spec.malformed is not None:
            out.append(
                Diagnostic(
                    path=relpath,
                    line=spec.line,
                    col=0,
                    rule_id=rule_id,
                    message=f"malformed suppression comment: {spec.malformed}",
                    hint="write '# reprolint: disable=REPnnn[,REPnnn...]'",
                )
            )
            continue
        for code in spec.codes:
            if code != "all" and code not in known_rules:
                out.append(
                    Diagnostic(
                        path=relpath,
                        line=spec.line,
                        col=0,
                        rule_id=rule_id,
                        message=(
                            f"suppression names unknown rule {code!r}"
                        ),
                        hint="see repro-lint --list-rules for valid ids",
                    )
                )
            elif (spec.line, code) not in used:
                what = (
                    "disable=all suppresses nothing on this line"
                    if code == "all"
                    else f"suppression of {code} suppresses nothing"
                )
                out.append(
                    Diagnostic(
                        path=relpath,
                        line=spec.line,
                        col=0,
                        rule_id=rule_id,
                        message=what,
                        hint="remove the stale suppression comment",
                    )
                )
    return out
