"""REP202 — cross-module schema flow.

REP201 checks ``table["column"]`` against the *union* of every
``*_SCHEMA`` dict — the broadest schema any table anywhere could have.
This rule is the sharp version: it infers which schema actually *flows
into* each function from its call sites, across module boundaries, and
flags column reads that no caller can satisfy.

For every function the whole-program graph knows, and every parameter
that is used like a Table (annotated ``Table``, or only ever read via
string subscripts), the inferred input schema is the union of the
column sets carried by the argument at every resolved call site —
``Table({...})`` literals, ``with_columns`` extensions, and results of
functions whose return schema is derivable, followed through package
re-exports. The inference must be *complete* (at least one call site,
and a known column set at all of them) before the rule says anything;
a single opaque caller silences it. Columns the function itself adds
to the parameter (``t.with_columns(x=...)``) are always allowed.

The division of labour with REP201: REP201 fires on columns unknown to
the global schema universe (a lexical typo), REP202 on columns that
*do* exist somewhere but are absent from every schema reaching this
function (the right name flowing to the wrong table — invisible to any
per-file pass). For parameters REP201 cannot track (no ``Table``
annotation), REP202 checks the full access set.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register


@register(
    Rule(
        id="REP202",
        name="schema-flow",
        summary=(
            "column reads must be satisfiable by the schema inferred "
            "from the function's actual call sites, across modules"
        ),
    )
)
class SchemaFlowChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.graph is None or ctx.module is None:
            return
        summary = ctx.graph.modules.get(ctx.module)
        if summary is None:
            return
        global_columns = set(ctx.project.table_columns) | set(
            ctx.config.extra_table_columns
        )
        for fn in summary.functions.values():
            for param in fn.table_params:
                inferred = ctx.graph.inferred_schema(fn.qualname, param)
                if inferred is None or not inferred.complete:
                    continue
                allowed = set(inferred.columns) | set(
                    fn.param_added.get(param, ())
                )
                annotated = param in fn.annotated_table_params
                for column, line, col in fn.param_accesses.get(param, ()):
                    if column in allowed:
                        continue
                    if annotated and column not in global_columns:
                        continue  # REP201 already reports the lexical typo
                    sites = inferred.call_sites
                    noun = "call site" if sites == 1 else "call sites"
                    yield Diagnostic(
                        path=ctx.relpath,
                        line=line,
                        col=col,
                        rule_id=self.rule.id,
                        message=(
                            f"column {column!r} (on {param!r}) is absent "
                            f"from every schema flowing into "
                            f"{fn.qualname}() ({sites} {noun}: "
                            f"{_preview(inferred.columns)})"
                        ),
                        hint=(
                            "pass a table carrying the column, or drop "
                            "the read"
                        ),
                    )


def _preview(columns: tuple[str, ...], limit: int = 4) -> str:
    shown = ", ".join(columns[:limit])
    return shown + (", ..." if len(columns) > limit else "")
