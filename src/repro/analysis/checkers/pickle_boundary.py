"""REP303 — pickle boundary (statically unpicklable shipped values).

Everything that crosses a process boundary is pickled: arguments to
``pool.submit``/``pool.map``, ``Process(target=..., args=...)``
payloads, values pushed through one-shot result pipes
(``conn.send(...)``), and objects stored through the disk-cache codec
(``cache.put(...)``). CPython's pickle resolves functions and classes
by *qualified name import*, so four value shapes fail at runtime no
matter their contents:

* **lambdas** — no importable name;
* **local functions** — defined inside another function, unreachable
  by qualname;
* **local classes** — same, for ``class`` statements in function
  bodies;
* **open handles** — file objects from ``open(...)`` capture OS state
  that cannot be serialized.

The graph's symbolic evaluation tags values with these shapes as they
flow through assignments, ``with`` bindings, and call results inside a
function body; every boundary call site then checks what it ships.
Flagging happens *at the shipping site* — where the fix belongs —
rather than at the definition, which is often fine on its own.

The failure is especially sharp under the spawn start method (the
default on macOS/Windows, and what the ROADMAP's out-of-core
map-reduce will use): fork can sometimes smuggle unpicklable state
through copy-on-write, so code that "works on Linux" breaks the moment
the start method changes. This rule makes the property hold statically
everywhere.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

_EXAMPLE = """\
def run_all(pool, shards):
    def work(shard):                  # local function
        return shard.total()
    return [pool.submit(work, s) for s in shards]
    # REP303: 'work' cannot be pickled; move it to module level
"""

_KIND_DESC = {
    "lambda": "a lambda",
    "localfn": "a function defined inside another function",
    "localcls": "a class defined inside a function",
    "handle": "an open file handle",
}

_BOUNDARY_DESC = {
    "pool-submit": "pool submission",
    "pool-map": "pool map",
    "process": "Process() construction",
    "pipe-send": "pipe send",
    "cache-put": "disk-cache put",
    "pool-init": "pool initializer",
}

_HINTS = {
    "lambda": "replace the lambda with a module-level function",
    "localfn": "move the function to module level (or functools.partial "
    "of a module-level function)",
    "localcls": "move the class to module level",
    "handle": "ship the path and open the file inside the worker",
}


@register(
    Rule(
        id="REP303",
        name="pickle-boundary",
        summary=(
            "values crossing a process boundary (pool submit args, "
            "result pipes, disk-cache payloads) must be statically "
            "picklable"
        ),
        example=_EXAMPLE,
    )
)
class PickleBoundaryChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        summary = ctx.graph.modules.get(ctx.module)
        if summary is None:
            return
        for site in summary.boundaries:
            where = _BOUNDARY_DESC.get(site.kind, site.kind)
            for val in site.values:
                desc = _KIND_DESC.get(val.kind)
                if desc is None:
                    continue
                name = f" {val.detail!r}" if val.detail else ""
                yield Diagnostic(
                    path=ctx.relpath,
                    line=site.line,
                    col=site.col,
                    rule_id=self.rule.id,
                    message=(
                        f"{site.desc} ships {desc}{name} as {val.label} "
                        f"across a process boundary ({where}); pickle "
                        "resolves by qualified name and will fail"
                    ),
                    hint=_HINTS[val.kind],
                )
