"""REP401 — experiment registry completeness.

Every ``repro/experiments/*.py`` experiment module must be registered in
``registry.py`` (otherwise ``run_all``/the scorecard silently skip it),
and every registered experiment id must have a reference output under
``benchmarks/results/<id>.txt`` (otherwise there is nothing to compare
a rerun against). The rule fires while linting ``registry.py`` itself,
so the diagnostics land where the fix goes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator
from pathlib import PurePosixPath

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register


@register(
    Rule(
        id="REP401",
        name="registry-completeness",
        summary=(
            "every experiment module is registered and every registered "
            "experiment has a benchmarks/results reference file"
        ),
    )
)
class RegistryCompletenessChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        config = ctx.config
        registry_rel = PurePosixPath(config.experiments_package) / "registry.py"
        if PurePosixPath(ctx.relpath) != registry_rel:
            return

        experiments_dir = ctx.project.root / config.experiments_package
        exempt = set(config.non_experiment_modules)
        module_names = {
            path.stem
            for path in experiments_dir.glob("*.py")
            if path.stem not in exempt
        }

        imported: dict[str, int] = {}
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.ImportFrom)
                and node.level == 1
                and not node.module
            ):
                for alias in node.names:
                    imported[alias.name] = node.lineno

        for module in sorted(module_names - set(imported)):
            yield Diagnostic(
                path=ctx.relpath,
                line=1,
                col=0,
                rule_id=self.rule.id,
                message=(
                    f"experiment module {module!r} is not imported by the "
                    "registry"
                ),
                hint=(
                    "import it and add an entry to EXPERIMENTS, or list it "
                    "in non-experiment-modules"
                ),
            )

        experiment_ids, referenced_modules = self._experiments_dict(ctx.tree)

        for module, line in sorted(imported.items()):
            if module in module_names and module not in referenced_modules:
                yield Diagnostic(
                    path=ctx.relpath,
                    line=line,
                    col=0,
                    rule_id=self.rule.id,
                    message=(
                        f"experiment module {module!r} is imported but has "
                        "no EXPERIMENTS entry"
                    ),
                    hint="add an '<id>: module.run' entry to EXPERIMENTS",
                )

        results_dir = ctx.project.root / config.results_dir
        for exp_id, line in sorted(experiment_ids.items()):
            if not (results_dir / f"{exp_id}.txt").is_file():
                yield Diagnostic(
                    path=ctx.relpath,
                    line=line,
                    col=0,
                    rule_id=self.rule.id,
                    message=(
                        f"experiment {exp_id!r} has no reference output "
                        f"{config.results_dir}/{exp_id}.txt"
                    ),
                    hint=(
                        "run the benchmark suite to materialize the "
                        "reference output"
                    ),
                )

    @staticmethod
    def _experiments_dict(
        tree: ast.Module,
    ) -> tuple[dict[str, int], set[str]]:
        """Keys of the EXPERIMENTS dict plus the module names its values use."""
        ids: dict[str, int] = {}
        modules: set[str] = set()
        for node in tree.body:
            value = (
                node.value
                if isinstance(node, (ast.Assign, ast.AnnAssign))
                else None
            )
            if not isinstance(value, ast.Dict):
                continue
            targets = (
                node.targets
                if isinstance(node, ast.Assign)
                else [node.target]
            )
            if not any(
                isinstance(t, ast.Name) and t.id == "EXPERIMENTS"
                for t in targets
            ):
                continue
            for key, val in zip(value.keys, value.values):
                if isinstance(key, ast.Constant) and isinstance(key.value, str):
                    ids[key.value] = key.lineno
                root = val
                while isinstance(root, ast.Attribute):
                    root = root.value
                if isinstance(root, ast.Name):
                    modules.add(root.id)
        return ids, modules
