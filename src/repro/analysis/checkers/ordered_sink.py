"""REP203 — ordered-sink flow (set iteration into ordered output).

Python ``set``/``frozenset`` iteration order depends on insertion
history and per-process hash randomization for ``str`` keys: the same
set can render differently across runs and across worker processes.
That is harmless while the values stay unordered, and fatal the moment
they flow into an *ordered sink* — a rendered table column, a journal
line, ``", ".join(...)``, cache-key material, or a list that later
feeds any of those. This rule flags iteration over a set-like value
that reaches such a sink unless the iteration is wrapped in
``sorted()``.

Two flavors come out of the graph's symbolic evaluation:

* **local** (``unordered-iter``) — the scope proved the iterated value
  is a set: a literal, a ``set()``/``frozenset()`` call, a set
  comprehension, a set-operator result (``a | b``), an order-preserving
  set method (``.union()`` etc.), or a module-level set constant;
* **via call** (``unordered-iter-ref``) — the iterated value is the
  result of calling another function; it fires only when the graph
  proves that function (transitively, through ``__init__`` re-exports
  and return-forwarding chains) returns a set.

Dict iteration is deliberately *not* flagged: insertion order is a
language guarantee, and the project's determinism tests pin it.
Sinks are syntactic: ``join``/``list``/``tuple``/``enumerate``
consumption, comprehensions inheriting set order, and ``for`` loops
whose body appends, writes, prints, or yields.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..graph import UNORDERED_ITER, UNORDERED_ITER_REF
from ..registry import Rule, register

_EXAMPLE = """\
def legend(table):
    names = set(table["name"])
    return ", ".join(names)   # REP203: set order reaches output
    # fix: ", ".join(sorted(names))
"""

_SINK_DESC = {
    "join": "a str.join()",
    "list": "a list()",
    "tuple": "a tuple()",
    "enumerate": "an enumerate()",
    "for-loop": "an order-sensitive loop body",
    "comprehension": "a comprehension",
}


@register(
    Rule(
        id="REP203",
        name="ordered-sink-flow",
        summary=(
            "set/frozenset iteration flowing into ordered output "
            "(rendering, journal lines, cache keys) must be sorted()"
        ),
        example=_EXAMPLE,
    )
)
class OrderedSinkChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        graph = ctx.graph
        summary = graph.modules.get(ctx.module)
        if summary is None:
            return
        sites = [
            (fn.qualname, eff)
            for fn in summary.functions.values()
            for eff in fn.effects
        ] + [(f"{ctx.module} module level", eff) for eff in summary.module_effects]
        for owner, eff in sites:
            if eff.kind == UNORDERED_ITER:
                what = f"set {eff.detail!r}"
            elif eff.kind == UNORDERED_ITER_REF:
                if not graph.returns_unordered(eff.detail):
                    continue
                what = f"set returned by {eff.detail}()"
            else:
                continue
            sink = _SINK_DESC.get(eff.sink, f"a {eff.sink}")
            yield Diagnostic(
                path=ctx.relpath,
                line=eff.line,
                col=eff.col,
                rule_id=self.rule.id,
                message=(
                    f"iteration over {what} flows into {sink} in "
                    f"{owner}; set order varies across runs and worker "
                    "processes"
                ),
                hint="wrap the iteration in sorted(...)",
            )
