"""REP102 — RNG provenance (whole-program taint).

REP101 bans the *lexical* forms of hidden RNG state; this rule proves
the stronger global property the reproduction's tables and figures
rely on: every :class:`numpy.random.Generator` reaching the library
layers (``rng-scope`` in the config, by default core/traces/synth/
hostload/prediction/sim) traces back to a caller-supplied seed or a
``SeedSequence.spawn`` chain — across function and module boundaries.

Three flows are flagged, using the taint lattice from
:mod:`repro.analysis.graph` (``GOOD < UNKNOWN < LITERAL ~ ADHOC <
UNSEEDED``):

* **construction** — a generator/``SeedSequence`` built inside the
  scope whose entropy is a hard-coded constant (``default_rng(42)``),
  ad-hoc seed arithmetic (``default_rng(seed + 10)`` — stream
  collisions waiting to happen; spawn a child instead), or missing
  entirely (``SeedSequence()``; the unseeded ``default_rng()`` form is
  REP101's);
* **entropy argument** — a call passing such a value into another
  function's entropy parameter (a param annotated ``Generator``/
  ``SeedSequence`` or one that provably flows into a construction,
  closed over the call graph), even when callee and taint live in
  different modules. ``UNSEEDED`` arguments are flagged from any
  layer; ``LITERAL``/``ADHOC`` only from inside the scope, because the
  experiments layer is the composition root where run seeds are
  legitimately chosen;
* **returned generator** — a scoped call to a function (anywhere in
  the package) whose returned generator is provably unseeded.

Parameters are trusted (``GOOD``) inside a function body — their
provenance is enforced at every call site instead, which is what makes
the analysis compositional. ``UNKNOWN`` never fires: the rule reports
provable taint, not uncertainty.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..graph import ADHOC, GOOD, LITERAL, UNSEEDED
from ..registry import Rule, register

_HINTS = {
    LITERAL: (
        "derive the seed from the experiment's (seed, config) via "
        "SeedSequence.spawn instead of hard-coding it"
    ),
    ADHOC: (
        "spawn a child stream (SeedSequence(seed).spawn(n) or "
        "spawn_key=) instead of seed arithmetic"
    ),
    UNSEEDED: "pass a seed or an existing Generator/SeedSequence",
}

_WHAT = {
    LITERAL: "a hard-coded seed",
    ADHOC: "ad-hoc seed arithmetic",
    UNSEEDED: "OS entropy",
}


@register(
    Rule(
        id="REP102",
        name="rng-provenance",
        summary=(
            "generators reaching library layers must trace back to a "
            "caller seed or SeedSequence.spawn chain, across function "
            "and module boundaries"
        ),
    )
)
class RngProvenanceChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        package = ctx.config.package
        if not ctx.module.startswith(package + "."):
            return
        layer = ctx.module.split(".")[1]
        in_scope = layer in ctx.config.rng_scope
        summary = ctx.graph.modules.get(ctx.module)
        if summary is None:
            return

        if in_scope:
            yield from self._constructions(ctx, summary)
        yield from self._call_sites(ctx, summary, in_scope)

    def _constructions(self, ctx: FileContext, summary) -> Iterator[Diagnostic]:
        for con in summary.constructions:
            if con.prov not in (LITERAL, ADHOC, UNSEEDED):
                continue
            if con.prov == UNSEEDED and con.factory == "default_rng":
                continue  # REP101 already owns this exact form
            where = f" in {con.in_function}()" if con.in_function else ""
            yield Diagnostic(
                path=ctx.relpath,
                line=con.line,
                col=con.col,
                rule_id=self.rule.id,
                message=(
                    f"{con.factory} seeded from {_WHAT[con.prov]}{where}; "
                    "library-layer streams must come from the caller or a "
                    "SeedSequence.spawn chain"
                ),
                hint=_HINTS[con.prov],
            )

    def _call_sites(
        self, ctx: FileContext, summary, in_scope: bool
    ) -> Iterator[Diagnostic]:
        graph = ctx.graph
        scope = ctx.config.rng_scope
        for call in summary.calls:
            target = graph.resolve_function(call.callee)
            if target is None:
                continue
            # entropy arguments
            if target.entropy_params:
                bound = graph._bind(call, target)
                for param in target.entropy_params:
                    val = bound.get(param)
                    if val is None:
                        continue
                    prov = graph.arg_rng_prov(val)
                    if prov == UNSEEDED or (
                        in_scope and prov in (LITERAL, ADHOC)
                    ):
                        yield Diagnostic(
                            path=ctx.relpath,
                            line=call.line,
                            col=call.col,
                            rule_id=self.rule.id,
                            message=(
                                f"{_WHAT[prov]} flows into entropy "
                                f"parameter {param!r} of "
                                f"{target.qualname}()"
                            ),
                            hint=_HINTS[prov],
                        )
            # returned generators
            if not in_scope or target.rng_return is None:
                continue
            callee_module = target.qualname.rsplit(".", 1)[0]
            callee_layer = (
                callee_module.split(".")[1]
                if callee_module.count(".") >= 1
                else None
            )
            prov = graph.rng_return_prov(target)
            if prov in (GOOD, None):
                continue
            flaggable = prov == UNSEEDED or prov in (LITERAL, ADHOC)
            # A scoped callee's bad construction is already flagged at
            # its own definition; only cross-scope flows fire here.
            if flaggable and callee_layer not in scope:
                yield Diagnostic(
                    path=ctx.relpath,
                    line=call.line,
                    col=call.col,
                    rule_id=self.rule.id,
                    message=(
                        f"{target.qualname}() returns a generator seeded "
                        f"from {_WHAT.get(prov, prov)}; it must not reach "
                        f"the {ctx.module.split('.')[1]} layer"
                    ),
                    hint=_HINTS.get(prov, _HINTS[UNSEEDED]),
                )
