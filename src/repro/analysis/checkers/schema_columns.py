"""REP201 — schema contract.

``table["colunm"]`` typos fail at runtime, deep inside an experiment, or
— worse — silently when a stale column still exists. This rule resolves
string-literal subscripts against the trace schemas declared in
``repro/traces/schema.py`` at lint time.

Tracking is deliberately conservative: only variables that *provably*
hold a :class:`Table` are checked —

* parameters/variables annotated ``Table`` (or ``"Table"``),
* assignments from ``Table(...)``/``concat_tables(...)`` or the schema
  constructors (``gwa_table``, ``swf_table``, ...),
* assignments from table-transform methods (``select``, ``sort_by``,
  ``with_columns``, ``drop``, ``head``) on an already-tracked variable,
* assignments from calls to same-file functions annotated ``-> Table``.

Valid columns are the union of every ``*_SCHEMA`` dict, any columns the
file itself creates (``Table({...})`` keys, ``with_columns(...)``
keyword names), and ``extra-table-columns`` from the config.

The rule also checks experiment metrics reads: ``result.metrics["key"]``
(and ``m["fig4"]["key"]`` on mappings built from ``.metrics``) must name
a key some experiment actually writes.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: Callables whose result is a Table, regardless of the callee module.
_TABLE_FACTORIES = frozenset(
    {
        "Table",
        "concat_tables",
        "gwa_table",
        "swf_table",
        "grid_jobs_to_job_table",
    }
)

#: Table methods returning a Table.
_TABLE_METHODS = frozenset({"select", "sort_by", "with_columns", "drop", "head"})


def _annotation_is_table(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id == "Table"
    if isinstance(annotation, ast.Attribute):
        return annotation.attr == "Table"
    if isinstance(annotation, ast.Constant):
        return annotation.value == "Table"
    if isinstance(annotation, ast.BinOp):  # e.g. ``Table | None``
        return _annotation_is_table(annotation.left) or _annotation_is_table(
            annotation.right
        )
    return False


class _FileFacts(ast.NodeVisitor):
    """Single-pass collection of table variables and locally-made columns."""

    def __init__(self) -> None:
        self.table_vars: set[str] = set()
        self.local_columns: set[str] = set()
        self.table_returning_funcs: set[str] = set()
        self.metric_map_vars: set[str] = set()

    # -- which local functions return tables -------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._function(node)

    def _function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        if _annotation_is_table(node.returns):
            self.table_returning_funcs.add(node.name)
        args = node.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ):
            if _annotation_is_table(arg.annotation):
                self.table_vars.add(arg.arg)
        self.generic_visit(node)

    # -- assignments that mint table variables / local columns -------------

    def _value_is_table(self, value: ast.expr) -> bool:
        if not isinstance(value, ast.Call):
            return False
        func = value.func
        if isinstance(func, ast.Name):
            return (
                func.id in _TABLE_FACTORIES
                or func.id in self.table_returning_funcs
            )
        if isinstance(func, ast.Attribute):
            if func.attr in _TABLE_FACTORIES:
                return True
            return (
                func.attr in _TABLE_METHODS
                and isinstance(func.value, ast.Name)
                and func.value.id in self.table_vars
            )
        return False

    def _record_target(self, target: ast.expr, value: ast.expr) -> None:
        if isinstance(target, ast.Name) and self._value_is_table(value):
            self.table_vars.add(target.id)
        if isinstance(target, ast.Name) and _is_metrics_dictcomp(value):
            self.metric_map_vars.add(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._record_target(target, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and _annotation_is_table(
            node.annotation
        ):
            self.table_vars.add(node.target.id)
        elif node.value is not None:
            self._record_target(node.target, node.value)
        self.generic_visit(node)

    # -- locally-created columns --------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name in _TABLE_FACTORIES or name in _TABLE_METHODS:
            for kw in node.keywords:
                if kw.arg:
                    self.local_columns.add(kw.arg)
            for arg in node.args:
                if isinstance(arg, ast.Dict):
                    for key in arg.keys:
                        if isinstance(key, ast.Constant) and isinstance(
                            key.value, str
                        ):
                            self.local_columns.add(key.value)
        self.generic_visit(node)


def _is_metrics_dictcomp(value: ast.expr) -> bool:
    """``{k: r.metrics for ...}`` — a mapping of metrics dicts."""
    return (
        isinstance(value, ast.DictComp)
        and isinstance(value.value, ast.Attribute)
        and value.value.attr == "metrics"
    )


def _str_subscript(node: ast.Subscript) -> str | None:
    if isinstance(node.slice, ast.Constant) and isinstance(
        node.slice.value, str
    ):
        return node.slice.value
    return None


@register(
    Rule(
        id="REP201",
        name="schema-contract",
        summary=(
            "string subscripts on Table objects must name declared schema "
            "columns; metrics reads must name keys an experiment writes"
        ),
    )
)
class SchemaContractChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        facts = _FileFacts()
        # Two passes so ``jobs = load()``-then-``jobs.select(...)`` chains
        # and forward uses of ``-> Table`` functions reach a fixpoint.
        facts.visit(ctx.tree)
        facts.visit(ctx.tree)

        allowed = (
            set(ctx.project.table_columns)
            | facts.local_columns
            | set(ctx.config.extra_table_columns)
        )
        metrics_keys = ctx.project.metrics_keys
        experiment_ids = ctx.project.experiment_ids

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Subscript):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            key = _str_subscript(node)
            if key is None:
                continue
            base = node.value
            # table["column"]
            if isinstance(base, ast.Name) and base.id in facts.table_vars:
                if key not in allowed:
                    yield self._unknown_column(ctx, node, base.id, key, allowed)
            # result.metrics["key"]
            elif isinstance(base, ast.Attribute) and base.attr == "metrics":
                if metrics_keys and not ctx.project.is_known_metric(key):
                    yield self._unknown_metric(ctx, node, key)
            # m["fig4"]["key"] where m = {k: r.metrics for ...}
            elif (
                isinstance(base, ast.Subscript)
                and isinstance(base.value, ast.Name)
                and base.value.id in facts.metric_map_vars
            ):
                if metrics_keys and not ctx.project.is_known_metric(key):
                    yield self._unknown_metric(ctx, node, key)
                inner = _str_subscript(base)
                if (
                    inner is not None
                    and experiment_ids
                    and inner not in experiment_ids
                ):
                    yield Diagnostic(
                        path=ctx.relpath,
                        line=base.lineno,
                        col=base.col_offset,
                        rule_id=self.rule.id,
                        message=(
                            f"unknown experiment id {inner!r} in metrics "
                            "lookup"
                        ),
                        hint="use a key registered in experiments/registry.py",
                    )

    def _unknown_column(
        self,
        ctx: FileContext,
        node: ast.Subscript,
        var: str,
        key: str,
        allowed: set[str],
    ) -> Diagnostic:
        close = _closest(key, allowed)
        hint = (
            f"did you mean {close!r}?"
            if close
            else "declare it in a *_SCHEMA dict or extra-table-columns"
        )
        return Diagnostic(
            path=ctx.relpath,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule.id,
            message=f"unknown table column {key!r} (on {var!r})",
            hint=hint,
        )

    def _unknown_metric(
        self, ctx: FileContext, node: ast.Subscript, key: str
    ) -> Diagnostic:
        return Diagnostic(
            path=ctx.relpath,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule.id,
            message=f"metrics key {key!r} is never written by any experiment",
            hint="check the metrics dict of the producing experiment",
        )


def _closest(key: str, candidates: set[str]) -> str | None:
    """Cheap nearest-name suggestion (shared-prefix + length heuristic)."""
    best, best_score = None, 0.0
    for cand in candidates:
        prefix = 0
        for a, b in zip(key, cand):
            if a != b:
                break
            prefix += 1
        score = prefix / max(len(key), len(cand))
        if score > best_score:
            best, best_score = cand, score
    return best if best_score >= 0.5 else None
