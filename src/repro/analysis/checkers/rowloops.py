"""REP502 — row-at-a-time Table iteration ban.

At paper scale (25M tasks, 12.5k machines) a Python loop over a table
column turns every analysis into the bottleneck — especially the
O(groups x rows) shape where each iteration re-filters the full table
(``table["key"] == value``), or the accumulation shape where each row is
``.append``-ed one at a time. The vectorized kernels in
:mod:`repro.core.kernels` replace both; this rule keeps the hot layers
(``repro.core``, ``repro.hostload``, ``repro.sim``) from growing new
scalar loops. Intentional scalar golden references are kept with a
``# reprolint: disable=REP502`` comment so the equivalence tests can
exercise them.

A loop (or comprehension) is flagged when it iterates a string-keyed
subscript like ``table["machine_id"]`` — directly or through
``enumerate``/``zip``/``sorted``/``set`` — and its body either compares
another string-keyed subscript with ``==``/``!=`` (the per-key filter
scan) or calls ``.append`` (row-at-a-time accumulation). Comprehensions
accumulate by construction, so iterating a column there is flagged
outright.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

#: Packages where scalar row loops are banned (the hot analysis layers).
_SCOPED_PACKAGES = ("repro.core", "repro.hostload", "repro.sim")

#: Wrappers through which a column iterable is still a row loop.
_TRANSPARENT_CALLS = {"enumerate", "zip", "sorted", "reversed", "set", "list", "tuple"}

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _is_column_ref(node: ast.expr) -> bool:
    """True for ``obj["name"]`` — a string-keyed column lookup."""
    return (
        isinstance(node, ast.Subscript)
        and isinstance(node.slice, ast.Constant)
        and isinstance(node.slice.value, str)
    )


def _column_iterables(iter_node: ast.expr) -> list[ast.Subscript]:
    """Column lookups iterated by ``iter_node``, unwrapping enumerate/zip."""
    if _is_column_ref(iter_node):
        return [iter_node]
    if (
        isinstance(iter_node, ast.Call)
        and isinstance(iter_node.func, ast.Name)
        and iter_node.func.id in _TRANSPARENT_CALLS
    ):
        found: list[ast.Subscript] = []
        for arg in iter_node.args:
            found.extend(_column_iterables(arg))
        return found
    return []


def _body_does_row_work(body: list[ast.stmt]) -> bool:
    """True when the loop body re-filters a column or appends per row."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
            ):
                operands = [node.left, *node.comparators]
                if any(_is_column_ref(operand) for operand in operands):
                    return True
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "append"
            ):
                return True
    return False


@register(
    Rule(
        id="REP502",
        name="row-loop-ban",
        summary=(
            "no row-at-a-time Table iteration in core/hostload/sim; "
            "use the vectorized kernels (repro.core.kernels)"
        ),
    )
)
class RowLoopChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test:
            return
        module = ctx.module or ""
        if not any(
            module == pkg or module.startswith(pkg + ".")
            for pkg in _SCOPED_PACKAGES
        ):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.For):
                columns = _column_iterables(node.iter)
                if columns and _body_does_row_work(node.body):
                    yield self._diagnostic(ctx, node, columns[0])
            elif isinstance(node, _COMPREHENSIONS):
                for gen in node.generators:
                    columns = _column_iterables(gen.iter)
                    if columns:
                        yield self._diagnostic(ctx, node, columns[0])
                        break

    def _diagnostic(
        self, ctx: FileContext, node: ast.AST, column: ast.Subscript
    ) -> Diagnostic:
        name = column.slice.value  # type: ignore[union-attr]
        return Diagnostic(
            path=ctx.relpath,
            line=node.lineno,
            col=node.col_offset,
            rule_id=self.rule.id,
            message=(
                f"row-at-a-time iteration over column {name!r} "
                "in a hot analysis layer"
            ),
            hint=(
                "use repro.core.kernels (grouped_sort_split, "
                "run_length_encode, ...) or suppress if this is an "
                "intentional scalar golden reference"
            ),
        )
