"""Shared AST helpers: import alias tracking and name resolution."""

from __future__ import annotations

import ast

__all__ = ["ImportMap", "build_import_map", "qualified_name"]


class ImportMap:
    """Maps local names to the fully-qualified names they were imported as.

    Only names introduced by imports resolve; plain local variables do
    not, which keeps resolution conservative (no false positives from a
    local variable that happens to be called ``time``).
    """

    def __init__(self, aliases: dict[str, str]) -> None:
        self.aliases = aliases

    def resolve(self, node: ast.expr) -> str | None:
        """Fully-qualified dotted name of an expression, if import-rooted."""
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None


def build_import_map(
    tree: ast.Module, module: str | None = None, is_package: bool = False
) -> ImportMap:
    """Collect import aliases from every import statement in the file.

    ``module`` (the file's dotted name) resolves relative imports; when
    unknown, relative imports are recorded with a leading ``.``.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds the top-level name ``a``.
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            base = resolve_from_module(node, module, is_package)
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name
    return ImportMap(aliases)


def resolve_from_module(
    node: ast.ImportFrom, module: str | None, is_package: bool = False
) -> str:
    """Absolute module a ``from X import ...`` statement refers to."""
    if node.level == 0:
        return node.module or ""
    if module is None:
        return "." * node.level + (node.module or "")
    # Level 1 anchors at the containing package; each further level goes
    # one package up. A package's ``__init__`` is its own anchor.
    parts = module.split(".") if is_package else module.split(".")[:-1]
    ascend = node.level - 1
    anchor = parts[: len(parts) - ascend] if ascend else parts
    if node.module:
        anchor = anchor + [node.module]
    return ".".join(anchor)


def qualified_name(node: ast.expr) -> str | None:
    """Dotted source text of a Name/Attribute chain (no alias resolution)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = qualified_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None
