"""REP501 — wall-clock ban.

Analysis, synthesis and simulation results must be a pure function of
``(inputs, seed)``. Reading the wall clock (``time.time``,
``datetime.now``, ...) makes outputs depend on when they ran — which
silently breaks replayability of every figure. Simulated time always
comes from the event clock, never the host. Test and benchmark code
(which legitimately measures wall-clock durations) is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register
from ._util import build_import_map

_BANNED = {
    "time.time": "use the simulation/event clock, not the host clock",
    "time.time_ns": "use the simulation/event clock, not the host clock",
    "time.monotonic": "timing belongs in benchmarks/, not analysis code",
    "time.perf_counter": "timing belongs in benchmarks/, not analysis code",
    "datetime.datetime.now": "derive timestamps from trace/simulation time",
    "datetime.datetime.utcnow": "derive timestamps from trace/simulation time",
    "datetime.date.today": "derive dates from trace/simulation time",
}


@register(
    Rule(
        id="REP501",
        name="wall-clock-ban",
        summary=(
            "no wall-clock reads (time.time, datetime.now, ...) in "
            "analysis/synthesis/simulation code paths"
        ),
    )
)
class WallClockChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test:
            return
        imports = build_import_map(ctx.tree, ctx.module, ctx.is_package)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            # Only flag the outermost reference once: names directly, and
            # attributes whose own resolution is banned.
            if isinstance(node, ast.Name) and not isinstance(
                node.ctx, ast.Load
            ):
                continue
            qual = imports.resolve(node)
            if qual in _BANNED:
                yield Diagnostic(
                    path=ctx.relpath,
                    line=node.lineno,
                    col=node.col_offset,
                    rule_id=self.rule.id,
                    message=f"wall-clock read via {qual} breaks reproducibility",
                    hint=_BANNED[qual],
                )
