"""REP301 — layering.

The package is a DAG of layers (``core`` at the bottom, then ``traces``,
then ``synth``/``hostload``/``prediction``, then ``sim``/``apps``, then
``experiments``). A module may import its own layer or any layer of
strictly lower rank; importing upward (or sideways into a sibling layer
of equal rank) couples foundations to consumers and eventually produces
import cycles. Ranks come from ``[tool.reprolint.layers]``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register
from ._util import resolve_from_module


@register(
    Rule(
        id="REP301",
        name="layering",
        summary=(
            "imports must respect the layer DAG (core -> traces -> "
            "synth/hostload -> sim -> experiments); no upward or "
            "sibling-layer imports"
        ),
    )
)
class LayeringChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        config = ctx.config
        package = config.package
        if ctx.module is None or not ctx.module.startswith(package + "."):
            return
        own_layer = ctx.module.split(".")[1]
        own_rank = config.layers.get(own_layer)
        if own_rank is None:
            return

        for node in ast.walk(ctx.tree):
            targets: list[tuple[str, int, int]] = []
            if isinstance(node, ast.Import):
                targets = [
                    (alias.name, node.lineno, node.col_offset)
                    for alias in node.names
                ]
            elif isinstance(node, ast.ImportFrom):
                base = resolve_from_module(node, ctx.module, ctx.is_package)
                if base == package:
                    # ``from repro import sim`` imports layer modules by name.
                    targets = [
                        (f"{package}.{alias.name}", node.lineno, node.col_offset)
                        for alias in node.names
                    ]
                else:
                    targets = [(base, node.lineno, node.col_offset)]
            for target, line, col in targets:
                parts = target.split(".")
                if parts[0] != package or len(parts) < 2:
                    continue
                target_layer = parts[1]
                target_rank = config.layers.get(target_layer)
                if target_rank is None or target_layer == own_layer:
                    continue
                if target_rank >= own_rank:
                    relation = (
                        "sibling layer"
                        if target_rank == own_rank
                        else "higher layer"
                    )
                    yield Diagnostic(
                        path=ctx.relpath,
                        line=line,
                        col=col,
                        rule_id=self.rule.id,
                        message=(
                            f"layer '{own_layer}' (rank {own_rank}) must not "
                            f"import {relation} '{target_layer}' "
                            f"(rank {target_rank})"
                        ),
                        hint=(
                            "move the shared code down to a lower layer or "
                            "invert the dependency"
                        ),
                    )
