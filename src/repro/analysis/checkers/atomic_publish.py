"""REP801 — atomic publish (control-flow durability protocol).

Durable on-disk state must be published atomically: write the payload
to a dot-prefixed temporary path, fsync it, rename it onto the
destination, then fsync the parent directory.  A write that lands
*directly* on an externally visible path (a parameter, an attribute, a
literal path — anything a reader could observe mid-write) violates the
protocol: a crash mid-write leaves a torn, non-temp file that readers
will trust.

The rule runs only inside modules listed under ``durable-roots`` in
``[tool.reprolint]`` — the modules that own crash-safe state.  The CFG
layer (:mod:`repro.analysis.cfg`) interprets each function and reports
a write to a visible non-temporary path unless that path is later
renamed away on some path (i.e. it *was* the temp side of a publish).
Temporary paths are recognized structurally: ``tempfile`` results,
dot-prefixed or ``.tmp``/``.partial`` basenames, names that look
temporary (``tmp``/``partial``/``scratch``), and parameters whose every
resolved caller passes a temp-derived argument (an incoming fact from
the project graph, folded into the flow fingerprint).
"""

from __future__ import annotations

from collections.abc import Iterator

from .. import cfg
from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register

_EXAMPLE = """\
def save(dest, payload):
    with open(dest, "wb") as fh:    # REP801: direct write to durable path
        fh.write(payload)

def save_atomic(dest, payload):
    tmp = dest.with_name("." + dest.name + ".tmp")
    with open(tmp, "wb") as fh:     # ok: dot-temp, renamed below
        fh.write(payload)
    publish_atomically(tmp, dest)
"""


@register(
    Rule(
        id="REP801",
        name="atomic-publish",
        summary=(
            "durable modules must publish files via temp+fsync+rename, "
            "never write a visible path in place"
        ),
        example=_EXAMPLE,
    )
)
class AtomicPublishChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        if not cfg.in_durable_scope(ctx.module, ctx.config.durable_roots):
            return
        for finding in cfg.file_report(ctx):
            if finding.rule != self.rule.id:
                continue
            yield Diagnostic(
                path=ctx.relpath,
                line=finding.line,
                col=finding.col,
                rule_id=self.rule.id,
                message=finding.message,
                hint=finding.hint,
                related=finding.related,
            )
