"""REP103 — worker purity (whole-program effect reachability).

Parallel runs are only reproducible if worker processes compute pure
functions of their inputs: a worker that mutates module-level state
produces results that depend on which worker ran which task, and the
pool's scheduling order leaks into the output. This rule proves the
property statically. The graph collects per-function effect summaries
(module-global writes, mutable-default mutation — plus env/filesystem/
process effects, tracked for the lattice but not reported) and marks as
*worker entry points* every function shipped across a process boundary:
``pool.submit(fn, ...)`` / ``pool.map(fn, ...)`` arguments and
``Process(target=fn)`` targets, plus any qualnames listed under
``worker-roots`` in ``[tool.reprolint]``. Everything reachable from a
root through the call graph — across module boundaries, through
``__init__`` re-exports, and through higher-order call sites where a
function value is passed into a parameter the callee calls — must not
write module-level state or mutate a shared default argument.

Pool ``initializer=`` callables are *not* roots: per-worker setup is the
sanctioned way to configure process-local state. Modules listed under
``worker-state-modules`` are exempt for writes to their *own* globals —
their module state is process-local by design (per-worker caches and
counters that workers are expected to populate).

Diagnostics land on the effect site, in the module that owns the
impure function, with the reachability chain in the message — so the
cache key of that file folds in the cross-module reachability facts
(:meth:`ProjectGraph.effect_facts_for_module`), and editing a distant
caller correctly re-keys the verdict here.
"""

from __future__ import annotations

from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..graph import DEFAULT_MUTATION, GLOBAL_WRITE
from ..registry import Rule, register

_EXAMPLE = """\
_RESULTS = {}

def run_shard(shard):          # shipped: pool.submit(run_shard, shard)
    _RESULTS[shard.id] = ...   # REP103: global write in a worker
"""


@register(
    Rule(
        id="REP103",
        name="worker-purity",
        summary=(
            "functions reachable from a worker entry point must not "
            "write module-level state or mutate shared defaults"
        ),
        example=_EXAMPLE,
    )
)
class WorkerPurityChecker:
    requires_graph = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test or ctx.graph is None or ctx.module is None:
            return
        graph = ctx.graph
        config = ctx.config
        exempt = ctx.module in config.worker_state_modules
        summary = graph.modules.get(ctx.module)
        if summary is None:
            return
        reach = graph.worker_reachability(config.worker_roots)
        for fn in summary.functions.values():
            verdict = reach.get(fn.qualname)
            if verdict is None:
                continue
            root, via = verdict
            for eff in fn.effects:
                if eff.kind not in (GLOBAL_WRITE, DEFAULT_MUTATION):
                    continue
                if exempt and eff.kind == GLOBAL_WRITE:
                    continue
                what = (
                    f"writes module-level {eff.detail!r}"
                    if eff.kind == GLOBAL_WRITE
                    else f"mutates shared default {eff.detail!r}"
                )
                chain = (
                    f"shipped across a process boundary at {via}"
                    if root == fn.qualname
                    else f"{via}; worker root {root}()"
                )
                yield Diagnostic(
                    path=ctx.relpath,
                    line=eff.line,
                    col=eff.col,
                    rule_id=self.rule.id,
                    message=(
                        f"{fn.qualname}() {what} but runs inside worker "
                        f"processes ({chain}); results would depend on "
                        "pool scheduling"
                    ),
                    hint=(
                        "return the value instead of mutating shared "
                        "state, move setup into the pool initializer, or "
                        "list the module under worker-state-modules if "
                        "its state is process-local by design"
                    ),
                )
