"""REP101 — RNG discipline.

Every statistic in the reproduction must be replayable from a seed, so
all randomness flows through an explicitly-passed
:class:`numpy.random.Generator`. This rule bans the three ways hidden
RNG state sneaks in:

* legacy ``numpy.random`` module-level samplers (``np.random.seed``,
  ``np.random.rand``, ...) which share one global ``RandomState``;
* the stdlib :mod:`random` module (global state, different algorithm);
* ``default_rng()`` with no seed, which draws OS entropy.

Test and benchmark code is exempt.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..diagnostics import Diagnostic
from ..engine import FileContext
from ..registry import Rule, register
from ._util import build_import_map

#: numpy.random attributes that are seed-respecting construction APIs,
#: types, or annotations — everything else is legacy global-state API.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "Generator",
        "default_rng",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@register(
    Rule(
        id="REP101",
        name="rng-discipline",
        summary=(
            "all randomness must flow through a passed numpy Generator; "
            "no global numpy.random state, stdlib random, or unseeded "
            "default_rng()"
        ),
    )
)
class RngDisciplineChecker:
    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        if ctx.is_test:
            return
        imports = build_import_map(ctx.tree, ctx.module, ctx.is_package)

        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
            elif isinstance(node, ast.Attribute):
                qual = imports.resolve(node)
                if (
                    qual
                    and qual.startswith("numpy.random.")
                    and qual.count(".") == 2
                    and node.attr not in _ALLOWED_NP_RANDOM
                ):
                    yield Diagnostic(
                        path=ctx.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule.id,
                        message=(
                            f"numpy.random.{node.attr} uses the hidden "
                            "global RandomState"
                        ),
                        hint=(
                            "draw from an explicitly-passed "
                            "numpy.random.Generator instead"
                        ),
                    )
            elif isinstance(node, ast.Call):
                qual = imports.resolve(node.func)
                if (
                    qual == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield Diagnostic(
                        path=ctx.relpath,
                        line=node.lineno,
                        col=node.col_offset,
                        rule_id=self.rule.id,
                        message=(
                            "default_rng() without a seed draws OS entropy; "
                            "results cannot be reproduced"
                        ),
                        hint="pass a seed or an existing Generator/SeedSequence",
                    )

    def _check_import(
        self, ctx: FileContext, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if isinstance(node, ast.Import):
            offenders = [
                alias
                for alias in node.names
                if alias.name == "random" or alias.name.startswith("random.")
            ]
        else:
            offenders = list(node.names) if (
                node.level == 0 and node.module == "random"
            ) else []
        for alias in offenders:
            yield Diagnostic(
                path=ctx.relpath,
                line=node.lineno,
                col=node.col_offset,
                rule_id=self.rule.id,
                message=(
                    "the stdlib random module keeps global state and is "
                    "banned in reproduction code"
                ),
                hint="use a passed numpy.random.Generator instead",
            )
