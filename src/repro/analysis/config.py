"""reprolint configuration: the ``[tool.reprolint]`` pyproject section.

Parsed with :mod:`tomllib` when available (Python >= 3.11); on 3.10 a
minimal built-in reader extracts just the ``[tool.reprolint*]`` sections
so the tool has no third-party dependency.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

__all__ = ["LintConfig", "load_config", "DEFAULT_LAYERS"]

#: Default layer ranks for the repro package. A module in layer L may
#: only import layers of strictly lower rank (or its own layer).
DEFAULT_LAYERS: dict[str, int] = {
    "core": 0,
    "traces": 1,
    "synth": 2,
    "hostload": 2,
    "prediction": 2,
    "sim": 3,
    "apps": 3,
    "experiments": 4,
    "analysis": 5,
}

#: Modules under the experiments package that are infrastructure, not
#: experiments, and therefore exempt from registry-completeness checks.
DEFAULT_NON_EXPERIMENT_MODULES = (
    "__init__",
    "base",
    "datasets",
    "registry",
    "runner",
)


@dataclass
class LintConfig:
    """Resolved reprolint settings."""

    #: Rule ids to run; empty means "all registered rules".
    enable: tuple[str, ...] = ()
    #: Rule ids to skip even when enabled (CLI ``--ignore`` merges in).
    ignore: tuple[str, ...] = ()
    #: Glob patterns (matched against project-relative posix paths) that
    #: are skipped entirely.
    exclude: tuple[str, ...] = ("*.egg-info/*", "*__pycache__*")
    #: Per-rule glob excludes: rule id -> patterns.
    per_rule_excludes: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Layer name -> rank for the layering rule.
    layers: dict[str, int] = field(default_factory=lambda: dict(DEFAULT_LAYERS))
    #: Root package whose first sub-package names the layer.
    package: str = "repro"
    #: Source roots (project-relative) used to derive module names.
    src_roots: tuple[str, ...] = ("src",)
    #: Project-relative path of the schema module defining ``*_SCHEMA``.
    schema_module: str = "src/repro/traces/schema.py"
    #: Project-relative path of the experiments package.
    experiments_package: str = "src/repro/experiments"
    #: Project-relative directory of benchmark reference outputs.
    results_dir: str = "benchmarks/results"
    #: Experiments-package modules exempt from registry completeness.
    non_experiment_modules: tuple[str, ...] = DEFAULT_NON_EXPERIMENT_MODULES
    #: Extra column names accepted by the schema-contract rule.
    extra_table_columns: tuple[str, ...] = ()
    #: Extra metrics keys accepted by the schema-contract rule.
    extra_metrics_keys: tuple[str, ...] = ()
    #: Layers whose generators must trace to a caller seed or a
    #: SeedSequence.spawn chain (REP102). Layers outside the scope —
    #: the experiments composition root, apps, analysis — may choose
    #: seeds, but still must not inject OS entropy.
    rng_scope: tuple[str, ...] = (
        "core",
        "traces",
        "synth",
        "hostload",
        "prediction",
        "sim",
    )
    #: Modules whose module-level state is process-local by design
    #: (per-worker caches, counters); REP103 does not flag writes to
    #: their own globals from worker-reachable code.
    worker_state_modules: tuple[str, ...] = ()
    #: Extra worker entry points (qualnames) beyond the pool-submit /
    #: Process sites the graph discovers syntactically.
    worker_roots: tuple[str, ...] = ()
    #: Module prefixes that own crash-safe durable state; REP801/REP802
    #: (atomic publish, fsync ordering) run only inside these modules.
    durable_roots: tuple[str, ...] = (
        "repro.core.diskcache",
        "repro.core.shard",
        "repro.core.fsutil",
    )

    def rule_enabled(self, rule_id: str) -> bool:
        if rule_id in self.ignore:
            return False
        return not self.enable or rule_id in self.enable

    def path_excluded(self, relpath: str) -> bool:
        return any(fnmatch(relpath, pat) for pat in self.exclude)

    def rule_excluded(self, rule_id: str, relpath: str) -> bool:
        pats = self.per_rule_excludes.get(rule_id, ())
        return any(fnmatch(relpath, pat) for pat in pats)


def _norm_key(key: str) -> str:
    return key.strip().replace("-", "_")


def _coerce_str_tuple(value: object) -> tuple[str, ...]:
    if isinstance(value, (list, tuple)):
        return tuple(str(v) for v in value)
    if isinstance(value, str):
        return (value,)
    return ()


def _config_from_mapping(section: dict[str, object]) -> LintConfig:
    cfg = LintConfig()
    data = {_norm_key(k): v for k, v in section.items()}
    for key in (
        "enable",
        "ignore",
        "exclude",
        "src_roots",
        "non_experiment_modules",
        "extra_table_columns",
        "extra_metrics_keys",
        "rng_scope",
        "worker_state_modules",
        "worker_roots",
        "durable_roots",
    ):
        if key in data:
            setattr(cfg, key, _coerce_str_tuple(data[key]))
    for key in ("package", "schema_module", "experiments_package", "results_dir"):
        if key in data:
            setattr(cfg, key, str(data[key]))
    if isinstance(data.get("per_rule_excludes"), dict):
        cfg.per_rule_excludes = {
            str(rule): _coerce_str_tuple(pats)
            for rule, pats in data["per_rule_excludes"].items()
        }
    if isinstance(data.get("layers"), dict):
        cfg.layers = {
            str(name): int(rank) for name, rank in data["layers"].items()
        }
    return cfg


def load_config(project_root: Path) -> LintConfig:
    """Load ``[tool.reprolint]`` from ``<root>/pyproject.toml``."""
    pyproject = project_root / "pyproject.toml"
    if not pyproject.is_file():
        return LintConfig()
    section = _read_tool_section(pyproject)
    if section is None:
        return LintConfig()
    return _config_from_mapping(section)


def _read_tool_section(pyproject: Path) -> dict[str, object] | None:
    text = pyproject.read_text(encoding="utf-8")
    try:
        import tomllib
    except ModuleNotFoundError:  # Python 3.10: minimal fallback below.
        return _fallback_parse(text)
    data = tomllib.loads(text)
    tool = data.get("tool", {})
    section = tool.get("reprolint")
    return section if isinstance(section, dict) else None


# -- minimal TOML subset reader (sections, strings, ints, bools, ------------
# -- single-line string arrays) for interpreters without tomllib ------------

_SECTION_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KV_RE = re.compile(r"^(?P<key>[A-Za-z0-9_\-]+)\s*=\s*(?P<value>.+?)\s*$")


def _parse_scalar(raw: str) -> object:
    raw = raw.strip()
    if raw.startswith("[") and raw.endswith("]"):
        inner = raw[1:-1].strip()
        if not inner:
            return []
        return [_parse_scalar(part) for part in _split_array(inner)]
    if raw.startswith(('"', "'")) and raw.endswith(raw[0]) and len(raw) >= 2:
        return raw[1:-1]
    if raw in ("true", "false"):
        return raw == "true"
    try:
        return int(raw)
    except ValueError:
        return raw


def _split_array(inner: str) -> list[str]:
    parts: list[str] = []
    depth = 0
    quote: str | None = None
    current = ""
    for ch in inner:
        if quote:
            current += ch
            if ch == quote:
                quote = None
            continue
        if ch in "\"'":
            quote = ch
            current += ch
        elif ch == "[":
            depth += 1
            current += ch
        elif ch == "]":
            depth -= 1
            current += ch
        elif ch == "," and depth == 0:
            parts.append(current)
            current = ""
        else:
            current += ch
    if current.strip():
        parts.append(current)
    return parts


def _fallback_parse(text: str) -> dict[str, object] | None:
    """Extract ``[tool.reprolint]`` and its subtables without tomllib."""
    section: dict[str, object] | None = None
    current: dict[str, object] | None = None
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SECTION_RE.match(stripped)
        if match:
            name = match.group("name").strip()
            if name == "tool.reprolint":
                section = section or {}
                current = section
            elif name.startswith("tool.reprolint."):
                section = section or {}
                sub: dict[str, object] = {}
                section[name[len("tool.reprolint.") :]] = sub
                current = sub
            else:
                current = None
            continue
        if current is None:
            continue
        kv = _KV_RE.match(stripped)
        if kv:
            current[kv.group("key")] = _parse_scalar(kv.group("value"))
    return section
