"""Project-wide facts shared by all checkers.

Everything here is extracted *statically* (via :mod:`ast`) from the
source tree — the linter never imports the code it checks, so it works
on broken trees and costs nothing at runtime.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path

from .config import LintConfig, load_config

__all__ = ["ProjectContext", "build_project_context", "find_project_root"]


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding ``pyproject.toml``."""
    node = start if start.is_dir() else start.parent
    for candidate in (node, *node.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return node


@dataclass
class ProjectContext:
    """Facts about the project the per-file checkers resolve against."""

    root: Path
    config: LintConfig
    #: Union of column names declared by every ``*_SCHEMA`` dict.
    table_columns: frozenset[str] = frozenset()
    #: Union of metrics keys written by any experiment module.
    metrics_keys: frozenset[str] = frozenset()
    #: Wildcard patterns from dynamically-built (f-string) metrics keys.
    metrics_key_patterns: tuple[str, ...] = ()
    #: Experiment ids (keys of the EXPERIMENTS registry dict).
    experiment_ids: frozenset[str] = frozenset()
    #: Experiment module names referenced by the registry.
    registered_modules: frozenset[str] = frozenset()
    warnings: list[str] = field(default_factory=list)

    def is_known_metric(self, key: str) -> bool:
        """True when some experiment writes ``key`` (exactly or via a
        dynamic key whose constant parts match)."""
        if key in self.metrics_keys:
            return True
        return any(fnmatch(key, pat) for pat in self.metrics_key_patterns)


def _parse(path: Path) -> ast.Module | None:
    try:
        return ast.parse(path.read_text(encoding="utf-8"))
    except (OSError, SyntaxError):
        return None


def _schema_columns(schema_path: Path) -> set[str]:
    """Keys of every module-level ``<NAME>_SCHEMA = {...}`` dict literal."""
    tree = _parse(schema_path)
    if tree is None:
        return set()
    columns: set[str] = set()
    for node in tree.body:
        targets: list[ast.expr] = []
        value: ast.expr | None = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not isinstance(value, ast.Dict):
            continue
        named = any(
            isinstance(t, ast.Name) and t.id.endswith("_SCHEMA") for t in targets
        )
        if not named:
            continue
        for key in value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                columns.add(key.value)
    return columns


class _MetricsKeyCollector(ast.NodeVisitor):
    """Collect every metrics key an experiments module *writes*.

    Sources: dict literals passed as ``metrics=``, dict literals assigned
    to a name called ``metrics``, and ``metrics["key"] = ...`` stores.
    Keys built from f-strings become wildcard patterns (formatted fields
    match anything, constant parts must match exactly); ``**{...}``
    spreads of dict literals and comprehensions are followed.
    """

    def __init__(self) -> None:
        self.keys: set[str] = set()
        self.patterns: set[str] = set()

    def _take_key(self, key: ast.expr | None) -> None:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            self.keys.add(key.value)
        elif isinstance(key, ast.JoinedStr):
            parts: list[str] = []
            for piece in key.values:
                if isinstance(piece, ast.Constant):
                    parts.append(str(piece.value))
                else:  # FormattedValue -> wildcard
                    parts.append("*")
            self.patterns.add("".join(parts))

    def _take_dict(self, node: ast.expr | None) -> None:
        if isinstance(node, ast.Dict):
            for key, value in zip(node.keys, node.values):
                if key is None:  # ``**spread``
                    self._take_dict(value)
                else:
                    self._take_key(key)
        elif isinstance(node, ast.DictComp):
            self._take_key(node.key)

    def visit_Call(self, node: ast.Call) -> None:
        for kw in node.keywords:
            if kw.arg == "metrics":
                self._take_dict(kw.value)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == "metrics":
                self._take_dict(node.value)
            if (
                isinstance(target, ast.Subscript)
                and isinstance(target.value, ast.Name)
                and target.value.id == "metrics"
                and isinstance(target.slice, ast.Constant)
                and isinstance(target.slice.value, str)
            ):
                self.keys.add(target.slice.value)
        self.generic_visit(node)


def _experiments_facts(
    experiments_dir: Path,
) -> tuple[set[str], set[str], set[str], set[str]]:
    """Return (metrics_keys, key_patterns, experiment_ids, registered)."""
    metrics_keys: set[str] = set()
    key_patterns: set[str] = set()
    experiment_ids: set[str] = set()
    registered: set[str] = set()
    if not experiments_dir.is_dir():
        return metrics_keys, key_patterns, experiment_ids, registered
    for path in sorted(experiments_dir.glob("*.py")):
        tree = _parse(path)
        if tree is None:
            continue
        collector = _MetricsKeyCollector()
        collector.visit(tree)
        metrics_keys |= collector.keys
        key_patterns |= collector.patterns
    registry = _parse(experiments_dir / "registry.py")
    if registry is not None:
        for node in ast.walk(registry):
            if isinstance(node, ast.ImportFrom) and node.level == 1 and not node.module:
                registered |= {alias.name for alias in node.names}
        for node in registry.body:
            value = node.value if isinstance(node, (ast.Assign, ast.AnnAssign)) else None
            if isinstance(value, ast.Dict):
                for key in value.keys:
                    if isinstance(key, ast.Constant) and isinstance(key.value, str):
                        experiment_ids.add(key.value)
    return metrics_keys, key_patterns, experiment_ids, registered


def build_project_context(
    root: Path, config: LintConfig | None = None
) -> ProjectContext:
    config = config if config is not None else load_config(root)
    ctx = ProjectContext(root=root, config=config)

    schema_path = root / config.schema_module
    columns = _schema_columns(schema_path)
    if not columns:
        ctx.warnings.append(
            f"no *_SCHEMA dicts found at {config.schema_module}; "
            "schema-contract checks are limited to locally-declared columns"
        )
    ctx.table_columns = frozenset(columns | set(config.extra_table_columns))

    metrics_keys, key_patterns, experiment_ids, registered = _experiments_facts(
        root / config.experiments_package
    )
    ctx.metrics_keys = frozenset(metrics_keys | set(config.extra_metrics_keys))
    ctx.metrics_key_patterns = tuple(sorted(key_patterns))
    ctx.experiment_ids = frozenset(experiment_ids)
    ctx.registered_modules = frozenset(registered)
    return ctx
