"""``repro-lint`` — the project's static-analysis gate.

Usage::

    repro-lint src                   # lint the tree, exit 1 on findings
    repro-lint --format json src     # machine-readable output
    repro-lint --format sarif src    # SARIF 2.1.0 for code-scanning UIs
    repro-lint --jobs 0 src          # parallel parse/analyze (0 = auto)
    repro-lint --cache-dir .lint-cache src   # incremental: only changed
                                             # files (and their importers)
                                             # are re-analyzed
    repro-lint --list-rules          # rule catalog
    repro-lint --select REP103,REP303 src    # run only these rules
    repro-lint --ignore REP701 src   # drop rules from the configured set
    repro-lint --explain REP203      # rule doc + a minimal flagged example

Suppress a finding in place with ``# reprolint: disable=REP101`` (or
``disable=all``) on the offending line; configure rule sets and excludes
under ``[tool.reprolint]`` in ``pyproject.toml``. ``--select`` replaces
the config's ``enable`` set for this run; ``--ignore`` adds to the
config's ``ignore`` set; both accept comma-separated rule ids and reject
unknown ones.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from .engine import lint_paths
from .registry import iter_rules
from .reporters import render_json, render_sarif, render_text

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based lint pass enforcing the reproduction's determinism, "
            "schema and layering invariants"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--root",
        default=None,
        help=(
            "project root holding pyproject.toml (default: discovered from "
            "the first path)"
        ),
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for parsing/analysis (0 = one per CPU)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "enable the incremental cache in DIR; unchanged files (keyed "
            "by content hash + import closure) are not re-analyzed"
        ),
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="RULES",
        help=(
            "comma-separated rule ids to run, replacing the configured "
            "enable set (e.g. REP103,REP303)"
        ),
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="RULES",
        help="comma-separated rule ids to skip on top of the config",
    )
    parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print one rule's documentation and a flagged example, then exit",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="omit fix hints from text output",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _split_rules(raw: str) -> tuple[str, ...]:
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def explain_rule(rule_id: str) -> str:
    """Rule doc (explicit or the checker module's docstring) + example."""
    from .registry import _CHECKERS, iter_rules

    rules = {rule.id: rule for rule in iter_rules()}
    rule = rules.get(rule_id)
    if rule is None:
        raise ValueError(
            f"unknown rule id {rule_id!r}; known rules: "
            f"{', '.join(sorted(rules))}"
        )
    doc = rule.doc
    if not doc:
        import sys as _sys

        checker = _CHECKERS[rule.id]
        module = _sys.modules.get(checker.__module__)
        doc = (module.__doc__ or "").strip() if module else ""
    parts = [f"{rule.id}  {rule.name}", "", rule.summary]
    if doc:
        parts += ["", doc.strip()]
    if rule.example:
        parts += ["", "Example (flagged):", ""]
        parts += [f"    {line}" for line in rule.example.rstrip().splitlines()]
    return "\n".join(parts)


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.list_rules:
        for rule in iter_rules():
            print(f"{rule.id}  {rule.name}: {rule.summary}")
        return 0
    if args.explain is not None:
        try:
            print(explain_rule(args.explain.strip()))
        except ValueError as exc:
            print(f"repro-lint: error: {exc}", file=sys.stderr)
            return 2
        return 0
    try:
        run = lint_paths(
            args.paths,
            root=args.root,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            select=_split_rules(args.select),
            ignore=_split_rules(args.ignore),
        )
    except (OSError, ValueError) as exc:
        print(f"repro-lint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(run))
    elif args.format == "sarif":
        print(render_sarif(run))
    else:
        print(render_text(run, verbose=not args.quiet))
    return run.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
