"""Whole-program model: per-module summaries, import graph, call graph.

The per-file checkers of PR 1 see one AST at a time, so anything routed
through a helper in another module — an unseeded generator, an ad-hoc
seed derivation, a ``Table`` with the wrong columns — escapes them.
This module turns the tree into data the flow-sensitive rules (REP102
rng-provenance, REP202 cross-module schema flow) can reason over:

* a :class:`ModuleSummary` per file — imports, module-level function
  signatures, RNG constructions with their entropy provenance, and
  every call site with *symbolic* argument values;
* a :class:`ProjectGraph` over all summaries — the package-internal
  import graph (and its transitive closure, which keys the incremental
  cache), a qualified-name function index resolved through package
  ``__init__`` re-exports, entropy-parameter propagation, and per-
  function input-schema inference from call sites.

Summaries hold no AST nodes; they are small, picklable and cached on
disk keyed by the file's content hash, so a warm run rebuilds the whole
graph without parsing a single file.

The RNG taint lattice (see DESIGN §10)::

    GOOD < UNKNOWN < LITERAL ~ ADHOC < UNSEEDED

``GOOD`` means provably derived from a caller-supplied value or a
``SeedSequence``/``spawn`` chain; ``LITERAL`` is a hard-coded seed,
``ADHOC`` arithmetic seed derivation (``seed + 10`` — use
``SeedSequence.spawn`` instead), ``UNSEEDED`` OS entropy. ``UNKNOWN``
(an expression the analysis cannot classify) is deliberately *not*
reported: the rules only flag provable taint, never uncertainty.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "GOOD",
    "UNKNOWN",
    "LITERAL",
    "ADHOC",
    "UNSEEDED",
    "SymVal",
    "RngConstruction",
    "CallSite",
    "FunctionSummary",
    "ModuleSummary",
    "ProjectGraph",
    "summarize_module",
    "build_project_graph",
]

# -- RNG provenance lattice ---------------------------------------------------

GOOD = "good"  # caller-supplied value or SeedSequence/spawn chain
UNKNOWN = "unknown"  # unclassifiable; never reported
LITERAL = "literal"  # hard-coded seed constant
ADHOC = "adhoc"  # arithmetic seed derivation (seed + 10, 2 * seed, ...)
UNSEEDED = "unseeded"  # OS entropy (default_rng() / SeedSequence())

#: Join order: the worst provenance of any contributing operand wins.
_SEVERITY = {GOOD: 0, UNKNOWN: 1, LITERAL: 2, ADHOC: 3, UNSEEDED: 4}


def join(*provs: str) -> str:
    return max(provs, key=_SEVERITY.__getitem__) if provs else UNKNOWN


#: numpy.random callables that construct a generator/bit generator from
#: an entropy argument (first positional or ``seed=``).
_RNG_FACTORIES = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "numpy.random.PCG64",
        "numpy.random.PCG64DXSM",
        "numpy.random.Philox",
        "numpy.random.MT19937",
        "numpy.random.SFC64",
    }
)

_SEEDSEQUENCE = "numpy.random.SeedSequence"

#: Table methods that return a (possibly extended) view of their
#: receiver; mirrors REP201's tracking.
_TABLE_METHODS = frozenset({"select", "sort_by", "with_columns", "drop", "head"})


# -- symbolic values ----------------------------------------------------------


@dataclass(frozen=True)
class SymVal:
    """Symbolic value of an expression, as far as one file can tell.

    ``kind`` is one of ``table`` (a Table; ``columns`` lists its known
    column set, or None), ``rng`` (generator/seed material; ``prov`` is
    its lattice point), ``ref`` (result of calling ``ref``, resolved
    against the graph later), ``param`` (an enclosing-function
    parameter) or ``other``.
    """

    kind: str
    columns: tuple[str, ...] | None = None
    prov: str | None = None
    ref: str | None = None
    param: str | None = None


_OTHER = SymVal(kind="other")


@dataclass(frozen=True)
class RngConstruction:
    """One generator/SeedSequence construction site and its provenance."""

    factory: str  # "default_rng", "SeedSequence", ...
    prov: str
    line: int
    col: int
    in_function: str | None  # enclosing function name, for messages


@dataclass(frozen=True)
class CallSite:
    """A resolved call with symbolic arguments."""

    callee: str  # best-effort dotted name ("repro.synth.x.f" or "f")
    line: int
    col: int
    args: tuple[SymVal, ...]
    kwargs: tuple[tuple[str, SymVal], ...]


@dataclass
class FunctionSummary:
    """What the graph needs to know about one module-level function."""

    qualname: str  # "repro.synth.google_model.generate"
    name: str
    params: tuple[str, ...] = ()
    defaults: int = 0  # number of trailing params with defaults
    #: Params annotated ``Table`` plus params whose only observed uses
    #: are Table-shaped (string subscripts / Table methods).
    table_params: tuple[str, ...] = ()
    annotated_table_params: tuple[str, ...] = ()
    #: Param -> ((column, line, col), ...) string-subscript reads.
    param_accesses: dict[str, tuple[tuple[str, int, int], ...]] = field(
        default_factory=dict
    )
    #: Param -> columns the function itself adds via with_columns.
    param_added: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Params annotated ``np.random.Generator`` or flowing into an
    #: entropy position (directly; the graph closes this over calls).
    entropy_params: tuple[str, ...] = ()
    #: Params passed onward as entropy args: param -> callee qualnames.
    entropy_forwards: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Provenance of a returned generator (lattice point, or a param
    #: name prefixed "param:", or a call ref prefixed "ref:"), if the
    #: function can return one.
    rng_return: str | None = None
    #: Known column set of a returned Table literal, if derivable.
    returns_columns: tuple[str, ...] | None = None
    #: Return is the result of calling another function ("ref:<name>").
    returns_ref: str | None = None


@dataclass
class ModuleSummary:
    """Per-file facts; picklable, cached by content hash."""

    module: str | None  # dotted name; None outside the src roots
    relpath: str
    #: Absolute package-internal modules this file imports.
    imports: tuple[str, ...] = ()
    #: Local name -> qualified name, from import statements (for
    #: ``__init__`` files this is the re-export map).
    exports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, FunctionSummary] = field(default_factory=dict)
    constructions: tuple[RngConstruction, ...] = ()
    calls: tuple[CallSite, ...] = ()
    parse_error: str | None = None
    parse_error_line: int = 1


# -- per-file summarization ---------------------------------------------------


def _annotation_mentions(annotation: ast.expr | None, name: str) -> bool:
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id == name:
            return True
        if isinstance(node, ast.Attribute) and node.attr == name:
            return True
        if isinstance(node, ast.Constant) and node.value == name:
            return True
    return False


class _Scope:
    """Flow-sensitive-enough symbolic environment for one function body.

    A single forward pass over the statements; the last binding of a
    name wins, loops and branches are visited in source order. That is
    deliberately coarse — provenance only has to be *provable*, and
    re-binding a seeded generator to something worse is caught at the
    new binding's own construction site.
    """

    def __init__(
        self,
        summarizer: "_ModuleSummarizer",
        params: tuple[str, ...],
        fn_name: str | None,
    ) -> None:
        self.s = summarizer
        self.params = set(params)
        self.fn_name = fn_name
        self.env: dict[str, SymVal] = {}

    # -- expression evaluation ------------------------------------------

    def eval(self, node: ast.expr | None) -> SymVal:
        if node is None:
            return _OTHER
        if isinstance(node, ast.Name):
            if node.id in self.env:
                return self.env[node.id]
            if node.id in self.params:
                return SymVal(kind="param", param=node.id)
            return _OTHER
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or node.value is None:
                return _OTHER
            if isinstance(node.value, (int, float)):
                return SymVal(kind="rng", prov=LITERAL)
            return _OTHER
        if isinstance(node, (ast.BinOp, ast.UnaryOp)):
            # Arithmetic over seeds is ad-hoc stream derivation unless
            # every operand is already unclassifiable.
            operands = [
                self.eval(sub)
                for sub in ast.walk(node)
                if isinstance(sub, (ast.Name, ast.Constant))
            ]
            touched = [
                v for v in operands if v.kind in ("param", "rng")
            ]
            if touched:
                return SymVal(kind="rng", prov=ADHOC)
            return _OTHER
        if isinstance(node, ast.IfExp):
            return _join_vals(self.eval(node.body), self.eval(node.orelse))
        if isinstance(node, ast.Subscript):
            # children[i] of a spawn list keeps the list's provenance.
            base = self.eval(node.value)
            if base.kind == "rng":
                return base
            return _OTHER
        if isinstance(node, ast.Tuple):
            vals = [self.eval(elt) for elt in node.elts]
            if vals and all(v.kind == "rng" for v in vals):
                return _join_vals(*vals)
            return _OTHER
        if isinstance(node, ast.Dict):
            return _OTHER
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        return _OTHER

    def _entropy_arg(self, node: ast.Call) -> ast.expr | None:
        """The entropy operand of a generator/SeedSequence construction."""
        if node.args:
            return node.args[0]
        for kw in node.keywords:
            if kw.arg in ("seed", "entropy"):
                return kw.value
        return None

    def _entropy_prov(self, node: ast.Call) -> str:
        arg = self._entropy_arg(node)
        if arg is None:
            return UNSEEDED
        return self.rng_prov(self.eval(arg), arg)

    def rng_prov(self, val: SymVal, arg: ast.expr | None = None) -> str:
        """Project a symbolic value onto the RNG lattice."""
        if val.kind == "param":
            # Caller-supplied: provenance is enforced at the call site.
            self.s.note_entropy_param(self.fn_name, val.param)
            return GOOD
        if val.kind == "rng":
            return val.prov or UNKNOWN
        if val.kind == "ref":
            resolved = self.s.graph_placeholder_rng(val.ref)
            return resolved
        return UNKNOWN

    def _eval_call(self, node: ast.Call) -> SymVal:
        callee = self.s.resolve_callee(node.func)
        # SeedSequence(...)/default_rng(...)-family: provenance of the
        # entropy argument, recorded as a construction site.
        if callee in _RNG_FACTORIES or callee == _SEEDSEQUENCE:
            prov = self._entropy_prov(node)
            self.s.record_construction(
                factory=callee.rsplit(".", 1)[-1],
                prov=prov,
                line=node.lineno,
                col=node.col_offset,
                in_function=self.fn_name,
            )
            return SymVal(kind="rng", prov=prov)
        # spawn()/attribute calls on seed material keep its provenance.
        if isinstance(node.func, ast.Attribute):
            recv = self.eval(node.func.value)
            if recv.kind == "rng" and node.func.attr in ("spawn", "jumped"):
                return recv
            if recv.kind in ("table", "param") and (
                node.func.attr in _TABLE_METHODS
            ):
                return self._table_method(recv, node)
        if callee == "Table" or (callee or "").endswith(".Table"):
            return SymVal(kind="table", columns=_dict_literal_keys(node))
        if callee is not None:
            self.s.record_call(node, callee, self)
            return SymVal(kind="ref", ref=callee)
        return _OTHER

    def _table_method(self, recv: SymVal, node: ast.Call) -> SymVal:
        added = tuple(kw.arg for kw in node.keywords if kw.arg)
        if recv.kind == "param":
            if node.func.attr == "with_columns" and added:
                self.s.note_param_added(self.fn_name, recv.param, added)
            return recv  # still schema-compatible with the param
        columns = recv.columns
        if columns is not None and node.func.attr == "with_columns":
            columns = tuple(dict.fromkeys((*columns, *added)))
        return SymVal(kind="table", columns=columns)

    # -- statement walk --------------------------------------------------

    def assign(self, target: ast.expr, value: SymVal) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = value
        elif isinstance(target, ast.Tuple) and value.kind == "rng":
            for elt in target.elts:
                self.assign(elt, value)


def _join_vals(*vals: SymVal) -> SymVal:
    rngs = [v for v in vals if v.kind == "rng"]
    if rngs and len(rngs) + sum(v.kind == "param" for v in vals) == len(vals):
        provs = [v.prov or UNKNOWN for v in rngs]
        # params join as GOOD (caller-checked)
        provs += [GOOD] * sum(v.kind == "param" for v in vals)
        return SymVal(kind="rng", prov=join(*provs))
    if len(vals) == 1:
        return vals[0]
    return _OTHER


def _dict_literal_keys(node: ast.Call) -> tuple[str, ...] | None:
    """Column names of a ``Table({...})``/``Table(dict literal)`` call."""
    candidates: list[ast.expr] = list(node.args[:1])
    keys: list[str] = []
    for arg in candidates:
        if not isinstance(arg, ast.Dict):
            return None
        for key in arg.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
            else:
                return None
    if node.keywords:
        for kw in node.keywords:
            if kw.arg is None:
                return None
            keys.append(kw.arg)
    return tuple(dict.fromkeys(keys)) if keys else None


class _ModuleSummarizer:
    """One pass over a module AST producing its :class:`ModuleSummary`."""

    def __init__(
        self, tree: ast.Module, module: str | None, relpath: str, package: str,
        is_package: bool,
    ) -> None:
        # Imported lazily: the checkers package pulls in the engine,
        # which imports this module at its own top level.
        from .checkers._util import build_import_map

        self.tree = tree
        self.module = module
        self.relpath = relpath
        self.package = package
        self.import_map = build_import_map(tree, module, is_package)
        self.summary = ModuleSummary(module=module, relpath=relpath)
        self._constructions: list[RngConstruction] = []
        self._calls: list[CallSite] = []
        self._local_funcs: set[str] = {
            n.name
            for n in tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        self._current: FunctionSummary | None = None

    # -- callbacks from _Scope -------------------------------------------

    def resolve_callee(self, func: ast.expr) -> str | None:
        qual = self.import_map.resolve(func)
        if qual is not None:
            return qual
        if isinstance(func, ast.Name):
            if func.id in self._local_funcs and self.module:
                return f"{self.module}.{func.id}"
            return func.id
        return None

    def graph_placeholder_rng(self, ref: str) -> str:
        # Call results are resolved against the graph later; locally
        # they are unknown (never reported).
        return UNKNOWN

    def note_entropy_param(self, fn_name: str | None, param: str | None) -> None:
        fn = self._current
        if fn is None or param is None or param not in fn.params:
            return
        if param not in fn.entropy_params:
            fn.entropy_params = (*fn.entropy_params, param)

    def note_param_added(
        self, fn_name: str | None, param: str | None, added: tuple[str, ...]
    ) -> None:
        fn = self._current
        if fn is None or param is None:
            return
        merged = dict.fromkeys((*fn.param_added.get(param, ()), *added))
        fn.param_added[param] = tuple(merged)

    def record_construction(self, **kwargs: object) -> None:
        self._constructions.append(RngConstruction(**kwargs))

    def record_call(self, node: ast.Call, callee: str, scope: _Scope) -> None:
        args = tuple(scope.eval(a) for a in node.args)
        kwargs = tuple(
            (kw.arg, scope.eval(kw.value))
            for kw in node.keywords
            if kw.arg is not None
        )
        self._calls.append(
            CallSite(
                callee=callee,
                line=node.lineno,
                col=node.col_offset,
                args=args,
                kwargs=kwargs,
            )
        )
        # Params forwarded into another call may be entropy params of
        # *that* callee; the graph closes this after indexing.
        fn = self._current
        if fn is not None:
            for val in (*args, *(v for _, v in kwargs)):
                if val.kind == "param" and val.param in fn.params:
                    fwd = dict.fromkeys(
                        (*fn.entropy_forwards.get(val.param, ()), callee)
                    )
                    fn.entropy_forwards[val.param] = tuple(fwd)

    # -- the walk ---------------------------------------------------------

    def run(self) -> ModuleSummary:
        summary = self.summary
        summary.exports = dict(self.import_map.aliases)
        prefix = self.package + "."
        internal: list[str] = []
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == self.package or alias.name.startswith(prefix):
                        internal.append(alias.name)
            elif isinstance(node, ast.ImportFrom):
                from .checkers._util import resolve_from_module

                base = resolve_from_module(
                    node, self.module, self.relpath.endswith("__init__.py")
                )
                if base == self.package or base.startswith(prefix):
                    internal.append(base)
                    # ``from repro.x import y`` may import module y itself.
                    for alias in node.names:
                        internal.append(f"{base}.{alias.name}")
        summary.imports = tuple(dict.fromkeys(internal))

        # Module-level statements run in an anonymous scope.
        top = _Scope(self, params=(), fn_name=None)
        self._walk_body(self.tree.body, top, qual_prefix=self.module)

        summary.constructions = tuple(self._constructions)
        summary.calls = tuple(self._calls)
        return summary

    def _walk_body(
        self,
        body: list[ast.stmt],
        scope: _Scope,
        qual_prefix: str | None,
        depth: int = 0,
    ) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._function(stmt, qual_prefix, top_level=depth == 0)
            elif isinstance(stmt, ast.ClassDef):
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._function(sub, None, top_level=False)
            else:
                self._statement(stmt, scope)

    def _statement(self, stmt: ast.stmt, scope: _Scope) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Conditionally-defined function (inside if/try): summarize
            # it in its own scope, never in the enclosing environment.
            self._function(stmt, None, top_level=False)
            return
        if isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._function(sub, None, top_level=False)
            return
        if isinstance(stmt, ast.Assign):
            value = scope.eval(stmt.value)
            for target in stmt.targets:
                scope.assign(target, value)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            scope.assign(stmt.target, scope.eval(stmt.value))
        elif isinstance(stmt, ast.Return):
            self._note_return(stmt, scope)
        elif isinstance(stmt, ast.Expr):
            scope.eval(stmt.value)
        else:
            # Visit nested expressions/statements (if/for/while/with/try
            # bodies) in source order with the same environment.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    scope.eval(child)
                elif isinstance(child, ast.stmt):
                    self._statement(child, scope)
                elif isinstance(child, (ast.excepthandler, ast.withitem)):
                    for sub in ast.iter_child_nodes(child):
                        if isinstance(sub, ast.stmt):
                            self._statement(sub, scope)
                        elif isinstance(sub, ast.expr):
                            scope.eval(sub)

    def _note_return(self, stmt: ast.Return, scope: _Scope) -> None:
        fn = self._current
        value = scope.eval(stmt.value)
        if fn is None:
            return
        if value.kind == "rng":
            fn.rng_return = _join_rng_return(fn.rng_return, value.prov or UNKNOWN)
        elif value.kind == "param":
            fn.rng_return = _join_rng_return(fn.rng_return, f"param:{value.param}")
        elif value.kind == "ref":
            fn.rng_return = _join_rng_return(fn.rng_return, f"ref:{value.ref}")
            fn.returns_ref = value.ref
        if value.kind == "table" and value.columns is not None:
            merged = dict.fromkeys((*(fn.returns_columns or ()), *value.columns))
            fn.returns_columns = tuple(merged)

    def _function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qual_prefix: str | None,
        top_level: bool,
    ) -> None:
        args = node.args
        all_args = (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        )
        params = tuple(a.arg for a in all_args)
        annotated_tables = tuple(
            a.arg for a in all_args if _annotation_mentions(a.annotation, "Table")
        )
        entropy = tuple(
            a.arg
            for a in all_args
            if _annotation_mentions(a.annotation, "Generator")
            or _annotation_mentions(a.annotation, "SeedSequence")
        )
        qualname = (
            f"{qual_prefix}.{node.name}" if qual_prefix else node.name
        )
        fn = FunctionSummary(
            qualname=qualname,
            name=node.name,
            params=params,
            defaults=len(args.defaults),
            annotated_table_params=annotated_tables,
            entropy_params=entropy,
        )
        outer = self._current
        self._current = fn
        scope = _Scope(self, params=params, fn_name=node.name)
        self._collect_param_accesses(node, fn)
        self._walk_body(node.body, scope, qual_prefix=None, depth=1)
        self._current = outer
        if top_level and self.module is not None:
            self.summary.functions[node.name] = fn

    def _collect_param_accesses(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef, fn: FunctionSummary
    ) -> None:
        """Record ``param["col"]`` reads and Table-shaped param usage."""
        subscripted: dict[str, list[tuple[str, int, int]]] = {}
        non_table_use: set[str] = set()
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.Subscript)
                and isinstance(sub.value, ast.Name)
                and sub.value.id in fn.params
                and isinstance(sub.ctx, ast.Load)
            ):
                if isinstance(sub.slice, ast.Constant) and isinstance(
                    sub.slice.value, str
                ):
                    subscripted.setdefault(sub.value.id, []).append(
                        (sub.slice.value, sub.lineno, sub.col_offset)
                    )
                else:
                    non_table_use.add(sub.value.id)
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Name)
                and sub.func.id in ("len", "iter", "sorted")
            ):
                continue
        fn.param_accesses = {
            p: tuple(reads) for p, reads in subscripted.items()
        }
        table_like = [
            p
            for p in fn.params
            if p in subscripted and p not in non_table_use
        ]
        fn.table_params = tuple(
            dict.fromkeys((*fn.annotated_table_params, *table_like))
        )


def _join_rng_return(current: str | None, new: str) -> str:
    """Join return provenances; concrete taint dominates param/ref."""
    if current is None or current == new:
        return new
    order = {UNSEEDED: 4, ADHOC: 3, LITERAL: 2}
    cur_rank = order.get(current, 0)
    new_rank = order.get(new, 0)
    if new_rank or cur_rank:
        return new if new_rank >= cur_rank else current
    return current  # first of several param/ref returns wins


def summarize_module(
    source: str,
    module: str | None,
    relpath: str,
    package: str,
) -> ModuleSummary:
    """Parse-free entry point used by the engine (and its worker pool)."""
    try:
        tree = ast.parse(source, filename=relpath)
    except SyntaxError as exc:
        return ModuleSummary(
            module=module,
            relpath=relpath,
            parse_error=exc.msg or str(exc),
            parse_error_line=exc.lineno or 1,
        )
    return _ModuleSummarizer(
        tree,
        module,
        relpath,
        package,
        is_package=relpath.endswith("__init__.py"),
    ).run()


# -- the whole-program graph --------------------------------------------------


@dataclass
class InferredSchema:
    """Input-schema inference for one (function, table-param)."""

    columns: tuple[str, ...]
    call_sites: int
    complete: bool  # every resolved call site had a known column set


class ProjectGraph:
    """Import graph + call graph + resolved dataflow facts."""

    def __init__(self, package: str, summaries: dict[str, ModuleSummary]):
        self.package = package
        #: relpath -> summary (every linted file).
        self.files = summaries
        #: dotted module name -> summary (package files only).
        self.modules: dict[str, ModuleSummary] = {
            s.module: s for s in summaries.values() if s.module
        }
        self.functions: dict[str, FunctionSummary] = {}
        for s in self.modules.values():
            for fn in s.functions.values():
                self.functions[fn.qualname] = fn
        self._closure_cache: dict[str, frozenset[str]] = {}
        self._resolve_cache: dict[str, str | None] = {}
        self._close_entropy_params()
        self._schemas = self._infer_schemas()

    # -- import graph ----------------------------------------------------

    def imports_of(self, module: str) -> frozenset[str]:
        """Package-internal modules ``module`` imports (direct)."""
        summary = self.modules.get(module)
        if summary is None:
            return frozenset()
        out = set()
        for target in summary.imports:
            node = target
            # ``from repro.x import y``: record the deepest prefix that
            # is a real module (y may be a function).
            while node and node not in self.modules and "." in node:
                node = node.rsplit(".", 1)[0]
            if node in self.modules and node != module:
                out.add(node)
        return frozenset(out)

    def import_closure(self, module: str) -> frozenset[str]:
        """Transitive package-internal imports, excluding ``module``."""
        cached = self._closure_cache.get(module)
        if cached is not None:
            return cached
        seen: set[str] = set()
        stack = list(self.imports_of(module))
        while stack:
            nxt = stack.pop()
            if nxt in seen:
                continue
            seen.add(nxt)
            stack.extend(self.imports_of(nxt) - seen)
        seen.discard(module)
        result = frozenset(seen)
        self._closure_cache[module] = result
        return result

    def dependents(self, module: str) -> frozenset[str]:
        """Modules whose import closure contains ``module``."""
        return frozenset(
            m for m in self.modules if m != module and module in self.import_closure(m)
        )

    # -- name resolution --------------------------------------------------

    def resolve_function(self, qualname: str | None) -> FunctionSummary | None:
        """Follow package ``__init__`` re-export chains to a function."""
        if qualname is None:
            return None
        if qualname in self._resolve_cache:
            resolved = self._resolve_cache[qualname]
            return self.functions.get(resolved) if resolved else None
        seen: set[str] = set()
        node: str | None = qualname
        while node is not None and node not in seen:
            seen.add(node)
            if node in self.functions:
                self._resolve_cache[qualname] = node
                return self.functions[node]
            if "." not in node:
                break
            mod, name = node.rsplit(".", 1)
            summary = self.modules.get(mod)
            node = summary.exports.get(name) if summary else None
        self._resolve_cache[qualname] = None
        return None

    # -- RNG dataflow ------------------------------------------------------

    def _close_entropy_params(self, rounds: int = 4) -> None:
        """Propagate entropy-param status through forwarding calls."""
        for _ in range(rounds):
            changed = False
            for fn in self.functions.values():
                for param, callees in fn.entropy_forwards.items():
                    if param in fn.entropy_params:
                        continue
                    for callee in callees:
                        target = self.resolve_function(callee)
                        if target is None:
                            continue
                        site = self._forward_position(fn, param, target)
                        if site and site in target.entropy_params:
                            fn.entropy_params = (*fn.entropy_params, param)
                            changed = True
                            break
            if not changed:
                return

    def _forward_position(
        self, fn: FunctionSummary, param: str, target: FunctionSummary
    ) -> str | None:
        """Which of ``target``'s params receives ``fn``'s ``param``."""
        module = self.modules.get(fn.qualname.rsplit(".", 1)[0])
        if module is None:
            return None
        for call in module.calls:
            resolved = self.resolve_function(call.callee)
            if resolved is not target:
                continue
            for i, val in enumerate(call.args):
                if val.kind == "param" and val.param == param:
                    if i < len(target.params):
                        return target.params[i]
            for name, val in call.kwargs:
                if val.kind == "param" and val.param == param:
                    return name
        return None

    def rng_return_prov(self, fn: FunctionSummary, depth: int = 0) -> str | None:
        """Concrete provenance of ``fn``'s returned generator, if any.

        ``param:`` returns resolve to GOOD (call-site args are checked
        separately); ``ref:`` chains are followed to a fixed depth.
        """
        ret = fn.rng_return
        if ret is None:
            return None
        if ret.startswith("param:"):
            return GOOD
        if ret.startswith("ref:"):
            if depth >= 8:
                return UNKNOWN
            target = self.resolve_function(ret[4:])
            if target is None:
                return UNKNOWN
            return self.rng_return_prov(target, depth + 1) or UNKNOWN
        return ret

    def arg_rng_prov(self, val: SymVal, depth: int = 0) -> str:
        """RNG provenance of a call-site argument value."""
        if val.kind == "param":
            return GOOD
        if val.kind == "rng":
            return val.prov or UNKNOWN
        if val.kind == "ref" and depth < 8:
            target = self.resolve_function(val.ref)
            if target is not None:
                prov = self.rng_return_prov(target, depth + 1)
                if prov is not None:
                    return prov
        return UNKNOWN

    # -- schema dataflow ---------------------------------------------------

    def arg_columns(
        self, val: SymVal, depth: int = 0
    ) -> tuple[str, ...] | None:
        """Known column set carried by a call-site argument, if any."""
        if val.kind == "table":
            return val.columns
        if val.kind == "ref" and depth < 8:
            target = self.resolve_function(val.ref)
            if target is not None:
                if target.returns_columns is not None:
                    return target.returns_columns
                if target.returns_ref is not None:
                    return self.arg_columns(
                        SymVal(kind="ref", ref=target.returns_ref), depth + 1
                    )
        return None

    def _infer_schemas(self) -> dict[tuple[str, str], InferredSchema]:
        """Union of call-site column sets per (function, table-param)."""
        acc: dict[tuple[str, str], dict[str, object]] = {}
        for summary in self.modules.values():
            for call in summary.calls:
                target = self.resolve_function(call.callee)
                if target is None or not target.table_params:
                    continue
                bound = self._bind(call, target)
                for param in target.table_params:
                    if param not in bound:
                        continue
                    key = (target.qualname, param)
                    slot = acc.setdefault(
                        key, {"columns": set(), "sites": 0, "complete": True}
                    )
                    slot["sites"] += 1
                    columns = None
                    val = bound[param]
                    if val.kind in ("table", "ref"):
                        columns = self.arg_columns(val)
                    if columns is None:
                        slot["complete"] = False
                    else:
                        slot["columns"].update(columns)
        return {
            key: InferredSchema(
                columns=tuple(sorted(slot["columns"])),
                call_sites=slot["sites"],
                complete=bool(slot["complete"]),
            )
            for key, slot in acc.items()
        }

    def _bind(
        self, call: CallSite, target: FunctionSummary
    ) -> dict[str, SymVal]:
        bound: dict[str, SymVal] = {}
        params = list(target.params)
        if params and params[0] == "self":
            params = params[1:]
        for i, val in enumerate(call.args):
            if i < len(params):
                bound[params[i]] = val
        for name, val in call.kwargs:
            if name in params:
                bound[name] = val
        return bound

    def inferred_schema(
        self, qualname: str, param: str
    ) -> InferredSchema | None:
        return self._schemas.get((qualname, param))

    def schemas_for_module(
        self, module: str
    ) -> dict[tuple[str, str], InferredSchema]:
        """Inference results for functions defined in ``module`` — the
        cross-module fact set a file's diagnostics depend on, used to
        key the incremental cache."""
        prefix = module + "."
        return {
            key: schema
            for key, schema in self._schemas.items()
            if key[0].startswith(prefix)
            and "." not in key[0][len(prefix):]
        }


def build_project_graph(
    summaries: dict[str, ModuleSummary], package: str
) -> ProjectGraph:
    """Assemble the whole-program graph from per-file summaries."""
    return ProjectGraph(package, summaries)
